"""Mini model bake-off: the paper's Table III on a small world.

Builds all six recommenders (GraphEx + the five production baselines) on
a compact simulated dataset, judges every prediction with the oracle, and
prints RP / HP / RRR / RHR plus exclusive diversity — the full Section
IV-C framework in miniature.  For the full-scale reproduction, run
``pytest benchmarks/ --benchmark-only`` instead.

Run:  python examples/model_comparison.py   (takes ~1 minute)
"""

from repro.core import CurationConfig
from repro.data import TINY_PROFILE
from repro.eval import Experiment, ExperimentConfig, diversity_ratios
from repro.eval.metrics import relative_head_ratio, relative_relevant_ratio
from repro.eval.reporting import render_table


def main() -> None:
    config = ExperimentConfig(
        profile=TINY_PROFILE,
        n_train_events=30_000,
        n_test_events=5_000,
        curation=CurationConfig(min_search_count=3, min_keyphrases=100,
                                floor_search_count=2),
        test_items_per_meta={"CAT_1": 60, "CAT_2": 40, "CAT_3": 20},
        seed=17,
    )
    experiment = Experiment(config).prepare()

    for meta in experiment.metas:
        judged = experiment.judged(meta)
        reference = judged["GraphEx"]
        rows = []
        for name, j in judged.items():
            rows.append([
                name,
                round(j.total / max(1, j.n_items), 1),
                j.rp, j.hp,
                relative_relevant_ratio(j, reference),
                relative_head_ratio(j, reference),
            ])
        print(render_table(
            ["model", "preds/item", "RP", "HP", "RRR", "RHR"], rows,
            title=f"\n=== {meta} "
                  f"({len(experiment.test_items(meta))} test items) ==="))
        ratios = diversity_ratios(judged)
        pretty = {name: ("inf" if value == float("inf")
                         else f"{value:.2f}x")
                  for name, value in ratios.items()}
        print(f"exclusive relevant-head diversity (GraphEx vs model): "
              f"{pretty}")


if __name__ == "__main__":
    main()
