"""The Figure 7 production loop: daily refresh + batch + NRT serving.

Walks two simulated "days" of the serving architecture:

* Day 1 — full batch inference over the catalog into the KV store.
* Day 2 — 2% query churn arrives (new keyphrases in the logs); the model
  is re-constructed in seconds (the daily refresh fastText cannot do),
  the daily differential re-infers only changed items, and the NRT
  service handles a seller revising a listing mid-day.

Run:  python examples/daily_refresh_serving.py
"""

import time

from repro import (
    CurationConfig,
    SessionSimulator,
    TINY_PROFILE,
    curate,
    generate_dataset,
)
from repro.core import GraphExModel
from repro.serving import (
    BatchPipeline,
    ItemEvent,
    ItemEventKind,
    KeyValueStore,
    NRTService,
)

CURATION = CurationConfig(min_search_count=4, min_keyphrases=200,
                          floor_search_count=2)


def construct_model(log):
    start = time.perf_counter()
    model = GraphExModel.construct(curate(log.keyphrase_stats(), CURATION))
    elapsed = time.perf_counter() - start
    print(f"   constructed {model.n_leaves} leaf graphs / "
          f"{model.n_keyphrases} labels in {elapsed * 1e3:.0f} ms")
    return model


def main() -> None:
    dataset = generate_dataset(TINY_PROFILE)
    simulator = SessionSimulator(dataset.catalog, dataset.queries, seed=7)

    print("Day 1: training window + full batch load")
    day1_log = simulator.run(25_000, day_start=1, day_end=180, rounds=3)
    model = construct_model(day1_log)

    store = KeyValueStore()
    pipeline = BatchPipeline(model, store=store, workers=4)
    requests = [(it.item_id, it.title, it.leaf_id)
                for it in dataset.catalog.items]
    report = pipeline.full_load(requests)
    print(f"   full load: {report.n_inferred} items inferred, "
          f"{report.n_served} served from KV version {report.version}")

    sample = dataset.catalog.items[0]
    print(f"   serving {sample.item_id}: {pipeline.serve(sample.item_id)[:3]}")

    print("\nDay 2: query churn -> daily model refresh")
    day2_log = day1_log.merged_with(
        simulator.run(3_000, day_start=181, day_end=181, rounds=1))
    pipeline.refresh_model(construct_model(day2_log))

    changed = requests[:25]  # items created/revised since yesterday
    report = pipeline.daily_differential(changed,
                                         deleted_item_ids=[requests[-1][0]])
    print(f"   differential: {report.n_inferred} re-inferred, "
          f"{report.n_deleted} deleted, {report.n_served} now served")

    print("\nDay 2, 14:02: seller revises a listing (NRT path)")
    nrt = NRTService(pipeline.model, store, window_size=8,
                     window_seconds=0.5)
    revised_title = sample.title + " bluetooth"
    nrt.submit(ItemEvent(kind=ItemEventKind.REVISED,
                         item_id=sample.item_id, title=revised_title,
                         leaf_id=sample.leaf_id, timestamp=0.0))
    stats = nrt.flush()
    print(f"   window processed: {stats.n_events} events, "
          f"{stats.n_inferred} inferred")
    print(f"   serving {sample.item_id} now: "
          f"{pipeline.serve(sample.item_id)[:3]}")


if __name__ == "__main__":
    main()
