"""The Figure 7 production loop: daily refresh + batch + NRT serving.

Walks two simulated "days" of the serving architecture:

* Day 1 — full batch inference over the catalog into the KV store, and
  an asyncio NRT front brought up over two streams.
* Day 2 — 2% query churn arrives (new keyphrases in the logs).  The
  :class:`DailyRefreshOrchestrator` runs the daily loop: the model is
  re-constructed in seconds (the daily refresh fastText cannot do), the
  batch table is fully re-loaded and atomically promoted, and the
  *running* NRT front is hot-swapped to the new model — generation 1 —
  without dropping an event, while a seller revises a listing mid-day.

Run:  python examples/daily_refresh_serving.py
"""

import asyncio
import tempfile
import time

from repro.core import GraphExModel

from repro import (
    CurationConfig,
    SessionSimulator,
    TINY_PROFILE,
    curate,
    generate_dataset,
)
from repro.serving import (
    AsyncNRTFront,
    BatchPipeline,
    DailyRefreshOrchestrator,
    ItemEvent,
    ItemEventKind,
    KeyValueStore,
)

CURATION = CurationConfig(min_search_count=4, min_keyphrases=200,
                          floor_search_count=2)


async def main_async() -> None:
    dataset = generate_dataset(TINY_PROFILE)
    simulator = SessionSimulator(dataset.catalog, dataset.queries, seed=7)
    requests = [(it.item_id, it.title, it.leaf_id)
                for it in dataset.catalog.items]
    sample = dataset.catalog.items[0]

    print("Day 1: training window + full batch load")
    day1_log = simulator.run(25_000, day_start=1, day_end=180, rounds=3)
    start = time.perf_counter()
    store = KeyValueStore()
    model = GraphExModel.construct(curate(day1_log.keyphrase_stats(),
                                          CURATION))
    print(f"   constructed {model.n_leaves} leaf graphs / "
          f"{model.n_keyphrases} labels in "
          f"{(time.perf_counter() - start) * 1e3:.0f} ms")

    pipeline = BatchPipeline(model, store=store, workers=4)
    report = pipeline.full_load(requests)
    print(f"   full load: {report.n_inferred} items inferred, "
          f"{report.n_served} served from KV version {report.version}")
    print(f"   serving {sample.item_id}: "
          f"{pipeline.serve(sample.item_id)[:3]}")

    print("\nDay 1, evening: NRT front comes up over two streams")
    front = AsyncNRTFront(model, window_size=8, window_seconds=0.5,
                          wall_clock_seconds=0.2)
    front.add_stream("site-us", store=store)   # shares the batch store
    front.add_stream("site-de")
    # artifact_dir: each refresh persists a format-3 artifact and
    # deploys its *memory-mapped* open, so the pipeline and every
    # stream share one physical model copy (swap = remap, not reload).
    artifact_root = tempfile.mkdtemp(prefix="graphex-daily-")
    # executor= picks the construct substrate ("serial"/"thread"/
    # "process"/"cluster" or an Executor instance).  The orchestrator
    # keeps it for life: each build records per-leaf wall clock into
    # its CostModel, so tomorrow's shards balance on today's observed
    # rates instead of char-count proxies.
    orchestrator = DailyRefreshOrchestrator(pipeline, workers=4,
                                            executor="thread",
                                            artifact_dir=artifact_root)
    orchestrator.register(front)

    async with front:
        await front.submit("site-us", ItemEvent(
            kind=ItemEventKind.CREATED, item_id=sample.item_id,
            title=sample.title, leaf_id=sample.leaf_id, timestamp=0.0))
        await front.join()
        await front.flush_all()          # a generation-0 window served

        print("\nDay 2: query churn -> orchestrated daily refresh "
              "(front keeps serving)")
        day2_log = day1_log.merged_with(
            simulator.run(3_000, day_start=181, day_end=181, rounds=1))
        refresh = await orchestrator.refresh(
            curate(day2_log.keyphrase_stats(), CURATION), requests)
        print(f"   generation {refresh.generation}: constructed "
              f"{refresh.n_leaves} leaf graphs / {refresh.n_keyphrases} "
              f"labels in {refresh.construct_seconds * 1e3:.0f} ms, "
              f"re-loaded {refresh.n_inferred} items in "
              f"{refresh.load_seconds * 1e3:.0f} ms, hot-swapped "
              f"{refresh.n_targets} serving target(s) in "
              f"{refresh.swap_seconds * 1e3:.0f} ms")
        print(f"   deployed mapped from artifact "
              f"{refresh.artifact_path}")
        gain = ("n/a — first observed-cost plan lands tomorrow"
                if refresh.rebalance_gain is None
                else f"{refresh.rebalance_gain:.2f}x")
        print(f"   cost feedback: {refresh.n_cost_observations} shard "
              f"timings recorded, rebalance gain {gain}")

        print("\nDay 2, 14:02: seller revises a listing (NRT path, "
              "new model)")
        revised_title = sample.title + " bluetooth"
        await front.submit("site-us", ItemEvent(
            kind=ItemEventKind.REVISED, item_id=sample.item_id,
            title=revised_title, leaf_id=sample.leaf_id, timestamp=1.0))
        await front.join()
        await front.flush_all()
        windows = front.processed_windows("site-us")
        print(f"   {len(windows)} windows on site-us, generations "
              f"{[w.model_generation for w in windows]}")
        print(f"   serving {sample.item_id} now: "
              f"{pipeline.serve(sample.item_id)[:3]}")


def main() -> None:
    asyncio.run(main_async())


if __name__ == "__main__":
    main()
