"""Quickstart: build a world, construct GraphEx, recommend keyphrases.

Runs the full pipeline end to end in under a minute:

1. Generate a synthetic e-commerce catalog and buyer query universe.
2. Simulate six months of buyer search sessions (the "search logs").
3. Curate head keyphrases from the logs (no click associations!).
4. Construct the GraphEx bipartite graphs — this is all the "training".
5. Recommend keyphrases for a few items and explain the ranking.

Run:  python examples/quickstart.py
"""

from repro import (
    CurationConfig,
    GraphExModel,
    SessionSimulator,
    TINY_PROFILE,
    curate,
    generate_dataset,
)


def main() -> None:
    print("1) Generating synthetic catalog + query universe ...")
    dataset = generate_dataset(TINY_PROFILE)
    print(f"   {len(dataset.catalog.items)} items, "
          f"{len(dataset.queries)} unique buyer queries")

    print("2) Simulating a six-month window of buyer sessions ...")
    simulator = SessionSimulator(dataset.catalog, dataset.queries, seed=7)
    log = simulator.run_training_window(n_events=30_000)
    print(f"   {log.total_searches} searches, {len(log.clicks)} clicks")

    print("3) Curating head keyphrases (Search-Count threshold) ...")
    curated = curate(log.keyphrase_stats(),
                     CurationConfig(min_search_count=4, min_keyphrases=200,
                                    floor_search_count=2))
    print(f"   kept {curated.n_keyphrases} keyphrases across "
          f"{len(curated.leaves)} leaf categories "
          f"(effective threshold {curated.effective_threshold})")

    print("4) Constructing GraphEx (training-free) ...")
    # executor= picks where leaf shards build: "serial", "thread"
    # (default), "process", or an Executor instance — the model is
    # bit-identical on every substrate.
    model = GraphExModel.construct(curated, executor="thread")
    print(f"   {model.n_leaves} leaf graphs, "
          f"{model.n_keyphrases} labels, "
          f"~{model.memory_bytes() / 1024:.0f} KiB")

    print("5) Recommending keyphrases:\n")
    for item in dataset.catalog.items[:3]:
        print(f"   TITLE: {item.title}")
        for rec in model.recommend(item.title, item.leaf_id, k=5,
                                   hard_limit=8):
            print(f"     {rec.text!r:45s} LTA={rec.score:.2f} "
                  f"searches={rec.search_count} recall={rec.recall_count}")
        print()


if __name__ == "__main__":
    main()
