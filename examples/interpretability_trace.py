"""Interpretability (paper Section III-G): trace every recommendation.

GraphEx's three phases are transparent: curation, keyphrase mapping, and
ranking.  This example picks one item and shows, for each recommended
keyphrase, exactly which title tokens mapped to it through the bipartite
graph and how the LTA score and tie-breaks ordered it — the audit trail
a black-box DNN cannot give without LIME/SHAP.

Run:  python examples/interpretability_trace.py
"""

from repro import (
    CurationConfig,
    SessionSimulator,
    TINY_PROFILE,
    curate,
    generate_dataset,
)
from repro.core import GraphExModel
from repro.core.inference import enumerate_candidates


def main() -> None:
    dataset = generate_dataset(TINY_PROFILE)
    simulator = SessionSimulator(dataset.catalog, dataset.queries, seed=7)
    log = simulator.run_training_window(n_events=30_000)
    curated = curate(log.keyphrase_stats(),
                     CurationConfig(min_search_count=4, min_keyphrases=200,
                                    floor_search_count=2))
    model = GraphExModel.construct(curated)

    item = dataset.catalog.items[0]
    graph = model.leaf_graph(item.leaf_id)
    tokens = model.tokenizer(item.title)

    print(f"TITLE : {item.title}")
    print(f"LEAF  : {item.leaf_id} "
          f"({dataset.catalog.tree.leaf_by_id(item.leaf_id).name})\n")

    print("Phase 1 — curation: the leaf's label space")
    print(f"  {graph.n_labels} curated keyphrases; every one was searched "
          f">= {curated.effective_threshold} times in the window.\n")

    print("Phase 2 — keyphrase mapping (Enumeration):")
    labels, counts, _ = enumerate_candidates(graph, tokens)
    print(f"  {len(labels)} candidate keyphrases reached from the title "
          f"tokens")
    for token in dict.fromkeys(tokens):
        word_id = graph.word_vocab.get(token)
        degree = graph.graph.degree(word_id) if word_id is not None else 0
        marker = "->" if degree else "  (ignored: in no keyphrase)"
        print(f"    token {token!r:18s} {marker} {degree} keyphrases")
    print()

    print("Phase 3 — ranking (LTA + tie-breaks):")
    title_set = set(tokens)
    for rec in model.recommend(item.title, item.leaf_id, k=6, hard_limit=8):
        phrase_tokens = rec.text.split()
        shared = [t for t in phrase_tokens if t in title_set]
        missing = [t for t in phrase_tokens if t not in title_set]
        print(f"  {rec.text!r}")
        print(f"    matched tokens : {shared}")
        if missing:
            print(f"    risky tokens   : {missing} "
                  f"(penalised by LTA denominator)")
        print(f"    LTA = c/(|l|-c+1) = {rec.common}/"
              f"({len(set(phrase_tokens))}-{rec.common}+1) = {rec.score:.2f}"
              f"; tie-breaks: searches={rec.search_count}, "
              f"recall={rec.recall_count}")
    print("\nEvery prediction above is reconstructible by hand from the "
          "curated table and the title — no post-hoc explainer needed.")


if __name__ == "__main__":
    main()
