"""Cold-start scenario: a new seller lists items no buyer has ever seen.

The paper's motivating workload (Section I): click-lookup models (RE,
SL-query) cannot say anything about a freshly listed item, while GraphEx
serves it immediately from the title alone — the "most profitable
cold-start" model in production (Section IV-I).

This example lists brand-new items (absent from every log), then compares
which models can serve them and what they say.

Run:  python examples/cold_start_seller.py
"""

from repro import (
    CurationConfig,
    SessionSimulator,
    TINY_PROFILE,
    curate,
    generate_dataset,
)
from repro.baselines import RulesEngine, SLQuery, TrainingData
from repro.core import GraphExModel
from repro.eval import GraphExRecommender


def main() -> None:
    dataset = generate_dataset(TINY_PROFILE)
    simulator = SessionSimulator(dataset.catalog, dataset.queries, seed=7)
    log = simulator.run_training_window(n_events=30_000)

    # Build the three models.
    curated = curate(log.keyphrase_stats(),
                     CurationConfig(min_search_count=4, min_keyphrases=200,
                                    floor_search_count=2))
    graphex = GraphExRecommender(GraphExModel.construct(curated))
    rules_engine = RulesEngine(log)
    items = [(it.item_id, it.title, it.leaf_id)
             for it in dataset.catalog.items]
    sl_query = SLQuery(TrainingData(
        items=items, click_pairs=log.item_query_pairs(), query_leaf={}))

    # A new seller lists items today: ids the logs have never seen, with
    # titles composed like real listings in the headphones leaf.
    leaf = dataset.catalog.tree.leaf_by_name("headphones")
    new_listings = [
        (900001, "audeze km3000 bluetooth noise cancelling headphones new",
         leaf.leaf_id),
        (900002, "klaro wireless earbuds white for iphone free shipping",
         leaf.leaf_id),
    ]

    print("Cold-start coverage (fraction of new items served):")
    ids = [item_id for item_id, _t, _l in new_listings]
    print(f"  GraphEx : {graphex.coverage(ids):.0%}")
    print(f"  RE      : {rules_engine.coverage(ids):.0%}")
    print(f"  SL-query: {sl_query.coverage(ids):.0%}\n")

    for item_id, title, leaf_id in new_listings:
        print(f"NEW LISTING: {title}")
        for name, model in [("GraphEx", graphex), ("RE", rules_engine),
                            ("SL-query", sl_query)]:
            preds = model.recommend(item_id, title, leaf_id, k=5)
            if preds:
                print(f"  {name:9s}: " + ", ".join(p.text for p in preds))
            else:
                print(f"  {name:9s}: (no recommendations — cold item)")
        print()


if __name__ == "__main__":
    main()
