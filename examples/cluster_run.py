"""Fault-tolerant cluster run: 3 workers over localhost, one dies mid-plan.

The multi-machine story end to end: a coordinator listens on localhost
TCP, three executor workers register, and an inference batch is sharded
across them through the cluster runner.  One worker is armed with the
kill switch (``die_after_assignments=0``): the moment its first shard
arrives it drops the connection cold, exactly like a crashed host.  The
coordinator detects the death, re-balances the orphaned shard across
the two survivors, and the merged output is still element-wise
identical to the single-process fast path — with every shard merged
exactly once.

Here the three workers are asyncio tasks sharing this process (so the
example is self-contained and instant); each speaks to the coordinator
only through its TCP connection, exactly as a real remote host would.
For worker *subprocesses* — separate "machines" with their own memory
maps — run the CLI sibling::

    repro-graphex cluster-run --model model_dir/ --spawn-workers 3 --kill-after 0

Run:  PYTHONPATH=src python examples/cluster_run.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro import CurationConfig, SessionSimulator, TINY_PROFILE, curate, generate_dataset
from repro.cluster import ClusterCoordinator, ClusterWorker, RetryPolicy
from repro.core import GraphExModel
from repro.core.fast_inference import LeafBatchRunner
from repro.core.serialization import save_model


def build_model_and_requests():
    dataset = generate_dataset(TINY_PROFILE)
    simulator = SessionSimulator(dataset.catalog, dataset.queries, seed=7)
    log = simulator.run_training_window(n_events=20_000)
    curated = curate(log.keyphrase_stats(),
                     CurationConfig(min_search_count=2, min_keyphrases=100,
                                    floor_search_count=2))
    model = GraphExModel.construct(curated)
    requests = [(item.item_id, item.title, item.leaf_id)
                for item in dataset.catalog.items[:120]]
    return model, requests


async def main() -> None:
    model, requests = build_model_and_requests()
    print(f"model: {model.n_leaves} leaves, {model.n_keyphrases} "
          f"keyphrases; batch: {len(requests)} requests")

    # The ground truth the cluster must reproduce bit-for-bit.
    expected = LeafBatchRunner(model, k=10).run(requests)

    with tempfile.TemporaryDirectory(prefix="cluster-example-") as tmp:
        artifact = Path(tmp) / "model"
        save_model(model, artifact, format_version=3)
        print(f"persisted format-3 artifact -> {artifact}")

        async with ClusterCoordinator(rpc_timeout=10.0,
                                      retry=RetryPolicy(seed=0),
                                      heartbeat_timeout=5.0) as coordinator:
            print(f"coordinator listening on "
                  f"{coordinator.host}:{coordinator.port}")

            workers = [
                # The doomed one: drops its connection cold the moment
                # its first shard arrives — a crashed host mid-plan.
                ClusterWorker(coordinator.host, coordinator.port,
                              name="doomed", heartbeat_interval=0.5,
                              die_after_assignments=0),
                ClusterWorker(coordinator.host, coordinator.port,
                              name="steady-1", heartbeat_interval=0.5),
                ClusterWorker(coordinator.host, coordinator.port,
                              name="steady-2", heartbeat_interval=0.5),
            ]
            tasks = [asyncio.ensure_future(worker.run())
                     for worker in workers]
            await coordinator.wait_for_workers(3, timeout=10.0)
            print(f"registered workers: {coordinator.worker_names()}")

            result = await coordinator.run_inference(
                str(artifact), requests, k=10)

            report = coordinator.last_report
            print(f"\nrun report:")
            print(f"  units planned          : {report.n_units_planned}")
            print(f"  dead-host re-plans     : {report.n_replans}")
            print(f"  orphaned shard keys    : {report.orphaned_keys}")
            print(f"  deadline retries       : {report.n_retries}")
            print(f"  late results discarded : {report.n_late_discarded}")
            print(f"  workers used           : {report.workers_used}")
            print(f"  survivors              : {coordinator.worker_names()}")
            exactly_once = all(count == 1
                               for count in report.merge_counts.values())
            print(f"  every shard merged exactly once: {exactly_once}")

            identical = result == expected
            print(f"\ncluster output identical to single-process fast "
                  f"path: {identical}")
            assert identical and exactly_once
            assert report.n_replans >= 1, "the doomed worker never died?"

            await coordinator.stop()
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
    print("\nOK: one host died mid-plan; the fleet re-planned around it "
          "and the output did not change by a single element.")


if __name__ == "__main__":
    asyncio.run(main())
