"""GraphEx reproduction: graph-based advertiser keyphrase recommendation.

Reproduces *GraphEx: A Graph-Based Extraction Method for Advertiser
Keyphrase Recommendation* (ICDE 2025) end to end: the GraphEx model
(``repro.core``), a synthetic e-commerce substrate standing in for eBay's
proprietary data (``repro.data``, ``repro.search``), the five production
baselines it is compared against (``repro.baselines``), the bias-aware
evaluation framework (``repro.eval``) and the batch/NRT serving
architecture (``repro.serving``).

Quickstart::

    from repro import generate_dataset, SessionSimulator
    from repro import curate, CurationConfig, GraphExModel

    dataset = generate_dataset()
    sim = SessionSimulator(dataset.catalog, dataset.queries)
    log = sim.run_training_window(n_events=50_000)
    curated = curate(log.keyphrase_stats(), CurationConfig(min_search_count=20))
    model = GraphExModel.construct(curated)
    item = dataset.catalog.items[0]
    for rec in model.recommend(item.title, item.leaf_id, k=10):
        print(rec.text, rec.score)
"""

from .core import (
    ALIGNMENTS,
    CostModel,
    CSRGraph,
    CuratedKeyphrases,
    CurationConfig,
    Executor,
    GraphExModel,
    ProcessShardExecutor,
    Recommendation,
    ShardPlan,
    SpaceTokenizer,
    Vocabulary,
    resolve_executor,
    batch_recommend,
    curate,
    differential_update,
    fast_curate,
    head_threshold,
    jac,
    load_model,
    lta,
    model_size_bytes,
    save_model,
    wmr,
)
from .data import (
    DEFAULT_PROFILE,
    TINY_PROFILE,
    Catalog,
    Dataset,
    DatasetProfile,
    Item,
    Query,
    QueryUniverse,
    generate_dataset,
)
from .search import (
    ClickModel,
    SearchEngine,
    SearchLog,
    SessionSimulator,
    click_sparsity,
)

__version__ = "1.0.0"

__all__ = [
    "ALIGNMENTS",
    "CostModel",
    "CSRGraph",
    "CuratedKeyphrases",
    "CurationConfig",
    "Executor",
    "GraphExModel",
    "ProcessShardExecutor",
    "resolve_executor",
    "Recommendation",
    "ShardPlan",
    "SpaceTokenizer",
    "Vocabulary",
    "batch_recommend",
    "curate",
    "differential_update",
    "fast_curate",
    "head_threshold",
    "jac",
    "load_model",
    "lta",
    "model_size_bytes",
    "save_model",
    "wmr",
    "Catalog",
    "Dataset",
    "DatasetProfile",
    "DEFAULT_PROFILE",
    "TINY_PROFILE",
    "Item",
    "Query",
    "QueryUniverse",
    "generate_dataset",
    "ClickModel",
    "SearchEngine",
    "SearchLog",
    "SessionSimulator",
    "click_sparsity",
    "__version__",
]
