"""fastText-like linear text classifier over click data.

Stands in for eBay's production fastText model (see DESIGN.md): the same
model family — hashed bag-of-words/bigram features, averaged into a dense
hidden vector, linear label scoring — trained with negative-sampling SGD
on click-based item→keyphrase pairs.  Like the original, it is CPU-only,
and like the original it inherits every bias of its click training data
(the paper's central criticism of the XMC family).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.tokenize import DEFAULT_TOKENIZER, Tokenizer
from .base import KeyphraseRecommender, Prediction, TrainingData


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class FastTextLike(KeyphraseRecommender):
    """Hashed linear bag-of-words classifier with negative sampling.

    Args:
        data: Click-based training data.
        dim: Hidden/embedding dimensionality.
        buckets: Feature-hashing buckets for unigrams and bigrams.
        epochs: SGD passes over the training pairs.
        lr: Initial learning rate (linearly decayed to ~0).
        negatives: Negative labels sampled per positive.
        seed: RNG seed for init and sampling.
    """

    name = "fastText"

    def __init__(self, data: TrainingData, dim: int = 48,
                 buckets: int = 1 << 16, epochs: int = 15,
                 lr: float = 0.5, negatives: int = 5,
                 seed: int = 31,
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> None:
        self._tokenizer = tokenizer
        self._buckets = buckets
        rng = np.random.default_rng(seed)

        # Label universe = every clicked keyphrase (head AND tail, as the
        # paper notes the XMC label space contains both).
        label_counts: Dict[str, int] = {}
        for queries in data.click_pairs.values():
            for query, clicks in queries.items():
                label_counts[query] = label_counts.get(query, 0) + clicks
        self._labels: List[str] = sorted(label_counts)
        label_ids = {label: i for i, label in enumerate(self._labels)}
        n_labels = len(self._labels)

        # Init scale 1/sqrt(dim): large enough that the averaged hidden
        # vector carries signal from the first update (tiny corpora need
        # this; the original's 1/dim init relies on web-scale data).
        self._input = (rng.random((buckets, dim)) - 0.5) / np.sqrt(dim)
        self._output = np.zeros((max(1, n_labels), dim))

        if n_labels == 0:
            return

        # Unigram^0.75 negative-sampling table, as in word2vec/fastText.
        freqs = np.array([label_counts[label] for label in self._labels],
                         dtype=np.float64) ** 0.75
        neg_probs = freqs / freqs.sum()

        titles_by_item = {item_id: title
                          for item_id, title, _leaf in data.items}
        pairs: List[Tuple[np.ndarray, int]] = []
        for item_id, queries in data.click_pairs.items():
            title = titles_by_item.get(item_id)
            if title is None:
                continue
            features = self._hash_features(title)
            if len(features) == 0:
                continue
            for query in queries:
                pairs.append((features, label_ids[query]))
        if not pairs:
            return

        n_updates = epochs * len(pairs)
        update = 0
        for _epoch in range(epochs):
            order = rng.permutation(len(pairs))
            neg_draws = rng.choice(n_labels, size=(len(pairs), negatives),
                                   p=neg_probs)
            for row, pair_idx in enumerate(order):
                features, positive = pairs[pair_idx]
                rate = lr * max(0.05, 1.0 - update / n_updates)
                update += 1
                hidden = self._input[features].mean(axis=0)
                targets = np.concatenate(
                    ([positive], neg_draws[row]))
                signs = np.zeros(len(targets))
                signs[0] = 1.0
                vectors = self._output[targets]
                scores = _sigmoid(vectors @ hidden)
                grad = (signs - scores) * rate
                hidden_grad = grad @ vectors
                self._output[targets] += np.outer(grad, hidden)
                self._input[features] += hidden_grad / len(features)

    def _hash_features(self, text: str) -> np.ndarray:
        # zlib.crc32 is process-independent, unlike Python's salted
        # hash(): the model must behave identically across runs.
        tokens = self._tokenizer(text)
        feats = [zlib.crc32(t.encode()) % self._buckets for t in tokens]
        feats += [zlib.crc32((a + "__" + b).encode()) % self._buckets
                  for a, b in zip(tokens, tokens[1:])]
        return np.asarray(sorted(set(feats)), dtype=np.int64)

    @property
    def n_labels(self) -> int:
        """Size of the label space."""
        return len(self._labels)

    def memory_bytes(self) -> int:
        """Weight-matrix footprint (dominates model size, as in Figure 6b)."""
        return self._input.nbytes + self._output.nbytes

    def recommend(self, item_id: int, title: str, leaf_id: int,
                  k: int = 20) -> List[Prediction]:
        """Score all labels against the hashed title representation."""
        if not self._labels:
            return []
        features = self._hash_features(title)
        if len(features) == 0:
            return []
        hidden = self._input[features].mean(axis=0)
        scores = self._output @ hidden
        k = min(k, len(scores))
        top = np.argpartition(-scores, k - 1)[:k]
        order = top[np.argsort(-scores[top], kind="stable")]
        return [Prediction(text=self._labels[i], score=float(scores[i]))
                for i in order]
