"""Title embeddings: TF-IDF + truncated SVD.

Stands in for SL-emb's neural title encoder (see DESIGN.md): the paper's
hypothesis — "semantically close items have similar keyphrases" — only
needs an embedding space where similar titles land close together, which
latent semantic analysis provides without GPUs or pretrained weights.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from ..core.tokenize import DEFAULT_TOKENIZER, Tokenizer


class TitleEmbedder:
    """TF-IDF + truncated-SVD embedder for short item titles.

    Args:
        dim: Embedding dimensionality (clipped to the vocabulary rank).
        tokenizer: Tokenizer applied to every title.
        min_df: Drop tokens appearing in fewer documents than this.
    """

    def __init__(self, dim: int = 64,
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER,
                 min_df: int = 2) -> None:
        self._dim = dim
        self._tokenizer = tokenizer
        self._min_df = min_df
        self._token_ids: Dict[str, int] = {}
        self._idf: np.ndarray = np.empty(0)
        self._projection: np.ndarray = np.empty((0, 0))
        self._fitted = False

    @property
    def dim(self) -> int:
        """Actual embedding dimensionality after fitting."""
        return self._projection.shape[1] if self._fitted else self._dim

    def _tfidf_matrix(self, titles: Sequence[str],
                      building: bool) -> sparse.csr_matrix:
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for row, title in enumerate(titles):
            counts: Dict[int, int] = {}
            for token in self._tokenizer(title):
                token_id = self._token_ids.get(token)
                if token_id is None:
                    continue
                counts[token_id] = counts.get(token_id, 0) + 1
            for token_id, count in counts.items():
                rows.append(row)
                cols.append(token_id)
                weight = (1.0 + math.log(count))
                if not building:
                    weight *= self._idf[token_id]
                vals.append(weight)
        return sparse.csr_matrix(
            (vals, (rows, cols)),
            shape=(len(titles), max(1, len(self._token_ids))))

    def fit(self, titles: Sequence[str]) -> "TitleEmbedder":
        """Learn vocabulary, IDF weights and the SVD projection.

        Raises:
            ValueError: If ``titles`` is empty.
        """
        if not titles:
            raise ValueError("cannot fit embedder on an empty corpus")
        doc_freq: Dict[str, int] = {}
        for title in titles:
            for token in set(self._tokenizer(title)):
                doc_freq[token] = doc_freq.get(token, 0) + 1
        kept = sorted(t for t, df in doc_freq.items() if df >= self._min_df)
        if not kept:  # degenerate corpus: keep everything
            kept = sorted(doc_freq)
        self._token_ids = {token: i for i, token in enumerate(kept)}
        n_docs = len(titles)
        self._idf = np.array(
            [math.log((1 + n_docs) / (1 + doc_freq[t])) + 1.0 for t in kept],
            dtype=np.float64)

        counts = self._tfidf_matrix(titles, building=True)
        tfidf = counts.multiply(self._idf[np.newaxis, :]).tocsr()
        rank_cap = min(tfidf.shape) - 1
        dim = max(1, min(self._dim, rank_cap))
        _, _, vt = svds(tfidf.astype(np.float64), k=dim)
        self._projection = vt.T  # (vocab, dim)
        self._fitted = True
        return self

    def transform(self, titles: Sequence[str]) -> np.ndarray:
        """Embed titles into the fitted space (rows are L2-normalized).

        Raises:
            RuntimeError: If called before :meth:`fit`.
        """
        if not self._fitted:
            raise RuntimeError("TitleEmbedder.transform before fit")
        tfidf = self._tfidf_matrix(titles, building=False)
        dense = tfidf @ self._projection
        norms = np.linalg.norm(dense, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return np.asarray(dense / norms)

    def fit_transform(self, titles: Sequence[str]) -> np.ndarray:
        """Fit on the corpus and return its embeddings."""
        return self.fit(titles).transform(titles)
