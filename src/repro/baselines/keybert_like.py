"""keyBERT-style extractive baseline (paper Section II, Related Work).

The paper describes keyBERT's formulation: "keyphrase generation as an
n-gram-based permutation problem, i.e., it generates all possible n-grams
for a given n-gram range", followed by an embedding-based ranking of the
candidates against the document.  It then names the two failure modes
GraphEx is designed around:

1. the token space is limited by **token adjacency** and token presence
   in the item's text;
2. nothing constrains candidates to the **universe of queries buyers
   actually search** — recommendations can be un-targetable.

This implementation reproduces both the method and the failure modes: it
emits contiguous title n-grams ranked by embedding similarity to the full
title, with an optional query-universe filter so the targeting loss is
measurable (``bench_ablation_keybert_targeting``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..core.tokenize import DEFAULT_TOKENIZER, Tokenizer
from .base import KeyphraseRecommender, Prediction, TrainingData
from .embeddings import TitleEmbedder


class KeyBERTLike(KeyphraseRecommender):
    """Contiguous n-gram extraction + embedding ranking.

    Args:
        data: Training data; titles fit the ranking embedder (standing in
            for the pretrained encoder keyBERT downloads).
        ngram_range: Candidate n-gram lengths, inclusive.
        diversity_penalty: Maximal-marginal-relevance style penalty in
            [0, 1): 0 ranks purely by similarity; higher values penalise
            candidates similar to already-selected ones.
        known_queries: Optional query universe; when given, candidates
            outside it are dropped (what a production deployment would
            have to bolt on — and exactly what vanilla keyBERT lacks).
        tokenizer: Tokenizer for titles.
    """

    name = "keyBERT-like"

    def __init__(self, data: TrainingData,
                 ngram_range: tuple = (1, 3),
                 diversity_penalty: float = 0.3,
                 known_queries: Optional[Set[str]] = None,
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> None:
        lo, hi = ngram_range
        if not 1 <= lo <= hi:
            raise ValueError("invalid ngram_range")
        self._lo, self._hi = lo, hi
        if not 0.0 <= diversity_penalty < 1.0:
            raise ValueError("diversity_penalty must be in [0, 1)")
        self._diversity = diversity_penalty
        self._known_queries = known_queries
        self._tokenizer = tokenizer
        titles = [title for _id, title, _leaf in data.items]
        self._embedder = (TitleEmbedder(dim=64, tokenizer=tokenizer)
                          .fit(titles) if titles else None)

    def _candidates(self, tokens: Sequence[str]) -> List[str]:
        """All contiguous n-grams in the configured range (adjacency-
        limited, as the paper notes)."""
        seen: Dict[str, None] = {}
        for n in range(self._lo, self._hi + 1):
            for start in range(0, len(tokens) - n + 1):
                seen[" ".join(tokens[start:start + n])] = None
        out = list(seen)
        if self._known_queries is not None:
            out = [c for c in out if c in self._known_queries]
        return out

    def recommend(self, item_id: int, title: str, leaf_id: int,
                  k: int = 20) -> List[Prediction]:
        """Rank title n-grams by embedding similarity to the title."""
        if self._embedder is None:
            return []
        tokens = self._tokenizer(title)
        candidates = self._candidates(tokens)
        if not candidates:
            return []
        title_vec = self._embedder.transform([title])[0]
        cand_vecs = self._embedder.transform(candidates)
        sims = cand_vecs @ title_vec

        if self._diversity <= 0.0:
            order = np.argsort(-sims, kind="stable")[:k]
            return [Prediction(text=candidates[i], score=float(sims[i]))
                    for i in order]

        # Greedy MMR selection.
        selected: List[int] = []
        remaining = list(range(len(candidates)))
        while remaining and len(selected) < k:
            best, best_score = None, -np.inf
            for idx in remaining:
                redundancy = max(
                    (float(cand_vecs[idx] @ cand_vecs[s])
                     for s in selected), default=0.0)
                score = ((1.0 - self._diversity) * float(sims[idx])
                         - self._diversity * redundancy)
                if score > best_score:
                    best, best_score = idx, score
            selected.append(best)
            remaining.remove(best)
        return [Prediction(text=candidates[i], score=float(sims[i]))
                for i in selected]

    def targeting_rate(self, predictions: Sequence[Prediction],
                       query_universe: Set[str]) -> float:
        """Fraction of predictions that are real buyer queries.

        The paper's Challenge I-A4: exact-match auctions make untargetable
        keyphrases worthless.  GraphEx is 1.0 by construction; vanilla
        n-gram extraction is not.
        """
        if not predictions:
            return 0.0
        hits = sum(1 for p in predictions if p.text in query_universe)
        return hits / len(predictions)
