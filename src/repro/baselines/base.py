"""Shared interface for every keyphrase recommender under comparison.

All six systems (GraphEx + five eBay production baselines) answer the same
question — "which buyer queries should this item bid on?" — but from very
different inputs: RE and SL-query look items up by id in click logs, the
XMC models and GraphEx read the title.  The harness therefore passes all
three of (item_id, title, leaf_id) to every model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Prediction:
    """One recommended keyphrase with a model-specific score."""

    text: str
    score: float


class KeyphraseRecommender(abc.ABC):
    """Base class for all recommenders in the comparison."""

    #: Display name used in every table and figure.
    name: str = "recommender"

    @abc.abstractmethod
    def recommend(self, item_id: int, title: str, leaf_id: int,
                  k: int = 20) -> List[Prediction]:
        """Recommend up to ``k`` keyphrases for one item.

        Args:
            item_id: Item identifier (used by lookup-based models).
            title: Raw item title (used by extraction/tagging models).
            leaf_id: The item's leaf category.
            k: Maximum number of predictions.

        Returns:
            Predictions in decreasing relevance order (may be shorter than
            ``k``, or empty for cold items under lookup-based models).
        """

    def coverage(self, item_ids: Sequence[int]) -> float:
        """Fraction of the given items this model can say anything about.

        Default implementation assumes full coverage (extraction models);
        lookup-based models override it.
        """
        return 1.0 if item_ids else 0.0


@dataclass(frozen=True)
class TrainingData:
    """Everything a baseline may train on, for one meta category.

    Attributes:
        items: ``(item_id, title, leaf_id)`` triples for the meta's items.
        click_pairs: Click-based ground truths
            ``item_id -> {query_text: clicks}`` (the MNAR-biased signal
            the paper's XMC models consume).
        query_leaf: ``query_text -> leaf_id`` attribution.
    """

    items: Sequence[tuple]
    click_pairs: Dict[int, Dict[str, int]]
    query_leaf: Dict[str, int]
