"""Nearest-neighbour indexes for dense retrieval (SL-emb's second stage).

The paper's SL-emb uses HNSW [28] on CPU.  We provide an exact index (the
reference) and a light graph-based approximate index in the HNSW spirit:
a navigable k-NN graph traversed by greedy best-first search from a few
entry points.  Both speak the same interface so SL-emb can swap them.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


class ExactIndex:
    """Brute-force cosine-similarity index (vectors must be L2-normalized)."""

    def __init__(self, vectors: np.ndarray) -> None:
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-D array")
        self._vectors = np.ascontiguousarray(vectors, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._vectors)

    def query(self, vector: np.ndarray, k: int) -> List[Tuple[int, float]]:
        """Top-k rows by cosine similarity, as (row, similarity) pairs."""
        if len(self._vectors) == 0 or k <= 0:
            return []
        sims = self._vectors @ np.asarray(vector, dtype=np.float64)
        k = min(k, len(sims))
        top = np.argpartition(-sims, k - 1)[:k]
        order = top[np.argsort(-sims[top], kind="stable")]
        return [(int(i), float(sims[i])) for i in order]


class NavigableGraphIndex:
    """Approximate index: greedy best-first search on a k-NN graph.

    A single-layer analogue of HNSW: each vector keeps edges to its
    ``graph_degree`` nearest neighbours (built exactly — fine at training
    scale), and queries walk the graph greedily with a beam from
    ``n_entry_points`` deterministic entry points.

    Args:
        vectors: L2-normalized data matrix.
        graph_degree: Out-degree of every node.
        n_entry_points: Entry points sampled evenly over the data.
        beam_width: Beam size during search; larger is more accurate.
    """

    def __init__(self, vectors: np.ndarray, graph_degree: int = 12,
                 n_entry_points: int = 4, beam_width: int = 24) -> None:
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-D array")
        self._vectors = np.ascontiguousarray(vectors, dtype=np.float64)
        n = len(self._vectors)
        self._beam_width = beam_width
        if n == 0:
            self._neighbors = np.empty((0, 0), dtype=np.int64)
            self._entries: List[int] = []
            return
        degree = min(graph_degree, max(1, n - 1))
        sims = self._vectors @ self._vectors.T
        np.fill_diagonal(sims, -np.inf)
        self._neighbors = np.argpartition(
            -sims, min(degree - 1, n - 1), axis=1)[:, :degree].astype(np.int64)
        step = max(1, n // max(1, n_entry_points))
        self._entries = list(range(0, n, step))[:n_entry_points]

    def __len__(self) -> int:
        return len(self._vectors)

    def query(self, vector: np.ndarray, k: int) -> List[Tuple[int, float]]:
        """Approximate top-k rows by cosine similarity."""
        n = len(self._vectors)
        if n == 0 or k <= 0:
            return []
        vector = np.asarray(vector, dtype=np.float64)
        visited = set(self._entries)
        frontier = list(self._entries)
        scores = {i: float(self._vectors[i] @ vector) for i in frontier}

        improved = True
        while improved and frontier:
            improved = False
            beam = sorted(frontier, key=lambda i: -scores[i])
            beam = beam[:self._beam_width]
            next_frontier: List[int] = []
            worst_in_beam = scores[beam[-1]] if beam else -np.inf
            for node in beam:
                for neighbor in self._neighbors[node]:
                    ni = int(neighbor)
                    if ni in visited:
                        continue
                    visited.add(ni)
                    sim = float(self._vectors[ni] @ vector)
                    scores[ni] = sim
                    if sim > worst_in_beam:
                        improved = True
                    next_frontier.append(ni)
            frontier = beam + next_frontier

        ranked = sorted(scores.items(), key=lambda kv: -kv[1])[:k]
        return [(i, s) for i, s in ranked]
