"""The five eBay production baselines the paper compares GraphEx against.

* :class:`RulesEngine` (RE) — 30-day click lookup, 100% recall.
* :class:`SLQuery` — shared-keyphrase neighbour queries (rule-based).
* :class:`SLEmb` — title embeddings + ANN over similar listings.
* :class:`FastTextLike` — hashed linear BoW classifier on click data.
* :class:`Graphite` — word→item→label bipartite XMC tagger (paper [6]).
"""

from .ann import ExactIndex, NavigableGraphIndex
from .base import KeyphraseRecommender, Prediction, TrainingData
from .embeddings import TitleEmbedder
from .fasttext_like import FastTextLike
from .graphite import Graphite
from .keybert_like import KeyBERTLike
from .rules_engine import RulesEngine
from .sl_emb import SLEmb
from .sl_query import SLQuery, jaccard

__all__ = [
    "ExactIndex",
    "NavigableGraphIndex",
    "KeyphraseRecommender",
    "Prediction",
    "TrainingData",
    "TitleEmbedder",
    "FastTextLike",
    "Graphite",
    "KeyBERTLike",
    "RulesEngine",
    "SLEmb",
    "SLQuery",
    "jaccard",
]
