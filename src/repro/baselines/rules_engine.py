"""Rules Engine (RE): the 100% recall click-lookup recommender.

Paper, Section II: "Rules Engine (RE) is a simple technique that stores
item-keyphrase associations based on their co-occurrences (associated with
buyer activity) in the search logs during the last 30 days ... It
recommends keyphrases only for items in which buyers have shown interest
and not for any new items.  This is a 100% recall model in which buyers'
interest is reflected back to them."

Because RE *is* the click ground truth, Table V uses its recommendations
as labels to score every other model's precision/recall.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..search.logs import SearchLog
from .base import KeyphraseRecommender, Prediction


class RulesEngine(KeyphraseRecommender):
    """Item → clicked-keyphrase lookup over a recent log window.

    Args:
        log: The search log to mine.
        lookback_days: Window length counted back from the log's last day.
        min_activity: Minimum clicks for an (item, keyphrase) pair to be
            stored ("a minimum amount of buyer activity").
    """

    name = "RE"

    def __init__(self, log: SearchLog, lookback_days: int = 30,
                 min_activity: int = 1) -> None:
        min_day = log.day_end - lookback_days + 1
        self._table: Dict[int, Dict[str, int]] = log.item_query_pairs(
            min_day=min_day, min_clicks=min_activity)

    @property
    def n_items_covered(self) -> int:
        """Items with at least one stored association."""
        return len(self._table)

    def recommend(self, item_id: int, title: str, leaf_id: int,
                  k: int = 20) -> List[Prediction]:
        """Return the item's clicked keyphrases, most-clicked first."""
        queries = self._table.get(item_id)
        if not queries:
            return []
        ranked = sorted(queries.items(), key=lambda kv: (-kv[1], kv[0]))
        return [Prediction(text=text, score=float(clicks))
                for text, clicks in ranked[:k]]

    def coverage(self, item_ids: Sequence[int]) -> float:
        """Fraction of items with any stored association (~13% at eBay)."""
        if not item_ids:
            return 0.0
        hits = sum(1 for item_id in item_ids if item_id in self._table)
        return hits / len(item_ids)

    def ground_truth(self, item_id: int) -> Dict[str, int]:
        """The raw click associations for one item (Table V labels)."""
        return dict(self._table.get(item_id, {}))
