"""Graphite: the predecessor graph-based XMC tagger (paper [6]).

Graphite "uses bipartite graphs to map words/tokens to the data points and
then map them to the labels associated with the data points".  It is an
XMC *tagging* model: unlike GraphEx it routes through click-labelled
training items, so it can only surface keyphrases that some similar item
was already clicked for — inheriting the click biases GraphEx avoids.
Candidates are ranked with the Word Match Ratio (``WMR = c / |l|``), the
alignment function the GraphEx ablation compares LTA against (Table VI).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..core.csr import CSRGraph
from ..core.tokenize import DEFAULT_TOKENIZER, Tokenizer
from ..core.vocab import Vocabulary
from .base import KeyphraseRecommender, Prediction, TrainingData


class Graphite(KeyphraseRecommender):
    """Word→item→label bipartite mapping with WMR ranking.

    Args:
        data: Click-based training data (items with labels are indexed).
        max_items_matched: Cap on matched training items per inference
            (Graphite prunes item candidates the same group-wise way
            GraphEx prunes labels).
        min_wmr: Minimum Word Match Ratio for a label to be emitted
            (production Graphite keeps only well-aligned labels, which is
            why its per-item prediction count in Figure 4 is small).
        budget: The model's own configured prediction budget per item.
        tokenizer: Tokenizer for titles and labels.
    """

    name = "Graphite"

    def __init__(self, data: TrainingData, max_items_matched: int = 50,
                 min_wmr: float = 0.25, budget: int = 10,
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> None:
        self._tokenizer = tokenizer
        self._max_items = max_items_matched
        self._min_wmr = min_wmr
        self._budget = budget

        self._word_vocab = Vocabulary()
        self._labels: List[str] = []
        label_ids: Dict[str, int] = {}
        self._label_token_sets: List[Set[str]] = []

        word_item_edges: List[Tuple[int, int]] = []
        item_label_edges: List[Tuple[int, int]] = []
        indexed = 0
        for item_id, title, _leaf in data.items:
            labels = data.click_pairs.get(item_id)
            if not labels:
                continue
            row = indexed
            indexed += 1
            for token in set(tokenizer(title)):
                word_item_edges.append((self._word_vocab.add(token), row))
            for query in labels:
                label_id = label_ids.get(query)
                if label_id is None:
                    label_id = len(self._labels)
                    label_ids[query] = label_id
                    self._labels.append(query)
                    self._label_token_sets.append(set(tokenizer(query)))
                item_label_edges.append((row, label_id))

        self._n_items = indexed
        self._word_item = CSRGraph.from_edges(
            word_item_edges, n_left=max(1, len(self._word_vocab)),
            n_right=max(1, indexed))
        self._item_label = CSRGraph.from_edges(
            item_label_edges, n_left=max(1, indexed),
            n_right=max(1, len(self._labels)))
        self._label_lengths = np.array(
            [max(1, len(s)) for s in self._label_token_sets] or [1],
            dtype=np.int64)

    @property
    def n_labels(self) -> int:
        """Size of the label space."""
        return len(self._labels)

    def memory_bytes(self) -> int:
        """CSR arrays plus label strings (Figure 6b sizing)."""
        strings = sum(len(label) for label in self._labels)
        words = sum(len(w) for w in self._word_vocab)
        return (self._word_item.memory_bytes()
                + self._item_label.memory_bytes() + strings + words)

    def recommend(self, item_id: int, title: str, leaf_id: int,
                  k: int = 20) -> List[Prediction]:
        """Title tokens → matching training items → their labels → WMR rank."""
        if self._n_items == 0 or not self._labels:
            return []
        tokens = list(dict.fromkeys(self._tokenizer(title)))
        matched_lists = []
        for token in tokens:
            word_id = self._word_vocab.get(token)
            if word_id is None:
                continue
            adjacency = self._word_item.neighbors(word_id)
            if len(adjacency):
                matched_lists.append(adjacency)
        if not matched_lists:
            return []
        candidates = np.concatenate(matched_lists)
        items, match_counts = np.unique(candidates, return_counts=True)
        if len(items) > self._max_items:
            order = np.argsort(-match_counts, kind="stable")
            cutoff = match_counts[order[self._max_items - 1]]
            mask = match_counts >= cutoff
            items = items[mask]

        label_lists = [self._item_label.neighbors(int(row)) for row in items]
        label_lists = [adj for adj in label_lists if len(adj)]
        if not label_lists:
            return []
        label_ids = np.unique(np.concatenate(label_lists))

        title_set = set(tokens)
        common = np.array(
            [len(self._label_token_sets[i] & title_set) for i in label_ids],
            dtype=np.float64)
        wmr = common / self._label_lengths[label_ids]
        keep = wmr >= self._min_wmr
        label_ids, wmr = label_ids[keep], wmr[keep]
        order = np.lexsort((label_ids, -wmr))
        return [Prediction(text=self._labels[int(label_ids[i])],
                           score=float(wmr[i]))
                for i in order[:min(k, self._budget)]]
