"""SL-emb: dense retrieval of similar listings, then their queries.

Paper, Section II: "SL-emb uses embeddings of the item's title to compare
and find similar listings, and then recommend the related queries ...
inference is implemented in two stages, namely, embedding generation and
ANN."  Predictions are truncated with a Jaccard threshold like SL-query.
Unlike the rule-based SL-query, SL-emb covers cold items (any title can
be embedded) and does not need daily retraining.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.tokenize import DEFAULT_TOKENIZER, Tokenizer
from .ann import ExactIndex, NavigableGraphIndex
from .base import KeyphraseRecommender, Prediction, TrainingData
from .embeddings import TitleEmbedder
from .sl_query import jaccard


class SLEmb(KeyphraseRecommender):
    """Embedding-based similar-listing recommender.

    Args:
        data: Training data; only items with click queries are indexed
            (they are the ones whose queries can be propagated).
        n_neighbors: Similar listings retrieved per seed item.
        jaccard_threshold: Token-level Jaccard cut-off for candidate
            keyphrases against the seed title.
        embedding_dim: Dimensionality of the title embedding.
        approximate: Use the navigable-graph ANN instead of exact search.
        tokenizer: Tokenizer for the Jaccard truncation.
    """

    name = "SL-emb"

    def __init__(self, data: TrainingData, n_neighbors: int = 12,
                 jaccard_threshold: float = 0.15,
                 embedding_dim: int = 64,
                 approximate: bool = True,
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> None:
        self._tokenizer = tokenizer
        self._threshold = jaccard_threshold
        self._n_neighbors = n_neighbors

        self._indexed_items: List[int] = []
        titles: List[str] = []
        for item_id, title, _leaf in data.items:
            if item_id in data.click_pairs:
                self._indexed_items.append(item_id)
                titles.append(title)
        self._item_queries: Dict[int, Dict[str, int]] = data.click_pairs

        if titles:
            self._embedder = TitleEmbedder(
                dim=embedding_dim, tokenizer=tokenizer).fit(titles)
            vectors = self._embedder.transform(titles)
            if approximate and len(titles) > 64:
                self._index = NavigableGraphIndex(vectors)
            else:
                self._index = ExactIndex(vectors)
        else:
            self._embedder = None
            self._index = ExactIndex(np.empty((0, 1)))

    def recommend(self, item_id: int, title: str, leaf_id: int,
                  k: int = 20) -> List[Prediction]:
        """Embed the title, find similar listings, return their queries."""
        if self._embedder is None or len(self._index) == 0:
            return []
        vector = self._embedder.transform([title])[0]
        neighbors = self._index.query(vector, self._n_neighbors)

        scores: Dict[str, float] = {}
        for row, similarity in neighbors:
            neighbor_id = self._indexed_items[row]
            if neighbor_id == item_id:
                continue
            weight = max(0.0, similarity)
            for query, clicks in self._item_queries[neighbor_id].items():
                scores[query] = scores.get(query, 0.0) + weight * clicks

        title_tokens = set(self._tokenizer(title))
        survivors = [
            (query, score) for query, score in scores.items()
            if jaccard(set(self._tokenizer(query)), title_tokens)
            >= self._threshold
        ]
        survivors.sort(key=lambda kv: (-kv[1], kv[0]))
        return [Prediction(text=q, score=s) for q, s in survivors[:k]]
