"""SL-query: similar listings share similar queries (rule-based).

Paper, Section II: "SL-query recommends the associated queries of listings
that share a keyphrase with the seed item ... predictions are truncated
from a higher number of predictions using a Jaccard coefficient threshold
to ensure relevance."  Like RE it has low item coverage and cannot serve
cold items.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..core.tokenize import DEFAULT_TOKENIZER, Tokenizer
from .base import KeyphraseRecommender, Prediction, TrainingData


def jaccard(a: Set[str], b: Set[str]) -> float:
    """Jaccard coefficient between two token sets (0 when both empty)."""
    if not a and not b:
        return 0.0
    inter = len(a & b)
    union = len(a | b)
    return inter / union if union else 0.0


class SLQuery(KeyphraseRecommender):
    """Shared-keyphrase neighbour queries with Jaccard truncation.

    Args:
        data: Training data with click pairs.
        jaccard_threshold: Minimum Jaccard similarity between a candidate
            keyphrase's tokens and the seed title's tokens for the
            candidate to survive truncation.
        tokenizer: Tokenizer for titles and keyphrases.
    """

    name = "SL-query"

    def __init__(self, data: TrainingData, jaccard_threshold: float = 0.2,
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> None:
        self._threshold = jaccard_threshold
        self._tokenizer = tokenizer
        self._item_queries: Dict[int, Dict[str, int]] = {
            item_id: dict(queries)
            for item_id, queries in data.click_pairs.items()
        }
        self._query_items: Dict[str, List[int]] = {}
        for item_id, queries in self._item_queries.items():
            for query in queries:
                self._query_items.setdefault(query, []).append(item_id)

    def recommend(self, item_id: int, title: str, leaf_id: int,
                  k: int = 20) -> List[Prediction]:
        """Collect queries of listings sharing a keyphrase with the seed."""
        seed_queries = self._item_queries.get(item_id)
        if not seed_queries:
            return []
        neighbor_ids: Set[int] = set()
        for query in seed_queries:
            neighbor_ids.update(self._query_items.get(query, ()))
        neighbor_ids.discard(item_id)

        scores: Dict[str, float] = {}
        for neighbor in neighbor_ids:
            for query, clicks in self._item_queries[neighbor].items():
                if query in seed_queries:
                    continue
                scores[query] = scores.get(query, 0.0) + float(clicks)

        title_tokens = set(self._tokenizer(title))
        survivors = [
            (query, score) for query, score in scores.items()
            if jaccard(set(self._tokenizer(query)), title_tokens)
            >= self._threshold
        ]
        survivors.sort(key=lambda kv: (-kv[1], kv[0]))
        # The seed's own queries lead (they are certain), then neighbours'.
        own = sorted(seed_queries.items(), key=lambda kv: (-kv[1], kv[0]))
        out = [Prediction(text=q, score=float(c)) for q, c in own]
        out.extend(Prediction(text=q, score=s) for q, s in survivors)
        return out[:k]

    def coverage(self, item_ids: Sequence[int]) -> float:
        """Fraction of items with click history (cold items uncovered)."""
        if not item_ids:
            return 0.0
        hits = sum(1 for item_id in item_ids
                   if item_id in self._item_queries)
        return hits / len(item_ids)
