"""Command-line interface for the GraphEx reproduction.

Mirrors a production workflow in six subcommands::

    repro-graphex simulate  --out logs.json [--profile tiny|default]
    repro-graphex curate    --log logs.json --out curated.json [--min-search-count N] [--engine reference|fast]
    repro-graphex construct --curated curated.json --out model_dir/ [--builder reference|fast] [--workers N] [--executor serial|thread|process|cluster] [--format-version 1|2|3]
    repro-graphex recommend --model model_dir/ --title "..." --leaf ID [-k N] [--engine reference|fast] [--workers N] [--executor serial|thread|process|cluster] [--mmap]
    repro-graphex serve-nrt --model model_dir/ [--streams N] [--events N] [--refresh-after N]
    repro-graphex evaluate  [--profile tiny|default] [--meta CAT_1]
    repro-graphex cluster-worker --connect HOST:PORT [--name W] [--die-after-assignments N]
    repro-graphex cluster-run --model model_dir/ [--spawn-workers N] [--kill-after K] [--metrics-out PATH]
    repro-graphex metrics SNAPSHOT.json [SNAPSHOT.json ...] [--merge-out PATH]

``simulate`` writes aggregated keyphrase stats (the only GraphEx training
input) as JSON; ``curate`` persists the curated keyphrases *and* the
curation config (so ``construct`` round-trips the exact configuration);
``construct`` persists the model with
:func:`repro.core.serialization.save_model` (format 3 by default — the
zero-copy page-aligned artifact); ``recommend`` loads and serves
(``--mmap`` opens the artifact without copying); ``serve-nrt`` demos
the asyncio multi-stream NRT front (``--refresh-after`` adds a mid-run
zero-downtime model hot-swap, handed off by artifact *path* so a
format-3 model remaps instead of reloading).
``evaluate`` runs the miniature Table III comparison.

Observability rides along everywhere: ``serve-nrt`` and
``cluster-run`` accept ``--metrics-out PATH`` to dump the run's
(fleet-merged, for the cluster) metrics snapshot as schema-versioned
JSON, and the ``metrics`` subcommand reads any number of such
snapshots back, merges them exactly (see :mod:`repro.obs`), and
renders the result.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from .core.batch import ENGINES, batch_recommend
from .core.curation import CURATION_ENGINES, CurationConfig, curate
from .core.execution import EXECUTOR_NAMES
from .core.model import BUILDERS, GraphExModel
from .core.sharding import PARALLEL_MODES
from .core.serialization import load_model, save_model
from .data.generator import DEFAULT_PROFILE, TINY_PROFILE, generate_dataset
from .search.logs import KeyphraseStat
from .search.sessions import SessionSimulator

_PROFILES = {"tiny": TINY_PROFILE, "default": DEFAULT_PROFILE}


def _cmd_simulate(args: argparse.Namespace) -> int:
    profile = _PROFILES[args.profile]
    dataset = generate_dataset(profile)
    simulator = SessionSimulator(dataset.catalog, dataset.queries,
                                 seed=args.seed)
    log = simulator.run_training_window(n_events=args.events)
    stats = [
        {"text": s.text, "leaf_id": s.leaf_id,
         "search_count": s.search_count, "recall_count": s.recall_count}
        for s in log.keyphrase_stats()
    ]
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump({"profile": args.profile, "stats": stats}, fh)
    print(f"wrote {len(stats)} keyphrase stats to {args.out}")
    return 0


def _load_stats(path: str) -> List[KeyphraseStat]:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    return [KeyphraseStat(text=s["text"], leaf_id=s["leaf_id"],
                          search_count=s["search_count"],
                          recall_count=s["recall_count"])
            for s in payload["stats"]]


def _cmd_curate(args: argparse.Namespace) -> int:
    stats = _load_stats(args.log)
    curated = curate(stats, CurationConfig(
        min_search_count=args.min_search_count,
        min_keyphrases=args.min_keyphrases,
        floor_search_count=args.floor), engine=args.engine)
    payload = {
        "effective_threshold": curated.effective_threshold,
        # Persist the curation knobs so `construct` rebuilds the exact
        # CuratedKeyphrases (a round-trip used to silently reset the
        # config to defaults).
        "config": dataclasses.asdict(curated.config),
        "leaves": {
            str(leaf_id): {
                "texts": leaf.texts,
                "search_counts": leaf.search_counts,
                "recall_counts": leaf.recall_counts,
            }
            for leaf_id, leaf in curated.leaves.items()
        },
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    print(f"curated {curated.n_keyphrases} keyphrases "
          f"(effective threshold {curated.effective_threshold}) "
          f"-> {args.out}")
    return 0


def _load_curated(path: str):
    """Rebuild the exact ``curate --out`` CuratedKeyphrases — leaves,
    effective threshold, *and* curation config (a round-trip used to
    silently reset the config to defaults)."""
    from .core.curation import CuratedKeyphrases, CuratedLeaf

    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    leaves = {}
    for leaf_id_str, data in payload["leaves"].items():
        leaf = CuratedLeaf(leaf_id=int(leaf_id_str))
        for text, search, recall in zip(
                data["texts"], data["search_counts"],
                data["recall_counts"]):
            leaf.add(text, search, recall)
        leaves[int(leaf_id_str)] = leaf
    # Older curated files predate the persisted config block; they fall
    # back to defaults, as before.
    return CuratedKeyphrases(
        leaves=leaves,
        effective_threshold=payload["effective_threshold"],
        config=CurationConfig(**payload.get("config", {})))


def _cli_executor(args: argparse.Namespace):
    """Resolve ``--executor`` / the legacy ``--parallel`` alias to one
    executor spec.  ``--executor`` wins when given; ``--parallel``
    (default ``thread``) otherwise — passing both is fine because the
    alias is simply ignored once the new flag is set.  ``cluster``
    boots a self-contained localhost fleet
    (:meth:`repro.core.execution.ClusterExecutor.local`); the caller
    owns the returned instance and must ``close()`` it."""
    spec = args.executor if args.executor is not None else args.parallel
    if spec == "cluster":
        from .core.execution import ClusterExecutor

        return ClusterExecutor.local(workers=max(2, args.workers))
    return spec


def _close_executor(spec) -> None:
    """Tear down an executor ``_cli_executor`` instantiated (a string
    spec owns nothing and is left alone)."""
    if not isinstance(spec, str):
        spec.close()


def _cmd_construct(args: argparse.Namespace) -> int:
    curated = _load_curated(args.curated)
    executor = _cli_executor(args)
    try:
        start = time.perf_counter()
        model = GraphExModel.construct(curated, alignment=args.alignment,
                                       builder=args.builder,
                                       workers=args.workers,
                                       executor=executor)
        elapsed = time.perf_counter() - start
    finally:
        _close_executor(executor)
    save_model(model, args.out, format_version=args.format_version)
    rate = model.n_keyphrases / elapsed if elapsed > 0 else float("inf")
    print(f"constructed {model.n_leaves} leaf graphs / "
          f"{model.n_keyphrases} labels in {elapsed:.3f}s "
          f"({rate:,.0f} keyphrases/s, builder={args.builder}) "
          f"-> {args.out} (format v{args.format_version})")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    model = load_model(args.model, mmap=args.mmap)
    executor = _cli_executor(args)
    try:
        results = batch_recommend(model, [(0, args.title, args.leaf)],
                                  k=args.k, engine=args.engine,
                                  workers=args.workers,
                                  executor=executor)
    finally:
        _close_executor(executor)
    recs = results[0]
    if not recs:
        print("(no recommendations)")
        return 0
    for rec in recs:
        print(f"{rec.score:8.3f}  S={rec.search_count:<8d} "
              f"R={rec.recall_count:<8d} {rec.text}")
    return 0


def _cmd_serve_nrt(args: argparse.Namespace) -> int:
    """Demo of the asyncio NRT front: synthesize per-stream event feeds
    from the model's own keyphrases and drive them concurrently."""
    import asyncio
    import random

    from .serving import AsyncNRTFront, ItemEvent, ItemEventKind

    model = load_model(args.model)
    rng = random.Random(args.seed)
    leaf_ids = model.leaf_ids
    titles = {leaf_id: model.leaf_graph(leaf_id).label_texts
              for leaf_id in leaf_ids}

    def make_events(stream_index: int) -> List[ItemEvent]:
        events = []
        for i in range(args.events):
            leaf_id = rng.choice(leaf_ids)
            pool = titles[leaf_id]
            events.append(ItemEvent(
                kind=ItemEventKind.REVISED if rng.random() < 0.3
                else ItemEventKind.CREATED,
                item_id=stream_index * args.events + i,
                title=rng.choice(pool) if pool else "",
                leaf_id=leaf_id, timestamp=float(i)))
        return events

    front = AsyncNRTFront(
        model, window_size=args.window_size,
        window_seconds=args.window_seconds,
        engine=args.engine, workers=args.workers,
        executor=args.executor if args.executor is not None
        else args.parallel)
    streams = [f"stream-{i}" for i in range(args.streams)]
    feeds = {}
    for index, name in enumerate(streams):
        front.add_stream(name)
        feeds[name] = make_events(index)

    split = min(args.refresh_after, args.events) \
        if args.refresh_after > 0 else 0

    async def drive() -> float:
        # Time the whole run including the shutdown drain: after the
        # gather, events may still sit in the ingestion queues, and
        # stopping the clock before stop() would overstate events/s.
        start = time.perf_counter()
        async with front:
            if split:
                # The daily-refresh demo: swap in a freshly loaded
                # model mid-run (here: the same model re-read from
                # disk, standing in for today's rebuild) while traffic
                # keeps flowing — no stream stops serving.
                await asyncio.gather(*(
                    _feed(front, name, feeds[name][:split])
                    for name in streams))
                # Hand the front the artifact *path*: a format-3
                # directory remaps zero-copy (one shared physical
                # model across every stream), older formats fall back
                # to a copied load inside refresh_model.
                generation = await front.refresh_model(args.model)
                print(f"hot-swapped to model generation {generation} "
                      f"after {split} events/stream "
                      "(traffic kept flowing)")
                await asyncio.gather(*(
                    _feed(front, name, feeds[name][split:])
                    for name in streams))
            else:
                await asyncio.gather(*(
                    _feed(front, name, feeds[name]) for name in streams))
        return time.perf_counter() - start

    async def _feed(front, name, events):
        for event in events:
            await front.submit(name, event)

    elapsed = asyncio.run(drive())
    total = args.streams * args.events
    for stats in front.all_stats():
        print(f"{stats.name}: {stats.n_submitted} events -> "
              f"{stats.n_windows} windows, {stats.n_inferred} inferred, "
              f"{stats.n_deleted} deleted, "
              f"{stats.n_flush_failures} flush failures")
        if split:
            by_generation: dict = {}
            for window in front.processed_windows(stats.name):
                by_generation[window.model_generation] = \
                    by_generation.get(window.model_generation, 0) + 1
            generations = ", ".join(
                f"gen {generation}: {count}"
                for generation, count in sorted(by_generation.items()))
            print(f"  windows by model generation: {generations}")
    rate = total / elapsed if elapsed > 0 else float("inf")
    print(f"served {total} events across {args.streams} streams "
          f"in {elapsed:.3f}s ({rate:,.0f} events/s)")
    if args.metrics_out:
        from .obs import dump_snapshot

        dump_snapshot(front.metrics.snapshot(), args.metrics_out)
        print(f"wrote metrics snapshot to {args.metrics_out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .eval import Experiment, ExperimentConfig
    from .eval.metrics import (relative_head_ratio,
                               relative_relevant_ratio)
    from .eval.reporting import render_table

    if args.profile == "tiny":
        config = ExperimentConfig(
            profile=TINY_PROFILE, n_train_events=30_000,
            n_test_events=5_000,
            curation=CurationConfig(min_search_count=3,
                                    min_keyphrases=100,
                                    floor_search_count=2),
            test_items_per_meta={"CAT_1": 60, "CAT_2": 40, "CAT_3": 20})
    else:
        config = ExperimentConfig()
    experiment = Experiment(config).prepare()
    metas = [args.meta] if args.meta else experiment.metas
    for meta in metas:
        judged = experiment.judged(meta)
        reference = judged["GraphEx"]
        rows = [[name, j.rp, j.hp,
                 relative_relevant_ratio(j, reference),
                 relative_head_ratio(j, reference)]
                for name, j in judged.items()]
        print(render_table(["model", "RP", "HP", "RRR", "RHR"], rows,
                           title=f"\n{meta}"))
    return 0


def _cmd_cluster_worker(args: argparse.Namespace) -> int:
    """Run one executor host until its coordinator shuts it down."""
    import asyncio

    from .cluster import ClusterWorker

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"--connect must be HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    worker = ClusterWorker(
        host, int(port), name=args.name, spool_dir=args.spool,
        heartbeat_interval=args.heartbeat,
        die_after_assignments=args.die_after_assignments,
        # A CLI worker is a whole "machine": the kill switch must take
        # the process down, not just raise, so the bench/CI crash
        # drills exercise a real host death.
        hard_exit=True)
    asyncio.run(worker.run())
    return 0


def _synthesize_requests(model: GraphExModel, n: int,
                         seed: int) -> list:
    """Seeded inference requests drawn from the model's own labels."""
    import random

    rng = random.Random(seed)
    leaf_ids = model.leaf_ids
    titles = {leaf_id: model.leaf_graph(leaf_id).label_texts
              for leaf_id in leaf_ids}
    requests = []
    for item_id in range(n):
        leaf_id = rng.choice(leaf_ids)
        pool = titles[leaf_id]
        requests.append((item_id,
                         rng.choice(pool) if len(pool) else "",
                         leaf_id))
    return requests


def _cmd_cluster_run(args: argparse.Namespace) -> int:
    """Demo/smoke of the fault-tolerant cluster runner.

    Spawns ``--spawn-workers`` real worker *subprocesses* (each its own
    "machine"), runs a batch across them, verifies the merged output
    element-wise against the in-process fast path, and prints the run
    report.  ``--kill-after K`` arms the first worker's kill switch so
    it hard-exits mid-plan — the run must still verify, through
    dead-host re-planning.
    """
    import asyncio
    import os
    import subprocess

    from .cluster import ClusterCoordinator, RetryPolicy
    from .core.fast_inference import LeafBatchRunner

    model = load_model(args.model, mmap=True)
    requests = _synthesize_requests(model, args.requests, args.seed)
    expected = LeafBatchRunner(model, k=args.k).run(requests)

    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root] + ([env["PYTHONPATH"]]
                          if env.get("PYTHONPATH") else []))

    async def drive() -> int:
        procs = []
        async with ClusterCoordinator(
                rpc_timeout=args.rpc_timeout,
                retry=RetryPolicy(seed=args.seed),
                heartbeat_timeout=4.0) as coordinator:
            try:
                for index in range(args.spawn_workers):
                    argv = [sys.executable, "-m", "repro.cli",
                            "cluster-worker",
                            "--connect",
                            f"{coordinator.host}:{coordinator.port}",
                            "--name", f"machine-{index}",
                            "--heartbeat", "0.5"]
                    if args.kill_after is not None and index == 0:
                        argv += ["--die-after-assignments",
                                 str(args.kill_after)]
                    procs.append(subprocess.Popen(argv, env=env))
                await coordinator.wait_for_workers(args.spawn_workers,
                                                   timeout=30.0)
                start = time.perf_counter()
                got = await coordinator.run_inference(
                    str(args.model), requests, k=args.k)
                elapsed = time.perf_counter() - start
            finally:
                await coordinator.stop()
                for proc in procs:
                    try:
                        proc.wait(timeout=10.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
            report = coordinator.last_report
            identical = got == expected
            rate = len(requests) / elapsed if elapsed > 0 \
                else float("inf")
            print(f"ran {len(requests)} requests across "
                  f"{args.spawn_workers} worker machines in "
                  f"{elapsed:.3f}s ({rate:,.0f} req/s)")
            for field, value in sorted(report.as_dict().items()):
                if field == "fleet_metrics":
                    continue      # full snapshot goes to --metrics-out
                print(f"  {field}: {value}")
            print(f"  verified_identical: {identical}")
            if args.metrics_out:
                from .obs import dump_snapshot, empty_snapshot

                snapshot = report.fleet_metrics \
                    if report.fleet_metrics is not None \
                    else empty_snapshot()
                dump_snapshot(snapshot, args.metrics_out)
                print(f"wrote fleet metrics snapshot to "
                      f"{args.metrics_out}")
            return 0 if identical else 1

    return asyncio.run(drive())


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run repro-lint (:mod:`repro.analysis`) — same engine and exit
    codes as ``python -m repro.analysis``."""
    from .analysis.__main__ import main as lint_main

    argv: List[str] = []
    if args.root is not None:
        argv += ["--root", args.root]
    if args.json is not None:
        argv += ["--json", args.json]
    for rule in args.rule or ():
        argv += ["--rule", rule]
    if args.list_rules:
        argv.append("--list-rules")
    if args.quiet:
        argv.append("--quiet")
    return lint_main(argv)


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Read metrics snapshots, merge them exactly, render the result.

    One snapshot just renders; several merge first (merging is exact
    and associative, so any grouping of worker snapshots yields the
    same fleet view — :mod:`repro.obs` property-tests this).
    """
    from .obs import (TICKS_PER_SECOND, dump_snapshot, load_snapshot,
                      merge_snapshots)

    try:
        snapshots = [load_snapshot(path) for path in args.snapshots]
        merged = merge_snapshots(snapshots)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot read/merge snapshots: {exc}", file=sys.stderr)
        return 2
    if args.merge_out:
        dump_snapshot(merged, args.merge_out)
        print(f"wrote merged snapshot of {len(snapshots)} "
              f"input(s) to {args.merge_out}")
    print(f"counters ({len(merged['counters'])}):")
    for key, value in sorted(merged["counters"].items()):
        print(f"  {key} = {value}")
    print(f"gauges ({len(merged['gauges'])}):")
    for key, (value, vmax, vmin) in sorted(merged["gauges"].items()):
        print(f"  {key} = {value:g} (min {vmin:g}, max {vmax:g})")
    print(f"histograms ({len(merged['histograms'])}):")
    for key, hist in sorted(merged["histograms"].items()):
        count = hist["count"]
        total = hist["sum_ticks"] / TICKS_PER_SECOND
        mean = total / count if count else 0.0
        print(f"  {key}: n={count} total={total:.6f}s "
              f"mean={mean * 1e3:.3f}ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-graphex",
        description="GraphEx reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate",
                           help="simulate buyer sessions, write stats")
    p_sim.add_argument("--out", required=True)
    p_sim.add_argument("--profile", choices=_PROFILES, default="tiny")
    p_sim.add_argument("--events", type=int, default=30_000)
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.set_defaults(func=_cmd_simulate)

    p_cur = sub.add_parser("curate", help="curate head keyphrases")
    p_cur.add_argument("--log", required=True)
    p_cur.add_argument("--out", required=True)
    p_cur.add_argument("--min-search-count", type=int, default=4)
    p_cur.add_argument("--min-keyphrases", type=int, default=200)
    p_cur.add_argument("--floor", type=int, default=2)
    p_cur.add_argument("--engine", choices=CURATION_ENGINES,
                       default="fast",
                       help="curation path: scalar reference loop or the "
                            "vectorized mask passes (identical output)")
    p_cur.set_defaults(func=_cmd_curate)

    p_con = sub.add_parser("construct", help="construct the GraphEx model")
    p_con.add_argument("--curated", required=True)
    p_con.add_argument("--out", required=True)
    p_con.add_argument("--alignment", choices=["lta", "wmr", "jac"],
                       default="lta")
    p_con.add_argument("--builder", choices=BUILDERS, default="fast",
                       help="construction path: scalar reference loop or "
                            "the bulk array-native engine (bit-identical "
                            "model)")
    p_con.add_argument("--workers", type=int, default=1,
                       help="fast-builder worker count; whole leaves "
                            "are sharded")
    p_con.add_argument("--executor", choices=EXECUTOR_NAMES,
                       default=None,
                       help="where leaf shards run: 'serial' (the "
                            "in-order oracle), 'thread' (default) "
                            "in-process fan-out, 'process' worker "
                            "processes with per-shard token caches "
                            "merged afterwards, 'cluster' a "
                            "self-contained localhost worker fleet — "
                            "bit-identical model on every substrate "
                            "(fast builder only for process/cluster)")
    p_con.add_argument("--parallel", choices=PARALLEL_MODES,
                       default="thread",
                       help="legacy alias of --executor (thread/process "
                            "only); ignored when --executor is given")
    p_con.add_argument("--format-version", type=int, choices=[1, 2, 3],
                       default=3,
                       help="on-disk format: 3 (default) writes the "
                            "zero-copy page-aligned artifact that "
                            "'recommend --mmap' and hot-swap-by-path "
                            "open without copying; 2/1 write the "
                            "older npz formats")
    p_con.set_defaults(func=_cmd_construct)

    p_rec = sub.add_parser("recommend", help="serve one title")
    p_rec.add_argument("--model", required=True)
    p_rec.add_argument("--title", required=True)
    p_rec.add_argument("--leaf", type=int, required=True)
    p_rec.add_argument("-k", type=int, default=10)
    p_rec.add_argument("--engine", choices=ENGINES,
                       default="fast",
                       help="inference path: scalar reference loop or the "
                            "vectorized leaf-batched engine (identical "
                            "output)")
    p_rec.add_argument("--workers", type=int, default=1,
                       help="fast-engine worker count; whole leaf "
                            "groups are sharded")
    p_rec.add_argument("--executor", choices=EXECUTOR_NAMES,
                       default=None,
                       help="where leaf-group shards run: 'serial' (the "
                            "in-order oracle), 'thread' (default) "
                            "in-process fan-out, 'process' worker "
                            "processes, 'cluster' a self-contained "
                            "localhost worker fleet — identical output "
                            "on every substrate (fast engine only for "
                            "process/cluster)")
    p_rec.add_argument("--parallel", choices=PARALLEL_MODES,
                       default="thread",
                       help="legacy alias of --executor (thread/process "
                            "only); ignored when --executor is given")
    p_rec.add_argument("--mmap", action="store_true",
                       help="open the model zero-copy over the "
                            "format-3 artifact file (read-only views, "
                            "no copy); identical output to a copied "
                            "load")
    p_rec.set_defaults(func=_cmd_recommend)

    p_srv = sub.add_parser(
        "serve-nrt",
        help="demo the asyncio NRT front on synthetic event streams")
    p_srv.add_argument("--model", required=True)
    p_srv.add_argument("--streams", type=int, default=3,
                       help="concurrent NRT streams to drive")
    p_srv.add_argument("--events", type=int, default=200,
                       help="events synthesized per stream")
    p_srv.add_argument("--window-size", type=int, default=32)
    p_srv.add_argument("--window-seconds", type=float, default=1.0)
    p_srv.add_argument("--engine", choices=ENGINES, default="fast")
    p_srv.add_argument("--workers", type=int, default=1)
    p_srv.add_argument("--executor",
                       choices=("serial", "thread", "process"),
                       default=None,
                       help="window micro-batch shard substrate "
                            "(identical output on each; a long-lived "
                            "service keeps its own cluster, so "
                            "'cluster' is not offered here)")
    p_srv.add_argument("--parallel", choices=PARALLEL_MODES,
                       default="thread",
                       help="legacy alias of --executor; ignored when "
                            "--executor is given")
    p_srv.add_argument("--refresh-after", type=int, default=0,
                       help="hot-swap a freshly loaded model after this "
                            "many events per stream, mid-run (0 = no "
                            "refresh demo)")
    p_srv.add_argument("--seed", type=int, default=7)
    p_srv.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="dump the front's metrics registry snapshot "
                            "(per-stream counters, window latency "
                            "histograms, staleness gauges) as JSON")
    p_srv.set_defaults(func=_cmd_serve_nrt)

    p_eval = sub.add_parser("evaluate", help="run the model bake-off")
    p_eval.add_argument("--profile", choices=_PROFILES, default="tiny")
    p_eval.add_argument("--meta", default=None)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_cwk = sub.add_parser(
        "cluster-worker",
        help="run one cluster executor host (dials the coordinator)")
    p_cwk.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="the coordinator's listening address")
    p_cwk.add_argument("--name", default=None,
                       help="registration name (default: worker-<pid>)")
    p_cwk.add_argument("--spool", default=None,
                       help="spool dir for streamed artifacts and leaf "
                            "bundles (default: private temp dir)")
    p_cwk.add_argument("--heartbeat", type=float, default=1.0,
                       help="seconds between liveness heartbeats")
    p_cwk.add_argument("--die-after-assignments", type=int, default=None,
                       help="fault-injection kill switch: hard-exit the "
                            "process when a shard arrives after this "
                            "many completed assignments")
    p_cwk.set_defaults(func=_cmd_cluster_worker)

    p_crn = sub.add_parser(
        "cluster-run",
        help="demo the fault-tolerant cluster runner on subprocess "
             "worker machines, verifying bit-identical output (the "
             "subprocess-fleet sibling of 'recommend --executor "
             "cluster', which boots in-process workers instead)")
    p_crn.add_argument("--model", required=True,
                       help="serialized model directory (format 3 is "
                            "mmap-shared across the machines)")
    p_crn.add_argument("--spawn-workers", type=int, default=3,
                       help="worker subprocesses ('machines') to spawn")
    p_crn.add_argument("--kill-after", type=int, default=None,
                       help="arm the first worker's kill switch: it "
                            "hard-exits when a shard arrives after "
                            "this many completed assignments (0 = dies "
                            "on its first shard); the run must still "
                            "verify via dead-host re-planning")
    p_crn.add_argument("--requests", type=int, default=64,
                       help="synthetic requests drawn from the model's "
                            "own labels")
    p_crn.add_argument("-k", type=int, default=10)
    p_crn.add_argument("--rpc-timeout", type=float, default=30.0)
    p_crn.add_argument("--seed", type=int, default=7)
    p_crn.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="dump the merged fleet metrics snapshot "
                            "(coordinator + latest per-worker "
                            "registries) as JSON")
    p_crn.set_defaults(func=_cmd_cluster_run)

    p_met = sub.add_parser(
        "metrics",
        help="read metrics snapshots, merge exactly, render")
    p_met.add_argument("snapshots", nargs="+", metavar="SNAPSHOT.json",
                       help="snapshot files written by --metrics-out "
                            "(or any repro.obs dump_snapshot output)")
    p_met.add_argument("--merge-out", default=None, metavar="PATH",
                       help="also write the merged snapshot as JSON")
    p_met.set_defaults(func=_cmd_metrics)

    p_lnt = sub.add_parser(
        "lint",
        help="run repro-lint, the AST invariant checker, over the "
             "package (exit 1 on any unwaived violation)")
    p_lnt.add_argument("--root", default=None,
                       help="package directory to lint (default: the "
                            "installed repro package)")
    p_lnt.add_argument("--json", default=None, metavar="PATH",
                       help="also write the machine-readable JSON "
                            "report here (the CI artifact)")
    p_lnt.add_argument("--rule", action="append", default=None,
                       metavar="RULE-ID",
                       help="run only this rule (repeatable; see "
                            "--list-rules)")
    p_lnt.add_argument("--list-rules", action="store_true",
                       help="list registered rules and exit")
    p_lnt.add_argument("--quiet", action="store_true",
                       help="suppress the report on success")
    p_lnt.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
