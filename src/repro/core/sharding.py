"""Process-parallel shard execution (Sections IV-G/IV-H at scale).

The fast engines already shard work across *threads* — leaf groups for
inference (``LeafBatchRunner(workers=...)``), whole leaves for
construction (``construct(workers=...)``) — but tokenization and the
Python orchestration around the vectorized kernels hold the GIL, so
thread shards cannot exceed one core.  This module lifts the same shard
units into worker *processes*:

* :class:`ShardPlan` deterministically partitions cost-weighted work
  units (leaf groups keyed by leaf id) across shards with a
  longest-processing-time greedy pass.  A plan is JSON-serializable —
  exactly the unit a multi-machine runner would ship to remote workers,
  per the ROADMAP's partitioning goal.
* :class:`ProcessShardExecutor` runs planned shards in worker
  processes: inference shards through a per-worker
  :class:`~repro.core.fast_inference.LeafBatchRunner` (the model is
  shipped once per worker via the pool initializer), construction
  shards through
  :func:`~repro.core.fast_construct.build_leaf_graph_fast` with a
  *per-shard* :class:`~repro.core.tokenize.TokenCache` whose pool is
  merged into the parent cache afterwards with a stable id-remap
  (:meth:`~repro.core.tokenize.TokenCache.absorb_state`).  Built
  graphs come back as zero-copy format-3 leaf bundles
  (:mod:`repro.core.serialization`) opened ``mmap=True`` in the
  parent — never as pickled graph objects.

Both process paths are element-wise/bit-identical to the single-process
fast paths: a request's inference output does not depend on batch
composition, and a leaf's built graph does not depend on shared-pool id
assignment order — both contracts are pinned by the equivalence suites
(``tests/test_fast_inference.py``, ``tests/test_fast_construct.py``),
which extend to the process shards.  ``parallel="thread"`` remains the
default everywhere; the scalar ``reference`` paths stay single-process
as the semantics oracle.

Everything crossing the process boundary must pickle: the built-in
tokenizers and alignment functions do, while ad-hoc lambdas do not —
use module-level callables with ``parallel="process"``.
"""

from __future__ import annotations

import json
import multiprocessing
import shutil
import tempfile
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional,
                    Sequence, Tuple)

from .batch import BatchResult, InferenceRequest
from .fast_construct import build_leaf_graph_fast, fast_construct_leaf_graphs
from .fast_inference import DEFAULT_DENSE_LIMIT, LeafBatchRunner
from .inference import Recommendation
from .tokenize import TokenCache, Tokenizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .curation import CuratedKeyphrases, CuratedLeaf
    from .model import GraphExModel, LeafGraph

#: Parallel execution modes accepted by the batch/construct entry points
#: (and the CLI ``--parallel`` flags).  ``thread`` shards within the
#: calling process; ``process`` runs fast-path shards in worker
#: processes.
PARALLEL_MODES = ("thread", "process")

#: Shard-plan key for the leaf group served by the pooled fallback graph
#: (requests whose leaf has no graph of its own).  Mirrors the pooled
#: pseudo-leaf id convention of ``repro.core.model._pool_leaves``.
POOLED_GROUP = -1


class ShardWorkerError(Exception):
    """An exception raised *inside* a shard worker process.

    ``concurrent.futures`` pickles worker exceptions back to the parent
    but loses the worker-side traceback (the re-raise points at the
    parent's ``future.result()`` call), and an exception that cannot
    pickle at all surfaces as a bare ``BrokenProcessPool``.  The worker
    entry points therefore catch everything and raise this instead — a
    single-string exception that always pickles and carries the full
    ``traceback.format_exc()`` text of the original failure.
    """

    def __init__(self, worker_traceback: str) -> None:
        super().__init__(worker_traceback)
        self.worker_traceback = worker_traceback


class ShardExecutionError(RuntimeError):
    """A planned shard failed to execute.

    Raised by :class:`ProcessShardExecutor` (and reused by the cluster
    runner) in place of the raw pool errors: the message names the shard
    and its work-unit keys, and :attr:`worker_traceback` carries the
    original worker-side traceback when one could be recovered (it
    cannot when the worker process was killed outright).
    """

    def __init__(self, message: str,
                 worker_traceback: Optional[str] = None) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback


def validate_parallel(parallel: str, engine: Optional[str] = None) -> None:
    """Raise ValueError on a bad parallel mode or mode/engine pairing.

    ``parallel="process"`` is only implemented for the fast
    engine/builder: the scalar ``reference`` paths deliberately stay
    single-process (their role is the easy-to-audit semantics oracle,
    and process orchestration would change what they oracle).  Serving
    constructors call this up front so a bad combination fails at
    construction rather than mid-batch.
    """
    if parallel not in PARALLEL_MODES:
        raise ValueError(f"unknown parallel mode {parallel!r}; "
                         f"expected one of {PARALLEL_MODES}")
    if engine is not None and parallel == "process" and engine != "fast":
        raise ValueError(
            f"parallel='process' requires the fast engine/builder; the "
            f"{engine!r} path stays single-process as the semantics "
            f"reference")


class ShardPlan:
    """Deterministic assignment of cost-weighted work units to shards.

    A plan maps hashable work-unit keys (leaf ids for both engines) to
    shards, balancing the supplied cost estimates.  Plans are value
    objects: equality is structural, and :meth:`to_json` /
    :meth:`from_json` round-trip exactly, so a plan computed on one
    machine can be shipped to the workers that will execute it (keys and
    costs must be JSON-representable for that, as leaf ids are).

    Args:
        shards: Per-shard tuples of work-unit keys.
        costs: Cost estimate per key; every planned key must be present.

    Raises:
        ValueError: If a key appears in more than one shard (or twice in
            one), or a planned key has no cost.
    """

    def __init__(self, shards: Sequence[Sequence[Hashable]],
                 costs: Dict[Hashable, int]) -> None:
        self._shards: Tuple[Tuple[Hashable, ...], ...] = \
            tuple(tuple(shard) for shard in shards)
        self._costs = dict(costs)
        seen = set()
        for shard in self._shards:
            for key in shard:
                if key in seen:
                    raise ValueError(f"key {key!r} planned twice")
                if key not in self._costs:
                    raise ValueError(f"planned key {key!r} has no cost")
                seen.add(key)
        unplanned = set(self._costs) - seen
        if unplanned:
            # Allowing costs for keys no shard carries would break the
            # exact to_json/from_json round-trip (serialization only
            # walks the shards).
            raise ValueError(f"costs for unplanned keys {unplanned!r}")

    @classmethod
    def balance(cls, costs: Sequence[Tuple[Hashable, int]],
                n_shards: int) -> "ShardPlan":
        """Partition keyed costs across at most ``n_shards`` shards.

        Longest-processing-time greedy: keys are taken in descending
        cost order (input position breaks ties) and each lands on the
        currently lightest shard (lowest index breaks ties), so the
        same input always yields the same plan.  ``n_shards`` is
        clamped to the number of keys — no empty shards are planned.

        Raises:
            ValueError: On duplicate keys.
        """
        items = list(costs)
        if len({key for key, _cost in items}) != len(items):
            raise ValueError("duplicate keys in cost list")
        if not items:
            return cls((), {})
        n_shards = max(1, min(int(n_shards), len(items)))
        order = sorted(range(len(items)),
                       key=lambda i: (-items[i][1], i))
        assignments: List[List[Hashable]] = [[] for _ in range(n_shards)]
        loads = [0] * n_shards
        for i in order:
            key, cost = items[i]
            shard = min(range(n_shards), key=loads.__getitem__)
            assignments[shard].append(key)
            loads[shard] += cost
        return cls(assignments, dict(items))

    @property
    def shards(self) -> Tuple[Tuple[Hashable, ...], ...]:
        """Per-shard work-unit keys."""
        return self._shards

    @property
    def n_shards(self) -> int:
        """Number of planned shards."""
        return len(self._shards)

    def cost_of(self, key: Hashable) -> int:
        """Cost estimate of one work unit."""
        return self._costs[key]

    @property
    def shard_costs(self) -> List[int]:
        """Summed cost estimate per shard (the balance the plan found)."""
        return [sum(self._costs[key] for key in shard)
                for shard in self._shards]

    @property
    def total_cost(self) -> int:
        """Summed cost estimate across all shards."""
        return sum(self.shard_costs)

    def to_json(self) -> str:
        """Serialize the plan (the unit a distributed runner ships)."""
        return json.dumps({
            "shards": [list(shard) for shard in self._shards],
            "costs": [[self._costs[key] for key in shard]
                      for shard in self._shards],
        })

    @classmethod
    def from_json(cls, payload: str) -> "ShardPlan":
        """Reconstruct a plan serialized with :meth:`to_json`.

        The wire format is validated strictly — a plan is the unit a
        distributed runner ships to remote hosts, and a malformed
        payload that slipped through would silently double-execute (or
        drop) work.  Beyond the constructor's duplicate/cost checks
        this rejects: a payload that is not a ``{"shards", "costs"}``
        object of parallel lists, a shard whose member count disagrees
        with its cost count, non-integer work-unit keys (leaf ids are
        integers on the wire; booleans and floats are rejected even
        though Python would hash them equal), keys below
        :data:`POOLED_GROUP` (the only planned pseudo-id), and
        non-integer or negative costs.

        Raises:
            ValueError: On any malformed payload, naming the offender.
        """
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"shard plan payload is not JSON: {exc}") \
                from None
        if not isinstance(data, dict) or not {"shards", "costs"} <= \
                set(data):
            raise ValueError(
                "shard plan payload must be an object with 'shards' and "
                "'costs' lists")
        shards, costs = data["shards"], data["costs"]
        if not isinstance(shards, list) or not isinstance(costs, list) \
                or len(shards) != len(costs):
            raise ValueError(
                f"shard plan 'shards' and 'costs' must be parallel "
                f"lists; got {len(shards) if isinstance(shards, list) else shards!r} "
                f"shards and {len(costs) if isinstance(costs, list) else costs!r} "
                f"cost lists")
        plan_costs: Dict[Hashable, int] = {}
        for index, (shard, shard_costs) in enumerate(zip(shards, costs)):
            if not isinstance(shard, list) or \
                    not isinstance(shard_costs, list) or \
                    len(shard) != len(shard_costs):
                raise ValueError(
                    f"shard {index} carries {shard!r} members but "
                    f"{shard_costs!r} costs — counts must match")
            for key, cost in zip(shard, shard_costs):
                if type(key) is not int:
                    raise ValueError(
                        f"shard {index} member {key!r} is not an integer "
                        f"work-unit id")
                if key < POOLED_GROUP:
                    raise ValueError(
                        f"shard {index} member {key} is out of range "
                        f"(ids are leaf ids >= 0, or {POOLED_GROUP} for "
                        f"the pooled group)")
                if type(cost) is not int or cost < 0:
                    raise ValueError(
                        f"shard {index} cost {cost!r} for key {key} is "
                        f"not a non-negative integer")
                if key in plan_costs:
                    raise ValueError(
                        f"work-unit key {key} appears in more than one "
                        f"shard (or twice in one) — the plan would "
                        f"double-execute it")
                plan_costs[key] = cost
        return cls(tuple(tuple(shard) for shard in shards), plan_costs)

    def replan(self, keys: Iterable[Hashable],
               n_shards: int) -> "ShardPlan":
        """Re-balance a subset of this plan's keys across ``n_shards``.

        The dead-host orphan re-planning primitive: when a worker dies
        mid-plan, the coordinator takes the keys it was executing and
        re-balances them — with their original cost estimates — across
        the surviving hosts (``n_shards`` clamps to the key count, and
        down to one shard when the fleet has emptied).  Deterministic
        for a given key order, like :meth:`balance`.

        Raises:
            ValueError: If a key was not part of this plan (its cost is
                unknown) or appears twice.
        """
        keys = list(keys)
        unknown = [key for key in keys if key not in self._costs]
        if unknown:
            raise ValueError(
                f"cannot replan keys {unknown!r}: not part of this plan")
        return ShardPlan.balance([(key, self._costs[key]) for key in keys],
                                 n_shards)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardPlan):
            return NotImplemented
        return self._shards == other._shards and self._costs == other._costs

    def __repr__(self) -> str:
        return (f"ShardPlan(n_shards={self.n_shards}, "
                f"shard_costs={self.shard_costs})")


# ---------------------------------------------------------------------------
# Worker-process entry points.  Module-level (picklable by reference) and
# parameterised through per-process globals set by the pool initializer,
# so the model/tokenizer is shipped once per worker, not once per task.

_INFERENCE_RUNNER: Optional[LeafBatchRunner] = None
_CONSTRUCT_TOKENIZER: Optional[Tokenizer] = None


def _init_inference_worker(model: "GraphExModel", k: int,
                           hard_limit: Optional[int],
                           dense_limit: int) -> None:
    """Build this worker's runner once; its shards reuse it."""
    global _INFERENCE_RUNNER
    _INFERENCE_RUNNER = LeafBatchRunner(model, k=k, hard_limit=hard_limit,
                                        dense_limit=dense_limit)


def _run_inference_shard(requests: Sequence[InferenceRequest]
                         ) -> List[List[Recommendation]]:
    """One inference shard: per-request results in shard order.

    Failures come back as :class:`ShardWorkerError` carrying the full
    worker-side traceback — a raw exception would lose it (or, when
    unpicklable, collapse into a bare ``BrokenProcessPool``).
    """
    try:
        return _INFERENCE_RUNNER.run_indexed(requests)
    except Exception:
        raise ShardWorkerError(traceback.format_exc()) from None


def _init_construct_worker(tokenizer: Tokenizer) -> None:
    global _CONSTRUCT_TOKENIZER
    _CONSTRUCT_TOKENIZER = tokenizer


def _build_construct_shard(leaves: Sequence["CuratedLeaf"],
                           artifact_dir: str):
    """One construction shard: graphs land on disk, not in a pickle.

    The built leaf graphs are written as a zero-copy format-3 *leaf
    bundle* (:func:`repro.core.serialization.save_leaf_graphs` — raw
    page-aligned arrays plus one string blob); only the shard's token
    pool state crosses the process boundary as a pickle.  The parent
    opens the bundle with ``mmap=True``, so the graphs are never
    serialized object-by-object — the pickle return path used to
    *dominate* process construction (0.52x vs the thread path at 2
    workers on small worlds).

    The per-shard :class:`TokenCache` keeps the memoized-tokenization
    win within the shard; its exported state is merged into the parent
    cache afterwards so the pooled-graph build still skips every text
    the shards already processed.
    """
    from .serialization import save_leaf_graphs

    try:
        cache = TokenCache(_CONSTRUCT_TOKENIZER)
        save_leaf_graphs([build_leaf_graph_fast(leaf, cache)
                          for leaf in leaves], artifact_dir)
        return cache.export_state()
    except Exception:
        # A half-written bundle must not outlive the failure: the parent
        # only removes the staging root it knows about, and a retrying
        # caller would otherwise mmap stale arrays from this attempt.
        shutil.rmtree(artifact_dir, ignore_errors=True)
        raise ShardWorkerError(traceback.format_exc()) from None


def plan_inference_groups(model: "GraphExModel",
                          requests: Sequence[InferenceRequest],
                          n_shards: int
                          ) -> Tuple[ShardPlan, Dict[int, List[int]]]:
    """Group servable requests by leaf graph and balance the groups.

    Mirrors ``LeafBatchRunner``'s grouping: a request is keyed by its
    leaf id when that leaf has a graph, by :data:`POOLED_GROUP` when it
    falls back to the pooled graph, and is excluded (its result is
    ``[]``) when neither exists.  The cost estimate is the group's
    request count — per-request work dominates, and keeping groups
    whole preserves the vectorized amortisation.

    Shared by :class:`ProcessShardExecutor` (process shards) and the
    cluster coordinator (remote shards), so a plan computed locally is
    exactly the plan a fleet executes.

    Returns:
        ``(plan, groups)`` — the balanced plan over group keys, and
        each group's request indices in batch order.
    """
    groups: Dict[int, List[int]] = {}
    for index, (_item_id, _title, leaf_id) in enumerate(requests):
        if model.leaf_graph(leaf_id) is not None:
            key = leaf_id
        elif model.pooled_graph is not None:
            key = POOLED_GROUP
        else:
            continue
        groups.setdefault(key, []).append(index)
    plan = ShardPlan.balance(
        [(key, len(indices)) for key, indices in groups.items()], n_shards)
    return plan, groups


def _unwrap_shard_future(future, kind: str, index: int,
                         keys: Sequence[Hashable]):
    """``future.result()`` with worker failures surfaced legibly.

    A worker-side exception arrives as :class:`ShardWorkerError` (full
    original traceback); a worker process that *died* (killed, crashed
    hard) arrives as ``BrokenProcessPool`` with nothing attached.  Both
    are re-raised as :class:`ShardExecutionError` naming the shard and
    its work-unit keys.
    """
    try:
        return future.result()
    except ShardWorkerError as exc:
        raise ShardExecutionError(
            f"{kind} shard {index} (keys {list(keys)!r}) raised in its "
            f"worker process; original worker traceback:\n"
            f"{exc.worker_traceback}",
            worker_traceback=exc.worker_traceback) from None
    except BrokenProcessPool as exc:
        raise ShardExecutionError(
            f"worker process died while executing {kind} shard {index} "
            f"(keys {list(keys)!r}); no worker traceback could be "
            f"recovered — the process was killed or crashed outside "
            f"Python") from exc


class ProcessShardExecutor:
    """Runs fast-engine shards in worker processes.

    Args:
        workers: Upper bound on worker processes (and shards planned).
            With one worker, or one shard after planning, work runs in
            the calling process — same output, no pool overhead.
        start_method: Optional multiprocessing start method ("fork",
            "spawn", "forkserver"); None uses the platform default.

    Output is element-wise/bit-identical to the single-process fast
    paths for any worker count (see the module docstring for why).
    """

    def __init__(self, workers: int = 2,
                 start_method: Optional[str] = None) -> None:
        self._workers = max(1, int(workers))
        self._start_method = start_method

    def _pool(self, n_shards: int, initializer, initargs
              ) -> ProcessPoolExecutor:
        context = (multiprocessing.get_context(self._start_method)
                   if self._start_method is not None else None)
        return ProcessPoolExecutor(max_workers=n_shards,
                                   mp_context=context,
                                   initializer=initializer,
                                   initargs=initargs)

    def plan_inference(self, model: "GraphExModel",
                       requests: Sequence[InferenceRequest]
                       ) -> Tuple[ShardPlan, Dict[int, List[int]]]:
        """Group servable requests by leaf graph and balance the groups.

        Mirrors ``LeafBatchRunner``'s grouping: a request is keyed by
        its leaf id when that leaf has a graph, by :data:`POOLED_GROUP`
        when it falls back to the pooled graph, and is excluded (its
        result is ``[]``) when neither exists.  The cost estimate is the
        group's request count — per-request work dominates, and keeping
        groups whole preserves the vectorized amortisation.

        Returns:
            ``(plan, groups)`` — the balanced plan over group keys, and
            each group's request indices in batch order.
        """
        return plan_inference_groups(model, requests, self._workers)

    def run_inference(self, model: "GraphExModel",
                      requests: Sequence[InferenceRequest],
                      k: int = 10, hard_limit: Optional[int] = None,
                      dense_limit: int = DEFAULT_DENSE_LIMIT
                      ) -> BatchResult:
        """Infer a batch with leaf-group shards in worker processes.

        Returns:
            Item id → ranked recommendations, with the scalar loop's
            duplicate-id semantics (the last request for an id wins)
            even when the duplicates land in different shards.
        """
        # Constructing the local runner validates hard_limit and the
        # alignment probe up front, and serves the no-pool fallback.
        runner = LeafBatchRunner(model, k=k, hard_limit=hard_limit,
                                 dense_limit=dense_limit)
        plan, groups = self.plan_inference(model, requests)
        shards = [[index for key in shard for index in groups[key]]
                  for shard in plan.shards]
        if self._workers == 1 or len(shards) <= 1:
            return runner.run(requests)

        results: List[List[Recommendation]] = [[] for _ in requests]
        with self._pool(len(shards), _init_inference_worker,
                        (model, k, hard_limit, dense_limit)) as pool:
            futures = [pool.submit(_run_inference_shard,
                                   [requests[index] for index in shard])
                       for shard in shards]
            for shard_index, (shard, future) in enumerate(zip(shards,
                                                              futures)):
                shard_results = _unwrap_shard_future(
                    future, "inference", shard_index,
                    plan.shards[shard_index])
                for index, recs in zip(shard, shard_results):
                    results[index] = recs
        out: BatchResult = {}
        for index, (item_id, _title, _leaf_id) in enumerate(requests):
            out[item_id] = results[index]
        return out

    def run_construction(self, curated: "CuratedKeyphrases",
                         tokenizer: Tokenizer
                         ) -> Tuple[Dict[int, "LeafGraph"], TokenCache]:
        """Build every non-empty leaf graph with whole-leaf process shards.

        The cost estimate is each leaf's summed keyphrase character
        count — proportional to token occurrences, hence to the edge
        pairs the build pass walks — without paying a tokenization pass
        in the parent.  Shard states merge into the returned cache in
        shard-index order (deterministic pool, reused by the
        pooled-graph build exactly as in the thread path).

        Return path: each worker persists its built graphs as a
        format-3 leaf bundle under a temporary directory and the
        parent opens every bundle *zero-copy*
        (:func:`~repro.core.serialization.load_leaf_graphs` with
        ``mmap=True``) instead of unpickling graph objects.  The
        returned graphs' arrays are read-only views over the bundle
        mappings; the temporary files are unlinked before returning
        (live mappings keep them readable — POSIX), so nothing leaks.
        The graphs are element-wise/string-identical to the thread
        path's, as the equivalence suites pin.

        Returns:
            ``(leaf_graphs, cache)`` with the same contract as
            :func:`~repro.core.fast_construct.fast_construct_leaf_graphs`.
        """
        from .serialization import load_leaf_graphs

        items = [(leaf_id, leaf) for leaf_id, leaf in curated.leaves.items()
                 if len(leaf) > 0]
        if self._workers == 1 or len(items) <= 1:
            # Delegate so the in-parent fallback can never drift from
            # the thread path's contracts (empty-leaf filter, insertion
            # order).
            return fast_construct_leaf_graphs(curated, tokenizer)

        cache = TokenCache(tokenizer)
        plan = ShardPlan.balance(
            [(leaf_id, sum(map(len, leaf.texts)) + 1)
             for leaf_id, leaf in items], self._workers)
        by_id = dict(items)
        shards = [[by_id[leaf_id] for leaf_id in shard]
                  for shard in plan.shards]
        built: Dict[int, "LeafGraph"] = {}
        staging = Path(tempfile.mkdtemp(prefix="graphex-shard-"))
        try:
            with self._pool(len(shards), _init_construct_worker,
                            (tokenizer,)) as pool:
                futures = [
                    pool.submit(_build_construct_shard, shard,
                                str(staging / f"shard-{index}"))
                    for index, shard in enumerate(shards)]
                for index, future in enumerate(futures):
                    cache.absorb_state(_unwrap_shard_future(
                        future, "construction", index,
                        plan.shards[index]))
                    for graph in load_leaf_graphs(
                            staging / f"shard-{index}", mmap=True):
                        built[graph.leaf_id] = graph
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return {leaf_id: built[leaf_id] for leaf_id, _leaf in items}, cache
