"""Shard planning for the unified execution plane (Sections IV-G/IV-H).

GraphEx's shard-shaped work — leaf groups for inference, whole leaves
for construction — runs on several substrates (threads, worker
processes, cluster hosts; see :mod:`repro.core.execution`).  This
module owns what they all share:

* :class:`ShardPlan` deterministically partitions cost-weighted work
  units (leaf groups keyed by leaf id) across shards with a
  longest-processing-time greedy pass.  A plan is JSON-serializable —
  exactly the unit the multi-machine runner ships to remote workers.
  :meth:`ShardPlan.for_inference` / :meth:`ShardPlan.for_construction`
  build the canonical plans for the two work kinds, optionally
  re-costed from an executor's observed
  :class:`~repro.core.execution.CostModel` instead of the
  request-count/char-count proxies.
* The shard failure vocabulary (:class:`ShardWorkerError`,
  :class:`ShardExecutionError`, :func:`_unwrap_shard_future`) shared by
  the process executor and the cluster runner.

The execution substrates themselves live in
:mod:`repro.core.execution`; the legacy names
(``ProcessShardExecutor``, the worker entry points) remain importable
from here via a lazy module ``__getattr__`` so existing callers and
pickled pool tasks keep working.  ``parallel={thread,process}`` remains
accepted everywhere through :func:`validate_parallel`, which now
delegates to :func:`~repro.core.execution.resolve_executor` — the one
place the spellings are interpreted.

Everything crossing a process boundary must pickle: the built-in
tokenizers and alignment functions do, while ad-hoc lambdas do not —
use module-level callables with out-of-process executors.
"""

from __future__ import annotations

import json
from concurrent.futures.process import BrokenProcessPool
from typing import (TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional,
                    Sequence, Tuple)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .batch import InferenceRequest
    from .curation import CuratedKeyphrases
    from .execution import CostModel
    from .model import GraphExModel

#: Legacy parallel-mode spellings accepted by the batch/construct entry
#: points (and the CLI ``--parallel`` flags).  ``thread`` shards within
#: the calling process; ``process`` runs fast-path shards in worker
#: processes.  Superset spellings (``serial``, ``cluster``) live in
#: :data:`repro.core.execution.EXECUTOR_NAMES`.
PARALLEL_MODES = ("thread", "process")

#: Shard-plan key for the leaf group served by the pooled fallback graph
#: (requests whose leaf has no graph of its own).  Mirrors the pooled
#: pseudo-leaf id convention of ``repro.core.model._pool_leaves``.
POOLED_GROUP = -1


class ShardWorkerError(Exception):
    """An exception raised *inside* a shard worker process.

    ``concurrent.futures`` pickles worker exceptions back to the parent
    but loses the worker-side traceback (the re-raise points at the
    parent's ``future.result()`` call), and an exception that cannot
    pickle at all surfaces as a bare ``BrokenProcessPool``.  The worker
    entry points therefore catch everything and raise this instead — a
    single-string exception that always pickles and carries the full
    ``traceback.format_exc()`` text of the original failure.
    """

    def __init__(self, worker_traceback: str) -> None:
        super().__init__(worker_traceback)
        self.worker_traceback = worker_traceback


class ShardExecutionError(RuntimeError):
    """A planned shard failed to execute.

    Raised by the process executor (and reused by the cluster runner)
    in place of the raw pool errors: the message names the shard and
    its work-unit keys, and :attr:`worker_traceback` carries the
    original worker-side traceback when one could be recovered (it
    cannot when the worker process was killed outright).
    """

    def __init__(self, message: str,
                 worker_traceback: Optional[str] = None) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback


def validate_parallel(parallel: str, engine: Optional[str] = None) -> None:
    """Raise ValueError on a bad parallel mode or mode/engine pairing.

    Delegates to :func:`~repro.core.execution.resolve_executor` — the
    single interpreter of executor spellings — so the legacy
    ``parallel=`` strings and the new ``executor=`` ones accept exactly
    the same values and raise the same errors.  Out-of-process
    executors pair only with the fast engine/builder: the scalar
    ``reference`` paths deliberately stay single-process (their role is
    the easy-to-audit semantics oracle, and process orchestration would
    change what they oracle).  Serving constructors call this up front
    so a bad combination fails at construction rather than mid-batch.
    """
    from .execution import resolve_executor

    resolve_executor(executor=parallel, engine=engine)


class ShardPlan:
    """Deterministic assignment of cost-weighted work units to shards.

    A plan maps hashable work-unit keys (leaf ids for both engines) to
    shards, balancing the supplied cost estimates.  Plans are value
    objects: equality is structural, and :meth:`to_json` /
    :meth:`from_json` round-trip exactly, so a plan computed on one
    machine can be shipped to the workers that will execute it (keys and
    costs must be JSON-representable for that, as leaf ids are).

    Args:
        shards: Per-shard tuples of work-unit keys.
        costs: Cost estimate per key; every planned key must be present.

    Raises:
        ValueError: If a key appears in more than one shard (or twice in
            one), or a planned key has no cost.
    """

    def __init__(self, shards: Sequence[Sequence[Hashable]],
                 costs: Dict[Hashable, int]) -> None:
        self._shards: Tuple[Tuple[Hashable, ...], ...] = \
            tuple(tuple(shard) for shard in shards)
        self._costs = dict(costs)
        seen = set()
        for shard in self._shards:
            for key in shard:
                if key in seen:
                    raise ValueError(f"key {key!r} planned twice")
                if key not in self._costs:
                    raise ValueError(f"planned key {key!r} has no cost")
                seen.add(key)
        unplanned = set(self._costs) - seen
        if unplanned:
            # Allowing costs for keys no shard carries would break the
            # exact to_json/from_json round-trip (serialization only
            # walks the shards).
            raise ValueError(f"costs for unplanned keys {unplanned!r}")

    @classmethod
    def balance(cls, costs: Sequence[Tuple[Hashable, int]],
                n_shards: int) -> "ShardPlan":
        """Partition keyed costs across at most ``n_shards`` shards.

        Longest-processing-time greedy: keys are taken in descending
        cost order (input position breaks ties) and each lands on the
        currently lightest shard (lowest index breaks ties), so the
        same input always yields the same plan.  ``n_shards`` is
        clamped to the number of keys — no empty shards are planned.

        Raises:
            ValueError: On duplicate keys.
        """
        items = list(costs)
        if len({key for key, _cost in items}) != len(items):
            raise ValueError("duplicate keys in cost list")
        if not items:
            return cls((), {})
        n_shards = max(1, min(int(n_shards), len(items)))
        order = sorted(range(len(items)),
                       key=lambda i: (-items[i][1], i))
        assignments: List[List[Hashable]] = [[] for _ in range(n_shards)]
        loads = [0] * n_shards
        for i in order:
            key, cost = items[i]
            shard = min(range(n_shards), key=loads.__getitem__)
            assignments[shard].append(key)
            loads[shard] += cost
        return cls(assignments, dict(items))

    @classmethod
    def for_inference(cls, model: "GraphExModel",
                      requests: Sequence["InferenceRequest"],
                      n_shards: int,
                      cost_model: Optional["CostModel"] = None
                      ) -> Tuple["ShardPlan", Dict[int, List[int]]]:
        """The canonical inference plan: leaf groups, balanced.

        Mirrors ``LeafBatchRunner``'s grouping: a request is keyed by
        its leaf id when that leaf has a graph, by :data:`POOLED_GROUP`
        when it falls back to the pooled graph, and is excluded (its
        result is ``[]``) when neither exists.  The proxy cost estimate
        is the group's request count — per-request work dominates, and
        keeping groups whole preserves the vectorized amortisation.
        With a ``cost_model`` carrying inference observations, groups
        are re-costed by observed per-request rates instead
        (:meth:`~repro.core.execution.CostModel.inference_costs`);
        either way every substrate executes the same groups, so the
        choice only moves balance, never output.

        Returns:
            ``(plan, groups)`` — the balanced plan over group keys, and
            each group's request indices in batch order.
        """
        groups: Dict[int, List[int]] = {}
        for index, (_item_id, _title, leaf_id) in enumerate(requests):
            if model.leaf_graph(leaf_id) is not None:
                key = leaf_id
            elif model.pooled_graph is not None:
                key = POOLED_GROUP
            else:
                continue
            groups.setdefault(key, []).append(index)
        proxy = [(key, len(indices)) for key, indices in groups.items()]
        costs = proxy if cost_model is None \
            else cost_model.inference_costs(proxy)
        return cls.balance(costs, n_shards), groups

    @classmethod
    def for_construction(cls, curated: "CuratedKeyphrases",
                         n_shards: int,
                         cost_model: Optional["CostModel"] = None
                         ) -> "ShardPlan":
        """The canonical construction plan: non-empty leaves, balanced.

        The proxy cost estimate is each leaf's summed keyphrase
        character count — proportional to token occurrences, hence to
        the edge pairs the build pass walks — without paying a
        tokenization pass up front.  With a ``cost_model`` carrying
        construction observations, leaves are re-costed by observed
        build rates instead
        (:meth:`~repro.core.execution.CostModel.construction_costs`).
        """
        proxy = [(leaf_id, sum(map(len, leaf.texts)) + 1)
                 for leaf_id, leaf in curated.leaves.items()
                 if len(leaf) > 0]
        costs = proxy if cost_model is None \
            else cost_model.construction_costs(proxy)
        return cls.balance(costs, n_shards)

    @property
    def shards(self) -> Tuple[Tuple[Hashable, ...], ...]:
        """Per-shard work-unit keys."""
        return self._shards

    @property
    def n_shards(self) -> int:
        """Number of planned shards."""
        return len(self._shards)

    def cost_of(self, key: Hashable) -> int:
        """Cost estimate of one work unit."""
        return self._costs[key]

    @property
    def shard_costs(self) -> List[int]:
        """Summed cost estimate per shard (the balance the plan found)."""
        return [sum(self._costs[key] for key in shard)
                for shard in self._shards]

    @property
    def total_cost(self) -> int:
        """Summed cost estimate across all shards."""
        return sum(self.shard_costs)

    def balance_stats(self) -> Dict[str, float]:
        """Planned-balance telemetry: ``n_shards``/``makespan``/``imbalance``.

        ``imbalance`` is the makespan over the mean shard cost (1.0 is
        perfectly level).  The executors gauge these into the metrics
        registry per plan, so how well observed-cost planning levels
        real batches is visible without re-deriving it from timings.
        """
        costs = self.shard_costs
        makespan = max(costs) if costs else 0
        mean = sum(costs) / len(costs) if costs else 0.0
        return {"n_shards": float(self.n_shards),
                "makespan": float(makespan),
                "imbalance": makespan / mean if mean else 1.0}

    def to_json(self) -> str:
        """Serialize the plan (the unit a distributed runner ships)."""
        return json.dumps({
            "shards": [list(shard) for shard in self._shards],
            "costs": [[self._costs[key] for key in shard]
                      for shard in self._shards],
        })

    @classmethod
    def from_json(cls, payload: str) -> "ShardPlan":
        """Reconstruct a plan serialized with :meth:`to_json`.

        The wire format is validated strictly — a plan is the unit a
        distributed runner ships to remote hosts, and a malformed
        payload that slipped through would silently double-execute (or
        drop) work.  Beyond the constructor's duplicate/cost checks
        this rejects: a payload that is not a ``{"shards", "costs"}``
        object of parallel lists, a shard whose member count disagrees
        with its cost count, non-integer work-unit keys (leaf ids are
        integers on the wire; booleans and floats are rejected even
        though Python would hash them equal), keys below
        :data:`POOLED_GROUP` (the only planned pseudo-id), and
        non-integer or negative costs.

        Raises:
            ValueError: On any malformed payload, naming the offender.
        """
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"shard plan payload is not JSON: {exc}") \
                from None
        if not isinstance(data, dict) or not {"shards", "costs"} <= \
                set(data):
            raise ValueError(
                "shard plan payload must be an object with 'shards' and "
                "'costs' lists")
        shards, costs = data["shards"], data["costs"]
        if not isinstance(shards, list) or not isinstance(costs, list) \
                or len(shards) != len(costs):
            raise ValueError(
                f"shard plan 'shards' and 'costs' must be parallel "
                f"lists; got {len(shards) if isinstance(shards, list) else shards!r} "
                f"shards and {len(costs) if isinstance(costs, list) else costs!r} "
                f"cost lists")
        plan_costs: Dict[Hashable, int] = {}
        for index, (shard, shard_costs) in enumerate(zip(shards, costs)):
            if not isinstance(shard, list) or \
                    not isinstance(shard_costs, list) or \
                    len(shard) != len(shard_costs):
                raise ValueError(
                    f"shard {index} carries {shard!r} members but "
                    f"{shard_costs!r} costs — counts must match")
            for key, cost in zip(shard, shard_costs):
                if type(key) is not int:
                    raise ValueError(
                        f"shard {index} member {key!r} is not an integer "
                        f"work-unit id")
                if key < POOLED_GROUP:
                    raise ValueError(
                        f"shard {index} member {key} is out of range "
                        f"(ids are leaf ids >= 0, or {POOLED_GROUP} for "
                        f"the pooled group)")
                if type(cost) is not int or cost < 0:
                    raise ValueError(
                        f"shard {index} cost {cost!r} for key {key} is "
                        f"not a non-negative integer")
                if key in plan_costs:
                    raise ValueError(
                        f"work-unit key {key} appears in more than one "
                        f"shard (or twice in one) — the plan would "
                        f"double-execute it")
                plan_costs[key] = cost
        return cls(tuple(tuple(shard) for shard in shards), plan_costs)

    def replan(self, keys: Iterable[Hashable], n_shards: int,
               costs: Optional[Dict[Hashable, int]] = None) -> "ShardPlan":
        """Re-balance a subset of this plan's keys across ``n_shards``.

        The dead-host orphan re-planning primitive: when a worker dies
        mid-plan, the coordinator takes the keys it was executing and
        re-balances them across the surviving hosts (``n_shards``
        clamps to the key count, and down to one shard when the fleet
        has emptied).  Each key keeps this plan's recorded cost — when
        the plan was balanced on observed rates, orphans redistribute
        on those same rates, not on stale proxies — unless ``costs``
        supplies a fresher per-key estimate (keys it omits fall back
        to the recorded cost).  Deterministic for a given key order,
        like :meth:`balance`.

        Raises:
            ValueError: If a key was not part of this plan (its cost is
                unknown) or appears twice.
        """
        keys = list(keys)
        unknown = [key for key in keys if key not in self._costs]
        if unknown:
            raise ValueError(
                f"cannot replan keys {unknown!r}: not part of this plan")
        override = dict(costs) if costs else {}
        return ShardPlan.balance(
            [(key, override.get(key, self._costs[key])) for key in keys],
            n_shards)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardPlan):
            return NotImplemented
        return self._shards == other._shards and self._costs == other._costs

    def __repr__(self) -> str:
        return (f"ShardPlan(n_shards={self.n_shards}, "
                f"shard_costs={self.shard_costs})")


def plan_inference_groups(model: "GraphExModel",
                          requests: Sequence["InferenceRequest"],
                          n_shards: int
                          ) -> Tuple[ShardPlan, Dict[int, List[int]]]:
    """Legacy spelling of :meth:`ShardPlan.for_inference` (proxy costs).

    Kept because the plan/groups contract is pinned across the process
    executor and the cluster coordinator; new code should call
    :meth:`ShardPlan.for_inference` (which also accepts a cost model).
    """
    return ShardPlan.for_inference(model, requests, n_shards)


def _unwrap_shard_future(future, kind: str, index: int,
                         keys: Sequence[Hashable]):
    """``future.result()`` with worker failures surfaced legibly.

    A worker-side exception arrives as :class:`ShardWorkerError` (full
    original traceback); a worker process that *died* (killed, crashed
    hard) arrives as ``BrokenProcessPool`` with nothing attached.  Both
    are re-raised as :class:`ShardExecutionError` naming the shard and
    its work-unit keys.
    """
    try:
        return future.result()
    except ShardWorkerError as exc:
        raise ShardExecutionError(
            f"{kind} shard {index} (keys {list(keys)!r}) raised in its "
            f"worker process; original worker traceback:\n"
            f"{exc.worker_traceback}",
            worker_traceback=exc.worker_traceback) from None
    except BrokenProcessPool as exc:
        raise ShardExecutionError(
            f"worker process died while executing {kind} shard {index} "
            f"(keys {list(keys)!r}); no worker traceback could be "
            f"recovered — the process was killed or crashed outside "
            f"Python") from exc


#: Names that physically moved to :mod:`repro.core.execution` but remain
#: importable from here (legacy imports, pickled pool tasks, and test
#: monkeypatching all address them through this module).
_MOVED_TO_EXECUTION = (
    "ProcessShardExecutor",
    "_INFERENCE_RUNNER",
    "_CONSTRUCT_TOKENIZER",
    "_init_inference_worker",
    "_run_inference_shard",
    "_init_construct_worker",
    "_build_construct_shard",
)


def __getattr__(name: str):
    # PEP 562 lazy re-export: sharding must not import execution at
    # module level (execution imports ShardPlan and the error types
    # from here), so the moved names resolve on first touch instead.
    if name in _MOVED_TO_EXECUTION:
        from . import execution

        return getattr(execution, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
