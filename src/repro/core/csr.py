"""Compressed Sparse Row storage for bipartite graphs.

The paper stores each leaf-category bipartite graph in CSR format: edges
"are constructed as tuples, sorted and then de-duplicated based on their
IDs" (Section III-F), occupying ``|X| + |E|`` space, with O(1) access to a
word's adjacency list and O(d) traversal.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np


class CSRGraph:
    """Adjacency of a bipartite graph from left vertices to right vertices.

    Attributes:
        indptr: ``int64`` array of length ``n_left + 1``; the neighbours of
            left vertex ``u`` are ``indices[indptr[u]:indptr[u + 1]]``.
        indices: ``int32`` array of right-vertex ids, sorted within each
            adjacency list and free of duplicates.

    Zero-copy friendly: ``np.asarray`` in the constructor passes an
    already-typed array through *without copying*, preserving its
    writeability flag — so a graph wrapped around read-only views of a
    memory-mapped model artifact (serialization format 3) stays backed
    by the file, and in-place writes to its arrays raise.  See
    :attr:`is_readonly`.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 n_right: int, *, validate: bool = True) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int32)
        self._n_right = int(n_right)
        if validate:
            self.validate()

    @property
    def is_readonly(self) -> bool:
        """Whether the CSR arrays reject in-place writes — true for
        graphs opened zero-copy from an mmap-backed model artifact,
        false for freshly built ones."""
        return not (self.indptr.flags.writeable
                    or self.indices.flags.writeable)

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]], n_left: int,
                   n_right: int) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        Edges are sorted and de-duplicated, exactly as the paper describes.

        Args:
            edges: Iterable of ``(left_id, right_id)`` pairs.
            n_left: Number of left vertices (words).
            n_right: Number of right vertices (keyphrases).

        Raises:
            ValueError: If an edge references a vertex out of range.
        """
        edge_list = list(edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            if arr.min() < 0:
                raise ValueError("negative vertex id in edge list")
            if arr[:, 0].max() >= n_left:
                raise ValueError("left vertex id out of range")
            if arr[:, 1].max() >= n_right:
                raise ValueError("right vertex id out of range")
            # Sort by (left, right) then de-duplicate.
            order = np.lexsort((arr[:, 1], arr[:, 0]))
            arr = arr[order]
            keep = np.ones(len(arr), dtype=bool)
            keep[1:] = (arr[1:] != arr[:-1]).any(axis=1)
            arr = arr[keep]
            lefts = arr[:, 0]
            indices = arr[:, 1].astype(np.int32)
        else:
            lefts = np.empty(0, dtype=np.int64)
            indices = np.empty(0, dtype=np.int32)
        return cls.from_sorted_pairs(lefts, indices, n_left, n_right)

    @classmethod
    def from_sorted_pairs(cls, lefts: np.ndarray, indices: np.ndarray,
                          n_left: int, n_right: int) -> "CSRGraph":
        """CSR from edge arrays already sorted by (left, right) and free
        of duplicates — the shared assembly tail of :meth:`from_edges`
        and the bulk construction engine.

        The caller asserts the precondition; the counts → cumsum indptr
        derivation establishes the remaining invariants, so the
        redundant ``validate()`` pass is skipped.
        """
        counts = np.bincount(lefts, minlength=n_left)
        indptr = np.zeros(n_left + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, np.asarray(indices, dtype=np.int32), n_right,
                   validate=False)

    @classmethod
    def from_arrays(cls, indptr: np.ndarray, indices: np.ndarray,
                    n_right: int, *, validate: bool = True) -> "CSRGraph":
        """Array-native fast path: wrap prebuilt CSR arrays directly.

        Unlike :meth:`from_edges` nothing is sorted or de-duplicated —
        the caller asserts ``indices`` is sorted within each adjacency
        list and duplicate-free.  Trusted builders (the bulk
        construction engine) pass ``validate=False`` to skip the
        invariant check; deserialization keeps the default and validates
        data read from disk.
        """
        return cls(indptr, indices, n_right, validate=validate)

    def validate(self) -> None:
        """Check structural invariants; raises ValueError on violation."""
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if len(self.indptr) == 0:
            raise ValueError("indptr must have at least one entry")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr endpoints inconsistent with indices")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (self.indices.min() < 0
                                  or self.indices.max() >= self._n_right):
            raise ValueError("right vertex id out of range")

    @property
    def n_left(self) -> int:
        """Number of left (word) vertices."""
        return len(self.indptr) - 1

    @property
    def n_right(self) -> int:
        """Number of right (keyphrase) vertices."""
        return self._n_right

    @property
    def n_edges(self) -> int:
        """Number of stored edges."""
        return len(self.indices)

    @property
    def average_degree(self) -> float:
        """Average left-vertex degree ``d_avg = |E| / |X|`` (paper III-E1)."""
        return self.n_edges / self.n_left if self.n_left else 0.0

    def neighbors(self, left_id: int) -> np.ndarray:
        """Right-vertex neighbours of ``left_id`` (a read-only view).

        Raises:
            IndexError: If ``left_id`` is out of range.
        """
        if not 0 <= left_id < self.n_left:
            raise IndexError(f"left vertex {left_id} out of range")
        return self.indices[self.indptr[left_id]:self.indptr[left_id + 1]]

    def degree(self, left_id: int) -> int:
        """Degree of a left vertex."""
        return int(self.indptr[left_id + 1] - self.indptr[left_id])

    def memory_bytes(self) -> int:
        """Bytes occupied by the CSR arrays (for Figure 6b model sizing)."""
        return self.indptr.nbytes + self.indices.nbytes

    def __repr__(self) -> str:
        return (f"CSRGraph(n_left={self.n_left}, n_right={self.n_right}, "
                f"n_edges={self.n_edges})")
