"""Vectorized model-construction engine (the "fast" builder).

The scalar path (:func:`repro.core.model.build_leaf_graph`) constructs
one leaf at a time with per-token Python work: a ``Vocabulary.add`` dict
round-trip and an ``edges.append`` per (word, label) pair, then a
list-of-tuples → ``np.asarray`` conversion inside
:meth:`CSRGraph.from_edges`.  That is fine for one small leaf but
dominates model build time at Section IV-G scale.  This module is the
construct-side analogue of :mod:`repro.core.fast_inference`:

1. **Shared memoized tokenization** — every distinct keyphrase text is
   tokenized once into a tuple of shared-pool token ids
   (:class:`~repro.core.tokenize.TokenCache`); marketplace vocabulary
   overlaps heavily across leaves (and the pooled graph repeats every
   text), so repeated texts and repeated raw tokens skip the
   normalization regex and dict interning entirely.
2. **Bulk interning** — a leaf's labels are flattened into one pool-id
   stream and interned with a single array pass (an O(n + pool)
   reversed scatter, or an ``np.unique`` re-rank when the shared pool
   dwarfs the leaf).  Ids land in first-occurrence order, so the local
   vocabulary is *bit-identical* to the scalar ``Vocabulary.add`` loop
   — same token strings, same ids — regardless of pool id assignment
   order (which lets worker threads share one pool without affecting
   output).
3. **Array-native CSR assembly** — the (word, label) pairs are already
   duplicate-free (tokens are unique within a label), so one stable
   argsort by word id produces the exact (left, right)-sorted edge
   order of :meth:`CSRGraph.from_edges`, and ``indptr``/``indices`` are
   assembled directly via :meth:`CSRGraph.from_arrays` — no per-edge
   Python tuples, no redundant validation.
4. **Parallel leaf builds** — ``workers > 1`` shards whole leaves
   across a thread pool (largest first), the construct-side analogue of
   ``LeafBatchRunner``'s leaf-group sharding.

The built model is bit-identical to the scalar builder's — same vocab
id order, same CSR arrays, same label arrays — which
``tests/test_fast_construct.py`` pins property-based.  The scalar
builder remains the semantics reference.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from itertools import chain
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

from .csr import CSRGraph
from .curation import CuratedKeyphrases, CuratedLeaf
from .tokenize import TokenCache, Tokenizer
from .vocab import Vocabulary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .model import LeafGraph


def build_leaf_graph_fast(curated: CuratedLeaf,
                          cache: TokenCache) -> "LeafGraph":
    """Construct one leaf's bipartite graph with the bulk engine.

    Args:
        curated: The leaf's curated keyphrases.
        cache: Shared token pool; pass the same instance across leaves
            so duplicated texts and tokens are processed once.

    Returns:
        A :class:`~repro.core.model.LeafGraph` bit-identical to
        :func:`~repro.core.model.build_leaf_graph` on the same input.
    """
    from .model import LeafGraph

    n_labels = len(curated)
    if cache.token_wise:
        # Bulk path: one split per text, then one flat dict-resolve pass
        # over every raw occurrence of the whole leaf (-1 marks dropped
        # tokens).  Duplicates within a label survive to this point and
        # are folded by the np.unique dedup below.
        raw_lists = [text.split() for text in curated.texts]
        lengths = np.fromiter(map(len, raw_lists), dtype=np.int64,
                              count=n_labels)
        total = int(lengths.sum()) if n_labels else 0
        flat = np.fromiter(
            cache.resolve_raws(list(chain.from_iterable(raw_lists))),
            dtype=np.int64, count=total)
        label_owner = np.repeat(np.arange(n_labels, dtype=np.int64),
                                lengths)
        kept = flat >= 0
        if not kept.all():
            flat = flat[kept]
            label_owner = label_owner[kept]
    else:
        # Generic-tokenizer fallback: per-text memoized unique ids
        # (already deduplicated within each label).
        id_tuples = [cache.unique_ids(text) for text in curated.texts]
        lengths = np.fromiter(map(len, id_tuples), dtype=np.int64,
                              count=n_labels)
        total = int(lengths.sum()) if n_labels else 0
        flat = np.fromiter(chain.from_iterable(id_tuples), dtype=np.int64,
                           count=total)
        label_owner = np.repeat(np.arange(n_labels, dtype=np.int64),
                                lengths)

    if len(flat):
        # Intern locally into first-occurrence order — exactly the
        # scalar Vocabulary.add insertion order over the label-major
        # stream (within-label duplicates cannot move a first
        # occurrence).  When the shared pool is comparable to the leaf,
        # an O(n + pool) reversed scatter (last write wins = first
        # occurrence) avoids sorting; for a small leaf over a huge pool
        # the np.unique path keeps the cost O(n log n), independent of
        # pool size.
        pool_size = len(cache)
        if pool_size <= max(1024, 8 * len(flat)):
            first_pos = np.full(pool_size, -1, dtype=np.int64)
            first_pos[flat[::-1]] = np.arange(len(flat) - 1, -1, -1,
                                              dtype=np.int64)
            present = np.flatnonzero(first_pos >= 0)
            insertion = present[np.argsort(first_pos[present],
                                           kind="stable")]
            local_of_pool = np.empty(pool_size, dtype=np.int64)
            local_of_pool[insertion] = np.arange(len(insertion),
                                                 dtype=np.int64)
            word_ids = local_of_pool[flat]
        else:
            pool_ids, first_pos, inverse = np.unique(
                flat, return_index=True, return_inverse=True)
            order = np.argsort(first_pos, kind="stable")
            insertion = pool_ids[order]
            rank = np.empty(len(pool_ids), dtype=np.int64)
            rank[order] = np.arange(len(pool_ids), dtype=np.int64)
            word_ids = rank[inverse]
        vocab = Vocabulary.from_interned(
            cache.tokens_for(insertion.tolist()))
        # One sort + run-mask over (word, label) keys sorts and
        # de-duplicates the edges exactly as from_edges' lexsort +
        # dedup does (sort beats hash-based np.unique here).
        edge_keys = np.sort(word_ids * n_labels + label_owner)
        keep = np.empty(len(edge_keys), dtype=bool)
        keep[0] = True
        np.not_equal(edge_keys[1:], edge_keys[:-1], out=keep[1:])
        edge_keys = edge_keys[keep]
        edge_words = edge_keys // n_labels
        edge_labels = edge_keys - edge_words * n_labels
    else:
        vocab = Vocabulary()
        edge_words = np.empty(0, dtype=np.int64)
        edge_labels = np.empty(0, dtype=np.int64)

    graph = CSRGraph.from_sorted_pairs(
        edge_words, edge_labels.astype(np.int32),
        n_left=max(1, len(vocab)), n_right=max(1, n_labels))
    # |l| = unique surviving tokens per label (at least 1), from the
    # de-duplicated edge set.
    label_lengths = np.maximum(
        np.bincount(edge_labels, minlength=n_labels), 1).astype(np.int32)
    return LeafGraph(
        leaf_id=curated.leaf_id,
        word_vocab=vocab,
        graph=graph,
        label_texts=list(curated.texts),
        label_lengths=label_lengths,
        search_counts=np.asarray(curated.search_counts, dtype=np.int64),
        recall_counts=np.asarray(curated.recall_counts, dtype=np.int64),
    )


def fast_construct_leaf_graphs(curated: CuratedKeyphrases,
                               tokenizer: Tokenizer,
                               workers: int = 1
                               ) -> Tuple[Dict[int, "LeafGraph"],
                                          TokenCache]:
    """Build every non-empty leaf graph with the bulk engine.

    Args:
        curated: Output of :func:`repro.core.curation.curate`.
        tokenizer: Tokenizer shared by construction and inference.
        workers: Worker threads; whole leaves are sharded largest-first
            so the vectorized per-leaf passes never split.

    Returns:
        ``(leaf_graphs, cache)`` — the graphs keyed by leaf id in the
        curated insertion order, and the shared token pool (reused for
        the pooled-graph build).
    """
    cache = TokenCache(tokenizer)
    items = [(leaf_id, leaf) for leaf_id, leaf in curated.leaves.items()
             if len(leaf) > 0]
    if workers <= 1 or len(items) <= 1:
        return ({leaf_id: build_leaf_graph_fast(leaf, cache)
                 for leaf_id, leaf in items}, cache)

    built: Dict[int, "LeafGraph"] = {}

    def build(entry: Tuple[int, CuratedLeaf]) -> None:
        built[entry[0]] = build_leaf_graph_fast(entry[1], cache)

    with ThreadPoolExecutor(max_workers=workers) as pool:
        list(pool.map(build, sorted(items, key=lambda kv: -len(kv[1]))))
    return {leaf_id: built[leaf_id] for leaf_id, _ in items}, cache
