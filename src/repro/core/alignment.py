"""Alignment functions scoring keyphrase candidates against a title.

The Ranking step (Section III-E2) orders candidates by **Label Title
Alignment**::

    LTA(T, l, c) = c / (|l| - c + 1)

where ``c = |T ∩ l|`` is the number of tokens shared between title and
label.  The Table VI ablation compares LTA with Graphite's Word Match
Ratio and the Jaccard coefficient::

    WMR = c / |l|          JAC = c / (|l| + |T| - c)

All three share a uniform vectorized signature ``(c, label_len,
title_len)`` so :class:`~repro.core.inference.GraphExInference` can swap
them freely.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int]

#: Uniform signature: (common_count, label_len, title_len) -> score.
AlignmentFunction = Callable[[ArrayLike, ArrayLike, ArrayLike], np.ndarray]


def lta(common: ArrayLike, label_len: ArrayLike,
        title_len: ArrayLike = 0) -> np.ndarray:
    """Label Title Alignment: ``c / (|l| - c + 1)``.

    Prefers labels whose tokens are mostly covered by the title, penalising
    labels with "risky" extra tokens (the paper's A-B-C-D-E example:
    LTA ranks "a b c" above "a b c d e" for a title containing a, b, c).
    ``title_len`` is accepted for signature uniformity and ignored.
    """
    c = np.asarray(common, dtype=np.float64)
    l_len = np.asarray(label_len, dtype=np.float64)
    return c / (l_len - c + 1.0)


def wmr(common: ArrayLike, label_len: ArrayLike,
        title_len: ArrayLike = 0) -> np.ndarray:
    """Word Match Ratio (Graphite's ranker): ``c / |l|``."""
    c = np.asarray(common, dtype=np.float64)
    l_len = np.asarray(label_len, dtype=np.float64)
    return c / l_len


def jac(common: ArrayLike, label_len: ArrayLike,
        title_len: ArrayLike) -> np.ndarray:
    """Jaccard coefficient: ``c / (|l| + |T| - c)``.

    For a fixed title, JAC is monotone in ``c`` regardless of ``|l|``,
    which is exactly why it ranks "a b c d e" above "a b c" in the paper's
    example while LTA does the opposite.
    """
    c = np.asarray(common, dtype=np.float64)
    l_len = np.asarray(label_len, dtype=np.float64)
    t_len = np.asarray(title_len, dtype=np.float64)
    return c / (l_len + t_len - c)


#: Registry used by GraphExModel(..., alignment="lta" | "wmr" | "jac").
ALIGNMENTS: Dict[str, AlignmentFunction] = {
    "lta": lta,
    "wmr": wmr,
    "jac": jac,
}


def get_alignment(name_or_fn: Union[str, AlignmentFunction]) -> AlignmentFunction:
    """Resolve an alignment by registry name or pass a callable through.

    Raises:
        KeyError: If a string name is not in :data:`ALIGNMENTS`.
    """
    if callable(name_or_fn):
        return name_or_fn
    return ALIGNMENTS[name_or_fn]
