"""GraphEx core: curation, construction, inference, persistence."""

from .alignment import ALIGNMENTS, get_alignment, jac, lta, wmr
from .batch import ENGINES, batch_recommend, differential_update
from .csr import CSRGraph
from .fast_construct import build_leaf_graph_fast, fast_construct_leaf_graphs
from .fast_inference import LeafBatchRunner, fast_batch_recommend
from .curation import (
    CURATION_ENGINES,
    CuratedKeyphrases,
    CuratedLeaf,
    CurationConfig,
    curate,
    fast_curate,
    head_threshold,
)
from .inference import (
    Recommendation,
    enumerate_candidates,
    prune_by_count_groups,
    rank_candidates,
    recommend_from_graph,
)
from .model import BUILDERS, GraphExModel, LeafGraph, build_leaf_graph
from .serialization import load_model, model_size_bytes, save_model
from .sharding import (
    PARALLEL_MODES,
    ShardExecutionError,
    ShardPlan,
    ShardWorkerError,
    plan_inference_groups,
    validate_parallel,
)
from .execution import (
    EXECUTOR_NAMES,
    ClusterExecutor,
    CostModel,
    Executor,
    ProcessShardExecutor,
    SerialExecutor,
    ThreadShardExecutor,
    plan_rebalance_gain,
    resolve_executor,
)
from .tokenize import (
    DEFAULT_TOKENIZER,
    STEMMING_TOKENIZER,
    SpaceTokenizer,
    TokenCache,
    light_stem,
    normalize_token,
)
from .vocab import Vocabulary

__all__ = [
    "ALIGNMENTS",
    "get_alignment",
    "lta",
    "wmr",
    "jac",
    "ENGINES",
    "batch_recommend",
    "differential_update",
    "CSRGraph",
    "LeafBatchRunner",
    "fast_batch_recommend",
    "BUILDERS",
    "build_leaf_graph_fast",
    "fast_construct_leaf_graphs",
    "CURATION_ENGINES",
    "CurationConfig",
    "CuratedKeyphrases",
    "CuratedLeaf",
    "curate",
    "fast_curate",
    "head_threshold",
    "Recommendation",
    "enumerate_candidates",
    "prune_by_count_groups",
    "rank_candidates",
    "recommend_from_graph",
    "GraphExModel",
    "LeafGraph",
    "build_leaf_graph",
    "PARALLEL_MODES",
    "ShardExecutionError",
    "ShardPlan",
    "ShardWorkerError",
    "plan_inference_groups",
    "validate_parallel",
    "EXECUTOR_NAMES",
    "ClusterExecutor",
    "CostModel",
    "Executor",
    "ProcessShardExecutor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "plan_rebalance_gain",
    "resolve_executor",
    "save_model",
    "load_model",
    "model_size_bytes",
    "SpaceTokenizer",
    "TokenCache",
    "DEFAULT_TOKENIZER",
    "STEMMING_TOKENIZER",
    "light_stem",
    "normalize_token",
    "Vocabulary",
]
