"""Batch and differential inference (paper Sections III-F, IV-H).

Production GraphEx runs batch inference over all items plus a *daily
differential* — only items created or revised since the last run are
re-inferred and merged with the existing predictions.  Inference is
embarrassingly parallel ("coarse-grained multithreading, assigning each
input's inference to an individual thread"); here each worker handles a
contiguous shard of items.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .inference import Recommendation
from .model import GraphExModel

#: One inference request: (item_id, title, leaf_id).
InferenceRequest = Tuple[int, str, int]

#: Batch output: item id → ranked recommendations.
BatchResult = Dict[int, List[Recommendation]]


def batch_recommend(model: GraphExModel,
                    requests: Sequence[InferenceRequest],
                    k: int = 10,
                    hard_limit: Optional[int] = None,
                    workers: int = 1) -> BatchResult:
    """Run inference over a batch of items.

    Args:
        model: A constructed :class:`GraphExModel`.
        requests: ``(item_id, title, leaf_id)`` triples.
        k: Target predictions per item.
        hard_limit: Optional strict cap per item.
        workers: Worker threads; each handles a contiguous shard.

    Returns:
        Mapping from item id to its ranked recommendations.
    """
    if workers <= 1 or len(requests) < 2 * workers:
        return {
            item_id: model.recommend(title, leaf_id, k=k,
                                     hard_limit=hard_limit)
            for item_id, title, leaf_id in requests
        }

    def run_shard(shard: Sequence[InferenceRequest]) -> BatchResult:
        return {
            item_id: model.recommend(title, leaf_id, k=k,
                                     hard_limit=hard_limit)
            for item_id, title, leaf_id in shard
        }

    shard_size = (len(requests) + workers - 1) // workers
    shards = [requests[i:i + shard_size]
              for i in range(0, len(requests), shard_size)]
    out: BatchResult = {}
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for result in pool.map(run_shard, shards):
            out.update(result)
    return out


def differential_update(model: GraphExModel,
                        previous: BatchResult,
                        changed: Sequence[InferenceRequest],
                        deleted_item_ids: Iterable[int] = (),
                        k: int = 10,
                        hard_limit: Optional[int] = None,
                        workers: int = 1) -> BatchResult:
    """Daily differential: re-infer changed items, merge with old results.

    Args:
        model: Current (possibly refreshed) model.
        previous: Yesterday's batch output.
        changed: Items created or revised since then.
        deleted_item_ids: Items to drop from the output.
        k: Target predictions per item.
        hard_limit: Optional strict cap per item.
        workers: Worker threads for the re-inference.

    Returns:
        The merged batch output (new dict; ``previous`` is not mutated).
    """
    merged: BatchResult = dict(previous)
    for item_id in deleted_item_ids:
        merged.pop(item_id, None)
    fresh = batch_recommend(model, changed, k=k, hard_limit=hard_limit,
                            workers=workers)
    merged.update(fresh)
    return merged
