"""Batch and differential inference (paper Sections III-F, IV-H).

Production GraphEx runs batch inference over all items plus a *daily
differential* — only items created or revised since the last run are
re-inferred and merged with the existing predictions.

Two engines serve a batch:

* ``"fast"`` (default) — the vectorized leaf-batched engine
  (:class:`repro.core.fast_inference.LeafBatchRunner`): requests are
  grouped by leaf graph and the whole group runs through one fused
  CSR gather + shifted bincount + segmented lexsort.  With
  ``workers > 1`` whole *leaf groups* are sharded across threads.
* ``"reference"`` — the scalar loop over
  :meth:`~repro.core.model.GraphExModel.recommend`; the semantics
  reference the equivalence suite checks against.  With ``workers > 1``
  it shards contiguous request slices ("coarse-grained multithreading,
  assigning each input's inference to an individual thread").

Both produce element-wise identical output (text, score, tie-break
order); ``tests/test_fast_inference.py`` pins that property.

Orthogonally, ``executor=`` picks where the fast engine's leaf-group
shards run — any :class:`repro.core.execution.Executor` instance or
spelling (``"serial"``, ``"thread"``, ``"process"``, ``"cluster"``),
with the legacy ``parallel={"thread","process"}`` strings still
accepted and resolved through the same
:func:`repro.core.execution.resolve_executor`.  The reference engine
stays single-process by design — it is the semantics oracle.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .inference import Recommendation
from .model import GraphExModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .execution import Executor

#: Anything resolvable to an executor: an instance, a spelling, or None
#: (fall back to the legacy ``parallel`` string, then ``"thread"``).
ExecutorSpec = Union["Executor", str, None]

#: One inference request: (item_id, title, leaf_id).
InferenceRequest = Tuple[int, str, int]

#: Batch output: item id → ranked recommendations.
BatchResult = Dict[int, List[Recommendation]]

#: Engine names accepted by the batch entry points (and the CLI flag).
ENGINES = ("reference", "fast")


def validate_engine(engine: str) -> None:
    """Raise ValueError on an engine name outside :data:`ENGINES`.

    Serving-layer constructors call this up front so a bad name fails at
    construction rather than mid-batch.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")


def validate_hard_limit(hard_limit: Optional[int]) -> None:
    """Raise ValueError on a negative per-item cap.

    Python slice semantics would make the engines silently disagree on
    negative values, so both reject them.
    """
    if hard_limit is not None and hard_limit < 0:
        raise ValueError(f"hard_limit must be >= 0, got {hard_limit}")


def validate_model_for_engine(model: GraphExModel, engine: str,
                              parallel: str = "thread",
                              executor: ExecutorSpec = None) -> None:
    """Raise ValueError if ``model`` cannot serve through ``engine``.

    Beyond the name check, the fast engine probes the model's alignment
    function for element-wise vectorization at runner construction;
    running that probe here lets serving-layer constructors fail early
    instead of mid-batch.  The ``executor`` (or the legacy ``parallel``
    spelling) is validated alongside — out-of-process executors pair
    only with the fast engine.
    """
    validate_engine(engine)
    # Imported lazily: the execution plane imports the fast engine,
    # which imports this module's validators — a top-level import
    # would be a cycle.
    from .execution import resolve_executor
    if executor is not None:
        resolve_executor(executor, engine=engine)
    else:
        resolve_executor(parallel=parallel, engine=engine)
    if engine == "fast":
        from .fast_inference import LeafBatchRunner
        LeafBatchRunner(model)


def _reference_batch(model: GraphExModel,
                     requests: Sequence[InferenceRequest],
                     k: int, hard_limit: Optional[int],
                     workers: int) -> BatchResult:
    """The scalar per-item loop, optionally sharded across threads."""
    if workers <= 1 or len(requests) < 2 * workers:
        return {
            item_id: model.recommend(title, leaf_id, k=k,
                                     hard_limit=hard_limit)
            for item_id, title, leaf_id in requests
        }

    def run_shard(shard: Sequence[InferenceRequest]) -> BatchResult:
        return {
            item_id: model.recommend(title, leaf_id, k=k,
                                     hard_limit=hard_limit)
            for item_id, title, leaf_id in shard
        }

    shard_size = (len(requests) + workers - 1) // workers
    shards = [requests[i:i + shard_size]
              for i in range(0, len(requests), shard_size)]
    out: BatchResult = {}
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for result in pool.map(run_shard, shards):
            out.update(result)
    return out


def batch_recommend(model: GraphExModel,
                    requests: Sequence[InferenceRequest],
                    k: int = 10,
                    hard_limit: Optional[int] = None,
                    workers: int = 1,
                    engine: str = "fast",
                    parallel: Optional[str] = None,
                    executor: ExecutorSpec = None) -> BatchResult:
    """Run inference over a batch of items.

    Args:
        model: A constructed :class:`GraphExModel`.
        requests: ``(item_id, title, leaf_id)`` triples.
        k: Target predictions per item.
        hard_limit: Optional strict cap per item.
        workers: Worker count; the fast engine shards *leaf groups*,
            the reference engine contiguous request slices.  Ignored
            when ``executor`` is an instance (it has its own).
        engine: ``"fast"`` (vectorized leaf-batched) or ``"reference"``
            (scalar loop).
        parallel: Legacy spelling of ``executor`` (``"thread"`` /
            ``"process"``); pass one or the other, not both.
        executor: Where the fast engine's leaf-group shards run — an
            :class:`repro.core.execution.Executor` instance or one of
            its spellings (``"serial"``, ``"thread"`` (default),
            ``"process"``, ``"cluster"``).  Output is element-wise
            identical for every substrate.

    Returns:
        Mapping from item id to its ranked recommendations.

    Raises:
        ValueError: On an unknown engine or executor spelling, a
            negative ``hard_limit`` (Python slice semantics would
            silently differ between engines), or an out-of-process
            executor paired with the reference engine (the scalar path
            stays single-process as the semantics oracle).
    """
    validate_engine(engine)
    validate_hard_limit(hard_limit)
    # Imported lazily: the execution plane imports the fast engine,
    # which imports this module's validators, so a top-level import
    # would be a cycle.
    from .execution import resolve_executor
    exec_ = resolve_executor(executor, parallel=parallel, workers=workers,
                             engine=engine)
    if engine == "fast":
        return exec_.run_inference(model, requests, k=k,
                                   hard_limit=hard_limit)
    return _reference_batch(model, requests, k, hard_limit, workers)


def differential_update(model: GraphExModel,
                        previous: BatchResult,
                        changed: Sequence[InferenceRequest],
                        deleted_item_ids: Iterable[int] = (),
                        k: int = 10,
                        hard_limit: Optional[int] = None,
                        workers: int = 1,
                        engine: str = "fast",
                        parallel: Optional[str] = None,
                        executor: ExecutorSpec = None) -> BatchResult:
    """Daily differential: re-infer changed items, merge with old results.

    An item appearing in **both** ``deleted_item_ids`` and ``changed``
    ends up *served*: deletions apply to yesterday's table first, then
    the fresh inferences merge on top, so a same-day delete+revise
    resolves to the revision.  This mirrors the NRT window's
    last-event-per-item-wins rule (a revision event is by definition
    newer evidence that the item exists) and is pinned by the serving
    test suite.

    Args:
        model: Current (possibly refreshed) model.
        previous: Yesterday's batch output.
        changed: Items created or revised since then.
        deleted_item_ids: Items to drop from the output.
        k: Target predictions per item.
        hard_limit: Optional strict cap per item.
        workers: Worker count for the re-inference.
        engine: Inference engine, as in :func:`batch_recommend`.
        parallel: Legacy shard mode, as in :func:`batch_recommend`.
        executor: Shard execution substrate, as in
            :func:`batch_recommend`.

    Returns:
        The merged batch output (new dict; ``previous`` is not mutated).
    """
    merged: BatchResult = dict(previous)
    for item_id in deleted_item_ids:
        merged.pop(item_id, None)
    fresh = batch_recommend(model, changed, k=k, hard_limit=hard_limit,
                            workers=workers, engine=engine,
                            parallel=parallel, executor=executor)
    merged.update(fresh)
    return merged
