"""String↔integer interning for words and keyphrases.

The paper stores words and labels as unsigned integers "to occupy minimal
space and convert string comparisons to integer ones" (Section III-F).
:class:`Vocabulary` is that mapping: append-only, dense ids from 0.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Vocabulary:
    """Append-only bidirectional mapping between strings and dense ids."""

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._ids: Dict[str, int] = {}
        self._tokens: List[str] = []
        for token in tokens:
            self.add(token)

    @classmethod
    def from_interned(cls, tokens: Iterable[str]) -> "Vocabulary":
        """Bulk constructor for an already-deduplicated token stream.

        The bulk construction engine interns with one ``np.unique`` pass
        and already knows its tokens are distinct and in id order, so
        this skips the per-token existence check of :meth:`add`.

        Raises:
            ValueError: If ``tokens`` contains duplicates.
        """
        vocab = cls.__new__(cls)
        vocab._tokens = list(tokens)
        vocab._ids = {token: i for i, token in enumerate(vocab._tokens)}
        if len(vocab._ids) != len(vocab._tokens):
            raise ValueError("from_interned requires distinct tokens")
        return vocab

    def add(self, token: str) -> int:
        """Intern a token, returning its id (existing or newly assigned)."""
        existing = self._ids.get(token)
        if existing is not None:
            return existing
        new_id = len(self._tokens)
        self._ids[token] = new_id
        self._tokens.append(token)
        return new_id

    def get(self, token: str) -> Optional[int]:
        """Id of a token, or None if it was never interned."""
        return self._ids.get(token)

    def token(self, token_id: int) -> str:
        """Token string for an id.

        Raises:
            IndexError: If the id was never assigned.
        """
        return self._tokens[token_id]

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._tokens)

    @property
    def tokens(self) -> List[str]:
        """All interned tokens in id order (a copy)."""
        return list(self._tokens)
