"""Model persistence, zero-copy opens, and size accounting.

A :class:`~repro.core.model.GraphExModel` serializes to a directory in
one of three on-disk formats (the newest is the default; all three
load):

* **Format 1** — ``arrays.npz`` (compressed CSR/count arrays) plus
  per-leaf string lists inside ``model.json``.  The original layout;
  read-only legacy support.
* **Format 2** — ``arrays.npz`` plus a *shared string pool* in
  ``model.json``: every distinct string (vocabulary word or label text)
  is stored exactly once and per-leaf membership is persisted as
  integer id arrays in the npz.  Marketplace vocabulary overlaps
  heavily across leaf graphs, so pooling shrinks the JSON
  substantially.
* **Format 3** (default) — the zero-copy model plane.  Every numeric
  array (per-leaf CSR ``indptr``/``indices``, count arrays, pool-id
  arrays) plus the shared string pool (one UTF-8 blob + offset arrays)
  lands uncompressed and page-aligned in a single ``arrays-*.bin``
  payload; ``model.json`` carries only the manifest (offset, dtype,
  shape per array).  ``load_model(directory, mmap=True)`` then opens
  the model as *read-only views over one* ``np.memmap`` — no array is
  copied, no pickle runs, label strings decode lazily on first access
  — so opening is O(metadata) rather than O(model), N processes on one
  host share a single physical copy of the pages, and a daily hot-swap
  is a remap instead of a reload.

Atomic re-save: format 3 writes the payload under a fresh
``arrays-<token>.bin`` name and atomically replaces ``model.json``
(write-to-temp + ``os.replace``), so a rebuild over the same directory
never tears the artifact for concurrent readers, and models already
mapped from the old payload keep serving (the old inode stays alive
under its mappings until they close — POSIX semantics).

Bit-identity contract: a model loads element-wise/string-identical
through every format, and an mmap-opened model serves byte-identical
output to a copied-open one through both inference engines
(``tests/test_model_serialization.py`` pins this property-based).

``model_size_bytes`` of the serialized form backs the Figure 6b
model-size comparison.
"""

from __future__ import annotations

import json
import os
import uuid
from collections import abc
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .alignment import get_alignment
from .csr import CSRGraph
from .model import GraphExModel, LeafGraph
from .tokenize import SpaceTokenizer
from .vocab import Vocabulary

_ARRAYS_FILE = "arrays.npz"
_META_FILE = "model.json"
_POOLED_KEY = "pooled"
_FORMAT_VERSION = 3

#: Format versions :func:`load_model` understands.  An artifact written
#: by a *newer* build (or a corrupted one) fails fast with a
#: ``ValueError`` naming the offending version instead of crashing
#: obscurely deeper in deserialization.
SUPPORTED_FORMATS = (1, 2, 3)

#: Formats :func:`save_model` can write (v1 is kept writable for the
#: cross-format equivalence suite and downgrade tooling).
WRITABLE_FORMATS = (1, 2, 3)

#: Every format-3 array starts on a page boundary, so each memmap view
#: is naturally aligned and the kernel can fault arrays independently.
_PAGE_SIZE = 4096

#: Manifest keys of the shared string pool inside the v3 payload.
_POOL_BLOB = "pool/blob"
_POOL_BYTE_OFFSETS = "pool/byte_offsets"
_POOL_CHAR_OFFSETS = "pool/char_offsets"


def _leaf_key(leaf_id: int) -> str:
    return _POOLED_KEY if leaf_id == -1 else str(leaf_id)


# ---------------------------------------------------------------------------
# The lazy string plane (format 3, mmap opens)


class _LazyStringPool:
    """The shared string pool, decoded lazily from a mapped UTF-8 blob.

    ``blob`` is a read-only ``uint8`` view over the mapped payload and
    ``byte_offsets`` the ``n + 1`` slice boundaries; a string is decoded
    on first access and cached, so an mmap open pays for exactly the
    strings it touches (eagerly: per-leaf vocabulary words, which the
    interning dict needs; lazily: label texts, which only materialised
    recommendations read).
    """

    __slots__ = ("_blob", "_byte_offsets", "_cache")

    def __init__(self, blob: np.ndarray, byte_offsets: np.ndarray) -> None:
        self._blob = blob
        self._byte_offsets = byte_offsets
        self._cache: Dict[int, str] = {}

    def __len__(self) -> int:
        return len(self._byte_offsets) - 1

    def __getitem__(self, pool_id: int) -> str:
        pool_id = int(pool_id)
        cached = self._cache.get(pool_id)
        if cached is None:
            lo = int(self._byte_offsets[pool_id])
            hi = int(self._byte_offsets[pool_id + 1])
            cached = bytes(self._blob[lo:hi]).decode("utf-8")
            self._cache[pool_id] = cached
        return cached


class LazyStringList(abc.Sequence):
    """A list-equivalent view of pool strings, decoded on access.

    ``label_texts`` of an mmap-opened leaf is one of these: indexing,
    iteration, ``len`` and equality behave exactly like the ``list`` the
    copied open builds, but nothing decodes until read.  Pickling (e.g.
    shipping a mapped model to inference worker processes) materialises
    a plain list — the mapped file need not exist on the other side.
    """

    __slots__ = ("_pool", "_ids")

    def __init__(self, pool: _LazyStringPool, ids: np.ndarray) -> None:
        self._pool = pool
        self._ids = ids

    def __len__(self) -> int:
        return len(self._ids)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._pool[i] for i in self._ids[index]]
        return self._pool[self._ids[index]]

    def __iter__(self) -> Iterator[str]:
        pool = self._pool
        return (pool[i] for i in self._ids)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, LazyStringList)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return f"LazyStringList({list(self)!r})"

    def __reduce__(self):
        return (list, (list(self),))


# ---------------------------------------------------------------------------
# Shared pack/unpack (all formats)


def _pack_leaf(prefix: str, leaf: LeafGraph,
               arrays: Dict[str, np.ndarray],
               pool: Vocabulary) -> Dict[str, object]:
    arrays[f"{prefix}/indptr"] = leaf.graph.indptr
    arrays[f"{prefix}/indices"] = leaf.graph.indices
    arrays[f"{prefix}/label_lengths"] = leaf.label_lengths
    arrays[f"{prefix}/search_counts"] = leaf.search_counts
    arrays[f"{prefix}/recall_counts"] = leaf.recall_counts
    # The shared pool is itself a Vocabulary: append-only string → id.
    arrays[f"{prefix}/word_ids"] = np.fromiter(
        map(pool.add, leaf.word_vocab.tokens), dtype=np.int64,
        count=len(leaf.word_vocab))
    arrays[f"{prefix}/label_ids"] = np.fromiter(
        map(pool.add, leaf.label_texts), dtype=np.int64,
        count=len(leaf.label_texts))
    return {"leaf_id": leaf.leaf_id}


def _unpack_leaf(meta: Dict[str, object], arrays: Dict[str, np.ndarray],
                 prefix: str, string_pool,
                 lazy: bool = False, validate: bool = True) -> LeafGraph:
    if f"{prefix}/label_ids" in arrays:  # formats 2/3: shared string pool
        words = [string_pool[i]
                 for i in arrays[f"{prefix}/word_ids"].tolist()]
        label_ids = arrays[f"{prefix}/label_ids"]
        if lazy:
            label_texts: Sequence[str] = LazyStringList(string_pool,
                                                        label_ids)
        else:
            label_texts = [string_pool[i] for i in label_ids.tolist()]
    else:  # format 1: per-leaf string lists in the JSON
        words = list(meta["words"])
        label_texts = list(meta["label_texts"])
    graph = CSRGraph(
        indptr=arrays[f"{prefix}/indptr"],
        indices=arrays[f"{prefix}/indices"],
        n_right=max(1, len(label_texts)),
        validate=validate,
    )
    return LeafGraph(
        leaf_id=int(meta["leaf_id"]),
        word_vocab=Vocabulary.from_interned(words),
        graph=graph,
        label_texts=label_texts,
        label_lengths=arrays[f"{prefix}/label_lengths"],
        search_counts=arrays[f"{prefix}/search_counts"],
        recall_counts=arrays[f"{prefix}/recall_counts"],
    )


def _pack_all(leaves: Sequence[LeafGraph]
              ) -> Tuple[Dict[str, Dict[str, object]],
                         Dict[str, np.ndarray], Vocabulary]:
    arrays: Dict[str, np.ndarray] = {}
    leaves_meta: Dict[str, Dict[str, object]] = {}
    pool = Vocabulary()
    for leaf in leaves:
        key = _leaf_key(leaf.leaf_id)
        leaves_meta[key] = _pack_leaf(key, leaf, arrays, pool)
    return leaves_meta, arrays, pool


# ---------------------------------------------------------------------------
# Format-3 payload: one uncompressed, page-aligned binary file


def _write_payload_v3(directory: Path, arrays: Dict[str, np.ndarray],
                      pool_tokens: Sequence[str]) -> Tuple[str, Dict]:
    """Write the raw binary payload; returns (filename, manifest).

    Arrays are laid out little-endian at page-aligned offsets.  The
    string pool becomes one UTF-8 blob plus byte offsets (for lazy
    per-string decodes straight off the mapping) and codepoint offsets
    (so a copied open can decode the whole blob once and slice).
    """
    encoded = [token.encode("utf-8") for token in pool_tokens]
    byte_offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    byte_offsets[1:] = np.cumsum([len(chunk) for chunk in encoded],
                                 dtype=np.int64)
    char_offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    char_offsets[1:] = np.cumsum([len(token) for token in pool_tokens],
                                 dtype=np.int64)
    payload = dict(arrays)
    payload[_POOL_BLOB] = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    payload[_POOL_BYTE_OFFSETS] = byte_offsets
    payload[_POOL_CHAR_OFFSETS] = char_offsets

    filename = f"arrays-{uuid.uuid4().hex}.bin"
    manifest: Dict[str, Dict[str, object]] = {}
    offset = 0
    tmp_path = directory / (filename + ".tmp")
    with open(tmp_path, "wb") as fh:
        for key, array in payload.items():
            array = np.ascontiguousarray(array)
            # Persist explicitly little-endian so the manifest dtype is
            # platform-independent (no copy on little-endian hosts).
            dtype = array.dtype.newbyteorder("<")
            array = array.astype(dtype, copy=False)
            padding = -offset % _PAGE_SIZE
            if padding:
                fh.write(b"\x00" * padding)
                offset += padding
            manifest[key] = {"offset": offset, "dtype": dtype.str,
                             "shape": list(array.shape)}
            data = array.tobytes()
            fh.write(data)
            offset += len(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, directory / filename)
    return filename, manifest


def _open_payload_v3(directory: Path, meta: Dict, mmap: bool):
    """Read or map the v3 payload; returns ``(arrays, pool, lazy)``.

    ``mmap=True`` returns read-only ``np.ndarray`` views over one
    ``np.memmap`` (plain-ndarray views, so a mapped model still
    pickles — by materialising — into inference worker processes) and
    a lazy string pool; nothing but the manifest is read eagerly, and
    CSR invariant validation is skipped (it would fault in every page,
    defeating the O(metadata) open — the payload was written by
    :func:`save_model` and is covered by the cross-format suite).

    ``mmap=False`` reads the file once and copies every array out
    (writable, independent of the file) and decodes the whole pool.
    """
    path = directory / meta["arrays_file"]
    manifest = meta["arrays"]
    arrays: Dict[str, np.ndarray] = {}
    if mmap:
        raw = np.memmap(path, dtype=np.uint8, mode="r")

        def view(entry) -> np.ndarray:
            dtype = np.dtype(entry["dtype"])
            start = entry["offset"]
            stop = start + dtype.itemsize * int(np.prod(entry["shape"]))
            return np.asarray(raw[start:stop].view(dtype)).reshape(
                entry["shape"])

        for key, entry in manifest.items():
            if not key.startswith("pool/"):
                arrays[key] = view(entry)
        pool = _LazyStringPool(view(manifest[_POOL_BLOB]),
                               view(manifest[_POOL_BYTE_OFFSETS]))
        return arrays, pool, True

    data = path.read_bytes()
    for key, entry in manifest.items():
        if key.startswith("pool/"):
            continue
        dtype = np.dtype(entry["dtype"])
        count = int(np.prod(entry["shape"]))
        arrays[key] = np.frombuffer(
            data, dtype=dtype, count=count,
            offset=entry["offset"]).reshape(entry["shape"]).copy()
    blob_entry = manifest[_POOL_BLOB]
    blob_start = blob_entry["offset"]
    blob = data[blob_start:blob_start + int(blob_entry["shape"][0])]
    chars_entry = manifest[_POOL_CHAR_OFFSETS]
    char_offsets = np.frombuffer(
        data, dtype=np.dtype(chars_entry["dtype"]),
        count=int(chars_entry["shape"][0]),
        offset=chars_entry["offset"]).tolist()
    decoded = blob.decode("utf-8")
    pool = [decoded[char_offsets[i]:char_offsets[i + 1]]
            for i in range(len(char_offsets) - 1)]
    return arrays, pool, False


def _replace_meta(directory: Path, meta: Dict) -> None:
    """Atomically (re)write ``model.json`` via write-to-temp + rename."""
    tmp_path = directory / (_META_FILE + f".tmp-{uuid.uuid4().hex}")
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(meta, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, directory / _META_FILE)


def _prune_stale_payloads(directory: Path, keep: Optional[str]) -> None:
    """Unlink payload files the current ``model.json`` no longer names.

    Models already mapped from a stale payload keep serving: the inode
    survives under its mappings (the rebuild-over-old-path scenario the
    serving tests pin).
    """
    for path in directory.glob("arrays-*.bin"):
        if path.name != keep:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent pruner
                pass
    if keep is not None:
        npz = directory / _ARRAYS_FILE
        if npz.exists():
            npz.unlink()


# ---------------------------------------------------------------------------
# Public API


def save_model(model: GraphExModel, directory: Union[str, Path],
               format_version: int = _FORMAT_VERSION) -> Path:
    """Serialize a model to a directory (created if needed).

    Args:
        model: The model to persist.
        directory: Destination directory; re-saving over a directory
            that already holds a model atomically replaces it (format 3
            writes a fresh payload file and swaps ``model.json`` last,
            so concurrent readers never observe a torn artifact and
            already-mapped models keep serving the old payload).
        format_version: On-disk format to write — 3 (default,
            zero-copy/mmap-able), 2 (compressed npz + shared pool) or
            1 (legacy per-leaf string lists).

    Returns:
        The directory path.

    Raises:
        ValueError: On a format version this build cannot write.
    """
    if format_version not in WRITABLE_FORMATS:
        raise ValueError(
            f"cannot write model format_version {format_version!r}; "
            f"writable formats are {WRITABLE_FORMATS}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    leaves = [model.leaf_graph(leaf_id) for leaf_id in model.leaf_ids]
    if model.pooled_graph is not None:
        leaves.append(model.pooled_graph)
    leaves_meta, arrays, pool = _pack_all(leaves)

    tokenizer = model.tokenizer
    stems = bool(getattr(tokenizer, "stems", False))
    meta = {
        "format_version": format_version,
        "alignment": model.alignment_name,
        "tokenizer": {"type": "space", "stem": stems},
        "leaves": leaves_meta,
    }
    if format_version == 1:
        # Legacy layout: per-leaf string lists in the JSON, no pool-id
        # arrays in the npz.
        for leaf in leaves:
            key = _leaf_key(leaf.leaf_id)
            meta["leaves"][key] = {
                "leaf_id": leaf.leaf_id,
                "words": list(leaf.word_vocab.tokens),
                "label_texts": list(leaf.label_texts),
            }
        arrays = {key: array for key, array in arrays.items()
                  if not (key.endswith("/word_ids")
                          or key.endswith("/label_ids"))}
        np.savez_compressed(directory / _ARRAYS_FILE, **arrays)
        _replace_meta(directory, meta)
        _prune_stale_payloads(directory, keep=None)
    elif format_version == 2:
        meta["string_pool"] = pool.tokens
        np.savez_compressed(directory / _ARRAYS_FILE, **arrays)
        _replace_meta(directory, meta)
        _prune_stale_payloads(directory, keep=None)
    else:
        filename, manifest = _write_payload_v3(directory, arrays,
                                               pool.tokens)
        meta["arrays_file"] = filename
        meta["arrays"] = manifest
        meta["pool_size"] = len(pool)
        _replace_meta(directory, meta)
        _prune_stale_payloads(directory, keep=filename)
    return directory


def _read_meta(directory: Path) -> Dict:
    """Read ``model.json`` and validate its ``format_version``."""
    with open(directory / _META_FILE, encoding="utf-8") as fh:
        meta = json.load(fh)
    version = meta.get("format_version")
    if version not in SUPPORTED_FORMATS:
        raise ValueError(
            f"unsupported model format_version {version!r} in "
            f"{directory / _META_FILE}; this build reads versions "
            f"{SUPPORTED_FORMATS} (was the artifact written by a newer "
            f"build?)")
    return meta


def model_format_version(directory: Union[str, Path]) -> int:
    """The ``format_version`` of a serialized model directory.

    Raises:
        FileNotFoundError: If the directory lacks ``model.json``.
        ValueError: If the version is not one this build supports.
    """
    return int(_read_meta(Path(directory))["format_version"])


def _load_from_meta(meta: Dict, directory: Path,
                    mmap: bool) -> GraphExModel:
    version = meta["format_version"]
    if version == 3:
        arrays, string_pool, lazy = _open_payload_v3(directory, meta, mmap)
    else:
        string_pool = list(meta.get("string_pool", ()))
        with np.load(directory / _ARRAYS_FILE) as npz:
            arrays = {key: npz[key] for key in npz.files}
        lazy = False

    leaf_graphs: Dict[int, LeafGraph] = {}
    pooled = None
    for key, leaf_meta in meta["leaves"].items():
        leaf = _unpack_leaf(leaf_meta, arrays, key, string_pool,
                            lazy=lazy, validate=not mmap)
        if key == _POOLED_KEY:
            pooled = leaf
        else:
            leaf_graphs[leaf.leaf_id] = leaf

    tokenizer = SpaceTokenizer(stem=bool(meta["tokenizer"].get("stem")))
    alignment = meta["alignment"]
    if alignment == "custom":
        alignment = "lta"
    get_alignment(alignment)  # fail fast on unknown names
    return GraphExModel(leaf_graphs, tokenizer=tokenizer,
                        alignment=alignment, pooled_graph=pooled)


def load_model(directory: Union[str, Path],
               mmap: bool = False) -> GraphExModel:
    """Load a model previously written by :func:`save_model`.

    Accepts format versions 1 (per-leaf string lists), 2 (shared string
    pool) and 3 (page-aligned binary payload).  All formats load
    bit-identical models; ``tests/test_model_serialization.py`` pins
    the equivalence property-based.

    Args:
        directory: The serialized model directory.
        mmap: Open a format-3 model zero-copy — every numpy array is a
            *read-only* view over one ``np.memmap`` (in-place writes
            raise), label strings decode lazily, and N processes
            opening the same artifact share one physical copy of the
            pages.  Requires format 3; older directories must be
            re-saved first (the error says so).

    Raises:
        FileNotFoundError: If the directory lacks the expected files.
        ValueError: On an unknown/future format version (the error
            names the version), or ``mmap=True`` on a pre-3 format.
    """
    directory = Path(directory)
    meta = _read_meta(directory)
    version = int(meta["format_version"])
    if mmap and version != 3:
        raise ValueError(
            f"mmap=True requires model format_version 3, but "
            f"{directory} holds format_version {version}; re-save it "
            f"with save_model(model, directory) to enable zero-copy "
            f"opens")
    return _load_from_meta(meta, directory, mmap=mmap)


def open_model(source: Union[GraphExModel, str, Path]) -> GraphExModel:
    """Polymorphic model hand-off: a model passes through, a path opens.

    The serving stack's ``refresh_model`` entry points route through
    this, so an orchestrator can hand a *directory path* to N serving
    processes instead of shipping N pickled copies: a format-3 artifact
    opens zero-copy (``mmap=True`` — the hot-swap is a remap, not a
    reload), older formats fall back to an ordinary copied load.
    """
    if isinstance(source, GraphExModel):
        return source
    directory = Path(source)
    return load_model(directory,
                      mmap=model_format_version(directory) == 3)


# ---------------------------------------------------------------------------
# Leaf-shard bundles (the process-construction return path)


def save_leaf_graphs(leaves: Sequence[LeafGraph],
                     directory: Union[str, Path]) -> Path:
    """Persist built leaf graphs as a format-3 *leaf bundle*.

    The return path of process-shard construction: a worker builds its
    shard's leaves, writes them here (raw page-aligned arrays + string
    pool — no pickle), and the parent opens the bundle zero-copy with
    :func:`load_leaf_graphs`.  A bundle is not a full model (no
    tokenizer/alignment); :func:`load_model` rejects it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    leaves_meta, arrays, pool = _pack_all(leaves)
    filename, manifest = _write_payload_v3(directory, arrays, pool.tokens)
    _replace_meta(directory, {
        "kind": "leaf-bundle",
        "format_version": _FORMAT_VERSION,
        "leaves": leaves_meta,
        "arrays_file": filename,
        "arrays": manifest,
        "pool_size": len(pool),
    })
    return directory


def load_leaf_graphs(directory: Union[str, Path],
                     mmap: bool = True) -> List[LeafGraph]:
    """Open a :func:`save_leaf_graphs` bundle (zero-copy by default).

    Returns the leaf graphs in the bundle's insertion order, arrays
    backed read-only by the mapping when ``mmap=True`` — the bundle
    file may be unlinked afterwards; live mappings keep it readable.
    """
    directory = Path(directory)
    with open(directory / _META_FILE, encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("kind") != "leaf-bundle":
        raise ValueError(f"{directory} is not a leaf bundle")
    if meta.get("format_version") not in SUPPORTED_FORMATS:
        raise ValueError(
            f"unsupported leaf-bundle format_version "
            f"{meta.get('format_version')!r}; this build reads versions "
            f"{SUPPORTED_FORMATS}")
    arrays, pool, lazy = _open_payload_v3(directory, meta, mmap)
    return [_unpack_leaf(leaf_meta, arrays, key, pool,
                         lazy=lazy, validate=not mmap)
            for key, leaf_meta in meta["leaves"].items()]


def model_size_bytes(directory: Union[str, Path]) -> int:
    """Total on-disk size of a serialized model (Figure 6b)."""
    directory = Path(directory)
    return sum(f.stat().st_size for f in directory.iterdir() if f.is_file())
