"""Model persistence and size accounting.

A :class:`~repro.core.model.GraphExModel` serializes to a directory:

* ``arrays.npz`` — every leaf's CSR arrays, label lengths, Search /
  Recall counts, plus its word and label-text ids into the shared
  string pool (compressed).
* ``model.json`` — the shared string pool, alignment name, tokenizer
  config and leaf ids.

Format version 2 stores every distinct string (vocabulary word or label
text) exactly once in a shared pool — marketplace vocabulary overlaps
heavily across leaf graphs, and the pooled graph duplicates every leaf's
strings wholesale, so pooling shrinks ``model.json`` substantially.
Per-leaf membership is persisted as integer id arrays in the npz.
Version 1 directories (per-leaf string lists) still load.

``model_size_bytes`` of the serialized form backs the Figure 6b
model-size comparison.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from .alignment import get_alignment
from .csr import CSRGraph
from .model import GraphExModel, LeafGraph
from .tokenize import SpaceTokenizer
from .vocab import Vocabulary

_ARRAYS_FILE = "arrays.npz"
_META_FILE = "model.json"
_POOLED_KEY = "pooled"
_FORMAT_VERSION = 2


def _leaf_key(leaf_id: int) -> str:
    return _POOLED_KEY if leaf_id == -1 else str(leaf_id)


def _pack_leaf(prefix: str, leaf: LeafGraph,
               arrays: Dict[str, np.ndarray],
               pool: Vocabulary) -> Dict[str, object]:
    arrays[f"{prefix}/indptr"] = leaf.graph.indptr
    arrays[f"{prefix}/indices"] = leaf.graph.indices
    arrays[f"{prefix}/label_lengths"] = leaf.label_lengths
    arrays[f"{prefix}/search_counts"] = leaf.search_counts
    arrays[f"{prefix}/recall_counts"] = leaf.recall_counts
    # The shared pool is itself a Vocabulary: append-only string → id.
    arrays[f"{prefix}/word_ids"] = np.fromiter(
        map(pool.add, leaf.word_vocab.tokens), dtype=np.int64,
        count=len(leaf.word_vocab))
    arrays[f"{prefix}/label_ids"] = np.fromiter(
        map(pool.add, leaf.label_texts), dtype=np.int64,
        count=len(leaf.label_texts))
    return {"leaf_id": leaf.leaf_id}


def _unpack_leaf(meta: Dict[str, object], arrays: Dict[str, np.ndarray],
                 prefix: str, string_pool: List[str]) -> LeafGraph:
    if f"{prefix}/label_ids" in arrays:  # format 2: shared string pool
        words = [string_pool[i]
                 for i in arrays[f"{prefix}/word_ids"].tolist()]
        label_texts = [string_pool[i]
                       for i in arrays[f"{prefix}/label_ids"].tolist()]
    else:  # format 1: per-leaf string lists in the JSON
        words = list(meta["words"])
        label_texts = list(meta["label_texts"])
    graph = CSRGraph(
        indptr=arrays[f"{prefix}/indptr"],
        indices=arrays[f"{prefix}/indices"],
        n_right=max(1, len(label_texts)),
    )
    return LeafGraph(
        leaf_id=int(meta["leaf_id"]),
        word_vocab=Vocabulary.from_interned(words),
        graph=graph,
        label_texts=label_texts,
        label_lengths=arrays[f"{prefix}/label_lengths"],
        search_counts=arrays[f"{prefix}/search_counts"],
        recall_counts=arrays[f"{prefix}/recall_counts"],
    )


def save_model(model: GraphExModel, directory: Union[str, Path]) -> Path:
    """Serialize a model to a directory (created if needed).

    Returns:
        The directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    leaves_meta: Dict[str, Dict[str, object]] = {}
    pool = Vocabulary()
    for leaf_id in model.leaf_ids:
        leaf = model.leaf_graph(leaf_id)
        key = _leaf_key(leaf_id)
        leaves_meta[key] = _pack_leaf(key, leaf, arrays, pool)
    if model.pooled_graph is not None:
        leaves_meta[_POOLED_KEY] = _pack_leaf(
            _POOLED_KEY, model.pooled_graph, arrays, pool)

    tokenizer = model.tokenizer
    stems = bool(getattr(tokenizer, "stems", False))
    meta = {
        "format_version": _FORMAT_VERSION,
        "alignment": model.alignment_name,
        "tokenizer": {"type": "space", "stem": stems},
        "string_pool": pool.tokens,
        "leaves": leaves_meta,
    }
    np.savez_compressed(directory / _ARRAYS_FILE, **arrays)
    with open(directory / _META_FILE, "w", encoding="utf-8") as fh:
        json.dump(meta, fh)
    return directory


def load_model(directory: Union[str, Path]) -> GraphExModel:
    """Load a model previously written by :func:`save_model`.

    Accepts format versions 1 (per-leaf string lists) and 2 (shared
    string pool).

    Raises:
        FileNotFoundError: If the directory lacks the expected files.
        ValueError: On unknown format versions.
    """
    directory = Path(directory)
    with open(directory / _META_FILE, encoding="utf-8") as fh:
        meta = json.load(fh)
    if meta.get("format_version") not in (1, 2):
        raise ValueError(
            f"unsupported model format: {meta.get('format_version')!r}")
    string_pool = list(meta.get("string_pool", ()))
    with np.load(directory / _ARRAYS_FILE) as npz:
        arrays = {key: npz[key] for key in npz.files}

    leaf_graphs: Dict[int, LeafGraph] = {}
    pooled = None
    for key, leaf_meta in meta["leaves"].items():
        leaf = _unpack_leaf(leaf_meta, arrays, key, string_pool)
        if key == _POOLED_KEY:
            pooled = leaf
        else:
            leaf_graphs[leaf.leaf_id] = leaf

    tokenizer = SpaceTokenizer(stem=bool(meta["tokenizer"].get("stem")))
    alignment = meta["alignment"]
    if alignment == "custom":
        alignment = "lta"
    get_alignment(alignment)  # fail fast on unknown names
    return GraphExModel(leaf_graphs, tokenizer=tokenizer,
                        alignment=alignment, pooled_graph=pooled)


def model_size_bytes(directory: Union[str, Path]) -> int:
    """Total on-disk size of a serialized model (Figure 6b)."""
    directory = Path(directory)
    return sum(f.stat().st_size for f in directory.iterdir() if f.is_file())
