"""Keyphrase curation from search logs (paper Section III-B).

Curation aggregates unique keyphrases per meta category, grouped by leaf
category, each with a Search Count and Recall Count.  Crucially it never
looks at item-keyphrase click associations — that decoupling is what rids
GraphEx of the click biases (Challenge I-A2) — and it keeps only heavily
searched (head) keyphrases via the Search-Count threshold (Challenge
I-A1 / Table VII).

The paper eases the threshold for small categories "due to a lack of
enough keyphrases" (footnote 5); :class:`CurationConfig.min_keyphrases`
reproduces that relaxation.

Two interchangeable curation engines are provided, mirroring the
two-engine inference split:

* ``reference`` — :func:`curate`'s original scalar loop, which re-scans
  every stat per CAT-3 threshold halving.  It is the semantics
  reference.
* ``fast`` — :func:`fast_curate`, which ingests the stats once into
  structure-of-arrays form and applies the Search-Count threshold,
  token-length filter and CAT-3 relaxation as boolean-mask passes, then
  splits per leaf with one stable argsort.  Output is bit-identical
  (same leaf insertion order, same per-leaf keyphrase order, same
  effective threshold), pinned by ``tests/test_fast_construct.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..search.logs import KeyphraseStat

#: Interchangeable curation paths (scalar reference vs vectorized bulk).
CURATION_ENGINES = ("reference", "fast")


@dataclass(frozen=True)
class CurationConfig:
    """Knobs of the curation process.

    Attributes:
        min_search_count: Keep keyphrases searched at least this many times
            in the window.  The paper's ideal is once per day (180 over six
            months); at simulation scale the benches pass scaled values.
        min_keyphrases: If a curation yields fewer unique keyphrases than
            this, the threshold is repeatedly halved (down to
            ``floor_search_count``) until satisfied — the CAT 3 relaxation.
        floor_search_count: Lower bound the relaxation will not cross.
        max_tokens: Drop keyphrases longer than this many tokens.
        min_tokens: Drop keyphrases shorter than this many tokens.
    """

    min_search_count: int = 180
    min_keyphrases: int = 0
    floor_search_count: int = 2
    max_tokens: int = 10
    min_tokens: int = 1


@dataclass
class CuratedLeaf:
    """Curated keyphrases of one leaf category, parallel-array style."""

    leaf_id: int
    texts: List[str] = field(default_factory=list)
    search_counts: List[int] = field(default_factory=list)
    recall_counts: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.texts)

    def add(self, text: str, search_count: int, recall_count: int) -> None:
        """Append one keyphrase."""
        self.texts.append(text)
        self.search_counts.append(search_count)
        self.recall_counts.append(recall_count)


@dataclass
class CuratedKeyphrases:
    """Curation output: keyphrases grouped per leaf category.

    Attributes:
        leaves: Mapping from leaf id to :class:`CuratedLeaf`.
        effective_threshold: The Search-Count threshold actually applied
            (may be lower than requested after relaxation).
        config: The configuration used.
    """

    leaves: Dict[int, CuratedLeaf]
    effective_threshold: int
    config: CurationConfig

    @property
    def n_keyphrases(self) -> int:
        """Total curated keyphrases across all leaves (duplicates across
        leaves count separately, as in the paper)."""
        return sum(len(leaf) for leaf in self.leaves.values())

    @property
    def n_unique_texts(self) -> int:
        """Unique keyphrase strings across the whole meta category."""
        texts = set()
        for leaf in self.leaves.values():
            texts.update(leaf.texts)
        return len(texts)

    def leaf(self, leaf_id: int) -> Optional[CuratedLeaf]:
        """Curated keyphrases for one leaf, or None."""
        return self.leaves.get(leaf_id)


def _apply_threshold(stats: Sequence[KeyphraseStat], threshold: int,
                     config: CurationConfig) -> Dict[int, CuratedLeaf]:
    leaves: Dict[int, CuratedLeaf] = {}
    for stat in stats:
        if stat.search_count < threshold:
            continue
        n_tokens = len(stat.text.split())
        if not config.min_tokens <= n_tokens <= config.max_tokens:
            continue
        leaf = leaves.setdefault(stat.leaf_id, CuratedLeaf(stat.leaf_id))
        leaf.add(stat.text, stat.search_count, stat.recall_count)
    return leaves


def curate(stats: Iterable[KeyphraseStat],
           config: Optional[CurationConfig] = None,
           engine: str = "fast") -> CuratedKeyphrases:
    """Curate keyphrases from aggregated search-log statistics.

    Args:
        stats: Per-(keyphrase, leaf) stats, e.g. from
            :meth:`repro.search.logs.SearchLog.keyphrase_stats`.
        config: Curation knobs; defaults to :class:`CurationConfig`.
        engine: ``"fast"`` (default, matching the construct builder)
            dispatches to the vectorized :func:`fast_curate`;
            ``"reference"`` runs the scalar loop below, which is the
            semantics reference the equivalence suite checks against.
            Both are bit-identical.

    Returns:
        :class:`CuratedKeyphrases` with the effective threshold recorded.
    """
    if engine == "fast":
        return fast_curate(stats, config)
    if engine != "reference":
        raise ValueError(f"unknown curation engine {engine!r}; "
                         f"expected one of {CURATION_ENGINES}")
    config = config or CurationConfig()
    stat_list = list(stats)
    threshold = config.min_search_count
    leaves = _apply_threshold(stat_list, threshold, config)

    def total(ls: Dict[int, CuratedLeaf]) -> int:
        return sum(len(leaf) for leaf in ls.values())

    # CAT 3-style relaxation: halve the threshold until enough keyphrases.
    while (config.min_keyphrases
           and total(leaves) < config.min_keyphrases
           and threshold > config.floor_search_count):
        threshold = max(config.floor_search_count, threshold // 2)
        leaves = _apply_threshold(stat_list, threshold, config)

    return CuratedKeyphrases(
        leaves=leaves, effective_threshold=threshold, config=config)


def fast_curate(stats: Iterable[KeyphraseStat],
                config: Optional[CurationConfig] = None
                ) -> CuratedKeyphrases:
    """Vectorized curation, bit-identical to :func:`curate`.

    The stats are ingested once into structure-of-arrays form (texts,
    leaf ids, search/recall counts, token counts).  The token-length
    filter is threshold-independent, so it is computed once; each CAT-3
    halving then costs one boolean-mask pass over the count array
    instead of a full Python re-scan of every stat.  The surviving rows
    are split per leaf with a single stable argsort, preserving both the
    scalar path's leaf insertion order (first surviving occurrence) and
    its per-leaf keyphrase order (stat order).
    """
    config = config or CurationConfig()
    stat_list = list(stats)
    n = len(stat_list)
    texts = [stat.text for stat in stat_list]
    leaf_ids = np.fromiter((stat.leaf_id for stat in stat_list),
                           dtype=np.int64, count=n)
    search = np.fromiter((stat.search_count for stat in stat_list),
                         dtype=np.int64, count=n)
    recall = np.fromiter((stat.recall_count for stat in stat_list),
                         dtype=np.int64, count=n)
    n_tokens = np.fromiter((len(text.split()) for text in texts),
                           dtype=np.int64, count=n)
    len_ok = ((n_tokens >= config.min_tokens)
              & (n_tokens <= config.max_tokens))

    threshold = config.min_search_count
    mask = len_ok & (search >= threshold)
    while (config.min_keyphrases
           and int(mask.sum()) < config.min_keyphrases
           and threshold > config.floor_search_count):
        threshold = max(config.floor_search_count, threshold // 2)
        mask = len_ok & (search >= threshold)

    leaves: Dict[int, CuratedLeaf] = {}
    survivors = np.flatnonzero(mask)
    if len(survivors):
        survivor_leaves = leaf_ids[survivors]
        order = np.argsort(survivor_leaves, kind="stable")
        grouped = survivors[order]
        sorted_leaves = survivor_leaves[order]
        unique_leaves, first_seen = np.unique(survivor_leaves,
                                              return_index=True)
        starts = np.searchsorted(sorted_leaves, unique_leaves)
        ends = np.append(starts[1:], len(grouped))
        spans = {int(leaf): (int(s), int(e))
                 for leaf, s, e in zip(unique_leaves, starts, ends)}
        # Leaf dict keys in first-surviving-occurrence order, matching
        # the scalar setdefault loop (the pooled-graph merge iterates
        # this dict, so key order affects downstream bit-identity).
        for leaf in unique_leaves[np.argsort(first_seen, kind="stable")]:
            leaf_id = int(leaf)
            start, end = spans[leaf_id]
            rows = grouped[start:end]
            leaves[leaf_id] = CuratedLeaf(
                leaf_id=leaf_id,
                texts=[texts[i] for i in rows.tolist()],
                search_counts=search[rows].tolist(),
                recall_counts=recall[rows].tolist())
    return CuratedKeyphrases(
        leaves=leaves, effective_threshold=threshold, config=config)


def head_threshold(stats: Iterable[KeyphraseStat],
                   percentile: float = 90.0) -> float:
    """Search-count value at the given percentile of unique keyphrases.

    The evaluation framework (Section IV-C) labels a relevant keyphrase
    *head* when its search count exceeds the 90th percentile for the
    category, "ensuring 10% exceed this limit".  Computed with
    ``np.percentile`` (introselect, O(n)) under the same
    linear-interpolation semantics as the original sorted-rank formula.
    """
    counts = [stat.search_count for stat in stats]
    if not counts:
        return 0.0
    return float(np.percentile(counts, percentile))
