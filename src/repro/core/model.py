"""GraphEx model: per-leaf-category bipartite graph construction.

Construction (paper Section III-D) is training-free: for each leaf
category, unique words of the curated keyphrases form the left vertex set
``X``, the keyphrases form the right set ``Y``, and an edge ``(x, y)``
exists whenever word ``x`` occurs in keyphrase ``y``.  Graphs are stored
in CSR with words and labels interned as integers; Search and Recall
counts live in parallel arrays indexed by label id (O(1) lookup).

One :class:`GraphExModel` covers a whole meta category — the leaf graphs
are handled internally via a dict, so no per-leaf model management is
needed (Section III-F).

Two interchangeable builders construct the graphs, mirroring the
two-engine inference split:

* ``reference`` — :func:`build_leaf_graph`'s scalar loop (one
  ``Vocabulary.add`` and edge tuple per token per label).  It is the
  semantics reference the equivalence suite checks against.
* ``fast`` (default) — the bulk engine in
  :mod:`repro.core.fast_construct`: shared memoized tokenization, one
  ``np.unique`` interning pass per leaf and array-native CSR assembly,
  with optional whole-leaf thread sharding (``workers``).  The built
  model is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .alignment import AlignmentFunction, get_alignment
from .csr import CSRGraph
from .curation import CuratedKeyphrases, CuratedLeaf
from .inference import Recommendation, recommend_from_graph
from .tokenize import DEFAULT_TOKENIZER, Tokenizer
from .vocab import Vocabulary

#: Interchangeable construction paths (scalar reference vs bulk engine).
BUILDERS = ("reference", "fast")


@dataclass
class LeafGraph:
    """The bipartite word→keyphrase graph of one leaf category.

    Attributes:
        leaf_id: Leaf category id this graph serves.
        word_vocab: Interning of the unique words (left vertices).
        graph: CSR adjacency from word id to label id.
        label_texts: Keyphrase strings in label-id order.  Any
            integer-indexable sequence of str: an ordinary list on
            built/copied models, a lazy decode-on-access view
            (:class:`repro.core.serialization.LazyStringList`) on
            mmap-opened ones — both compare equal element-wise.
        label_lengths: Unique-token count ``|l|`` per label.
        search_counts: Search Count ``S(l)`` per label.  On an
            mmap-opened model this (like every array here) is a
            read-only view over the artifact file.
        recall_counts: Recall Count ``R(l)`` per label.
    """

    leaf_id: int
    word_vocab: Vocabulary
    graph: CSRGraph
    label_texts: Sequence[str]
    label_lengths: np.ndarray
    search_counts: np.ndarray
    recall_counts: np.ndarray

    @property
    def n_labels(self) -> int:
        """Number of keyphrases on the right side."""
        return len(self.label_texts)

    def numeric_memory_bytes(self) -> int:
        """Exact bytes of the leaf's numeric arrays (CSR + label arrays)."""
        return (self.graph.memory_bytes()
                + self.label_lengths.nbytes
                + self.search_counts.nbytes
                + self.recall_counts.nbytes)

    def memory_bytes(self) -> int:
        """Exact in-memory footprint of the numeric arrays plus the UTF-8
        payload of the label and vocabulary strings (Figure 6b sizing)."""
        strings = sum(len(t.encode("utf-8")) for t in self.label_texts)
        words = sum(len(w.encode("utf-8")) for w in self.word_vocab)
        return self.numeric_memory_bytes() + strings + words


def build_leaf_graph(curated: CuratedLeaf,
                     tokenizer: Tokenizer) -> LeafGraph:
    """Construct one leaf's bipartite graph from curated keyphrases."""
    vocab = Vocabulary()
    edges: List[Tuple[int, int]] = []
    label_lengths = np.empty(len(curated), dtype=np.int32)
    for label_id, text in enumerate(curated.texts):
        unique_tokens = list(dict.fromkeys(tokenizer(text)))
        label_lengths[label_id] = max(1, len(unique_tokens))
        for token in unique_tokens:
            edges.append((vocab.add(token), label_id))
    graph = CSRGraph.from_edges(edges, n_left=max(1, len(vocab)),
                                n_right=max(1, len(curated)))
    return LeafGraph(
        leaf_id=curated.leaf_id,
        word_vocab=vocab,
        graph=graph,
        label_texts=list(curated.texts),
        label_lengths=label_lengths,
        search_counts=np.asarray(curated.search_counts, dtype=np.int64),
        recall_counts=np.asarray(curated.recall_counts, dtype=np.int64),
    )


def _pool_leaves(leaves: Sequence[CuratedLeaf]) -> CuratedLeaf:
    """Merge all leaves into one pooled pseudo-leaf (ablation).

    Duplicate texts across leaves are merged keeping the maximum Search
    Count and minimum Recall Count.
    """
    best: Dict[str, Tuple[int, int]] = {}
    for leaf in leaves:
        for text, search, recall in zip(
                leaf.texts, leaf.search_counts, leaf.recall_counts):
            prev = best.get(text)
            if prev is None:
                best[text] = (search, recall)
            else:
                best[text] = (max(prev[0], search), min(prev[1], recall))
    pooled = CuratedLeaf(leaf_id=-1)
    for text, (search, recall) in best.items():
        pooled.add(text, search, recall)
    return pooled


class GraphExModel:
    """The GraphEx keyphrase recommender for one meta category.

    Use :meth:`construct` to build from curated keyphrases; construction
    involves no weight updates or hyper-parameter training and completes
    in seconds even for large categories (paper Section IV-G).

    Args:
        leaf_graphs: Leaf-id → :class:`LeafGraph` mapping.
        tokenizer: Tokenizer shared by construction and inference.
        alignment: Alignment function or registry name ("lta"/"wmr"/"jac").
        pooled_graph: Optional single pooled graph covering every leaf
            (per-leaf vs pooled ablation; also the fallback for items whose
            leaf has no graph).
    """

    def __init__(self, leaf_graphs: Dict[int, LeafGraph],
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER,
                 alignment: Union[str, AlignmentFunction] = "lta",
                 pooled_graph: Optional[LeafGraph] = None) -> None:
        self._leaf_graphs = dict(leaf_graphs)
        self._tokenizer = tokenizer
        self._alignment_name = (alignment if isinstance(alignment, str)
                                else getattr(alignment, "__name__", "custom"))
        self._alignment = get_alignment(alignment)
        self._pooled = pooled_graph

    @classmethod
    def construct(cls, curated: CuratedKeyphrases,
                  tokenizer: Tokenizer = DEFAULT_TOKENIZER,
                  alignment: Union[str, AlignmentFunction] = "lta",
                  build_pooled: bool = False,
                  builder: str = "fast",
                  workers: int = 1,
                  parallel: Optional[str] = None,
                  executor=None) -> "GraphExModel":
        """Build the model from curated keyphrases (the "training" phase).

        Args:
            curated: Output of :func:`repro.core.curation.curate`.
            tokenizer: Tokenization scheme (must stay fixed for the model's
                lifetime; paper footnote 3).
            alignment: Ranking alignment function; default LTA.
            build_pooled: Also build a single pooled graph over all leaves
                for the per-leaf-vs-pooled ablation and leaf fallback.
            builder: ``"fast"`` (default) uses the bulk construction
                engine (:mod:`repro.core.fast_construct`): shared
                memoized tokenization, one ``np.unique`` interning pass
                per leaf, array-native CSR assembly.  ``"reference"``
                keeps the scalar per-token loop; both yield bit-identical
                models (pinned by ``tests/test_fast_construct.py``).
            workers: Worker count for the fast builder; whole leaves
                are sharded, cost-balanced via
                :class:`~repro.core.sharding.ShardPlan`.  Ignored by
                the reference builder and by ``executor`` instances
                (they carry their own).
            parallel: Legacy spelling of ``executor`` (``"thread"`` /
                ``"process"``); pass one or the other, not both.
            executor: Which substrate builds the leaf shards — an
                :class:`repro.core.execution.Executor` instance or one
                of its spellings (``"serial"``, ``"thread"`` (default),
                ``"process"``, ``"cluster"``).  Out-of-process
                executors need a picklable tokenizer, as the built-in
                ones are.  The built model is bit-identical for every
                substrate.

        Raises:
            ValueError: On an unknown builder or executor spelling, or
                an out-of-process executor with the reference builder
                (the scalar path stays single-process as the semantics
                oracle).
        """
        if builder not in BUILDERS:
            raise ValueError(f"unknown builder {builder!r}; "
                             f"expected one of {BUILDERS}")
        # Imported lazily: the execution plane reaches this module
        # through the engines it wraps, so a top-level import would be
        # a cycle.
        from .execution import resolve_executor
        exec_ = resolve_executor(executor, parallel=parallel,
                                 workers=workers, engine=builder)
        if builder == "fast":
            from .fast_construct import build_leaf_graph_fast

            leaf_graphs, cache = exec_.run_construction(curated, tokenizer)
            pooled = None
            if build_pooled and curated.leaves:
                pooled = build_leaf_graph_fast(
                    _pool_leaves(list(curated.leaves.values())), cache)
        else:
            leaf_graphs = {
                leaf_id: build_leaf_graph(leaf, tokenizer)
                for leaf_id, leaf in curated.leaves.items()
                if len(leaf) > 0
            }
            pooled = None
            if build_pooled and curated.leaves:
                pooled = build_leaf_graph(
                    _pool_leaves(list(curated.leaves.values())), tokenizer)
        return cls(leaf_graphs, tokenizer=tokenizer, alignment=alignment,
                   pooled_graph=pooled)

    @property
    def tokenizer(self) -> Tokenizer:
        """The tokenizer shared by construction and inference."""
        return self._tokenizer

    @property
    def alignment_name(self) -> str:
        """Registry name of the alignment function in use."""
        return self._alignment_name

    @property
    def alignment_fn(self) -> AlignmentFunction:
        """The resolved alignment function (shared by both engines)."""
        return self._alignment

    @property
    def leaf_ids(self) -> List[int]:
        """Leaf categories with a constructed graph."""
        return sorted(self._leaf_graphs)

    @property
    def n_leaves(self) -> int:
        """Number of leaf graphs."""
        return len(self._leaf_graphs)

    @property
    def n_keyphrases(self) -> int:
        """Total labels across all leaf graphs."""
        return sum(g.n_labels for g in self._leaf_graphs.values())

    @property
    def pooled_graph(self) -> Optional[LeafGraph]:
        """The pooled all-leaves graph, if built."""
        return self._pooled

    def leaf_graph(self, leaf_id: int) -> Optional[LeafGraph]:
        """The graph serving one leaf, or None."""
        return self._leaf_graphs.get(leaf_id)

    def recommend(self, title: str, leaf_id: int, k: int = 10,
                  hard_limit: Optional[int] = None,
                  use_pooled: bool = False) -> List[Recommendation]:
        """Recommend keyphrases for an item title (Algorithm 1).

        Args:
            title: Raw item title string.
            leaf_id: Leaf category of the item; selects the graph in O(1).
            k: Target number of predictions.  Whole count-groups are kept,
                so slightly more than ``k`` may be returned (paper III-F).
            hard_limit: If given, truncate the ranked list to this length
                (the experiments cap at 40).
            use_pooled: Rank against the pooled graph instead of the leaf
                graph (ablation).

        Returns:
            Ranked recommendations; empty when the leaf is unknown and no
            pooled fallback exists, or no title token matches.
        """
        if use_pooled:
            graph = self._pooled
        else:
            graph = self._leaf_graphs.get(leaf_id) or self._pooled
        if graph is None:
            return []
        tokens = self._tokenizer(title)
        return recommend_from_graph(
            graph, tokens, k=k, alignment_fn=self._alignment,
            hard_limit=hard_limit)

    def memory_bytes(self) -> int:
        """Exact model footprint for Figure 6b.

        Numeric arrays are summed per graph; string payloads are counted
        once per *distinct* string across all graphs (UTF-8 bytes), since
        label texts and vocabulary words shared between leaves and the
        pooled graph are interned, not duplicated — the naive per-leaf
        sum double-counts them.
        """
        graphs = list(self._leaf_graphs.values())
        if self._pooled is not None:
            graphs.append(self._pooled)
        numeric = sum(g.numeric_memory_bytes() for g in graphs)
        pool = set()
        for g in graphs:
            pool.update(g.label_texts)
            pool.update(g.word_vocab)
        return numeric + sum(len(s.encode("utf-8")) for s in pool)
