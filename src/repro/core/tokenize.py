"""Tokenization for titles and keyphrases.

The paper (Section III-C, footnote 3) allows any tokenization scheme as
long as string comparison is well-defined and consistent; the default is
space-delimited.  We provide that default plus normalization and an
optional light stemmer — the paper mentions a proprietary stemming
function used "to increase the reach of token matches" (Section IV-F1).
"""

from __future__ import annotations

import re
from typing import Callable, List, Sequence

#: A tokenizer maps a raw string to a list of tokens.
Tokenizer = Callable[[str], List[str]]

_PUNCT_EDGES = re.compile(r"^[^\w]+|[^\w]+$")
_WS = re.compile(r"\s+")


def normalize_token(token: str) -> str:
    """Lowercase a token and strip punctuation from its edges.

    Interior punctuation ("16gb", "1:64", "wi-fi") is preserved, matching
    how marketplace search treats alphanumeric model codes.
    """
    return _PUNCT_EDGES.sub("", token.lower())


def light_stem(token: str) -> str:
    """Conservative suffix-stripping stemmer.

    Only plural suffixes are removed, so "headphones" and "headphone"
    compare equal while short tokens and model codes are left intact.
    """
    if len(token) <= 3:
        return token
    if token.endswith("ies") and len(token) > 4:
        return token[:-3] + "y"
    if token.endswith("sses"):
        return token[:-2]
    if token.endswith("ss") or token.endswith("us") or token.endswith("is"):
        return token
    if token.endswith("s"):
        return token[:-1]
    return token


class SpaceTokenizer:
    """Space-delimited tokenizer with normalization and optional stemming.

    Args:
        stem: Apply :func:`light_stem` to every token.
        drop_stopwords: Tokens to drop entirely (e.g. "for", "with").

    The same tokenizer instance must be used at construction and inference
    time so that string comparisons stay consistent (paper footnote 3);
    :class:`~repro.core.model.GraphExModel` enforces this by owning its
    tokenizer.
    """

    def __init__(self, stem: bool = False,
                 drop_stopwords: Sequence[str] = ()) -> None:
        self._stem = stem
        self._stopwords = frozenset(drop_stopwords)

    @property
    def stems(self) -> bool:
        """Whether this tokenizer applies stemming."""
        return self._stem

    def __call__(self, text: str) -> List[str]:
        """Tokenize, normalize and optionally stem a string."""
        out: List[str] = []
        for raw in _WS.split(text.strip()):
            token = normalize_token(raw)
            if not token or token in self._stopwords:
                continue
            if self._stem:
                token = light_stem(token)
            out.append(token)
        return out


#: Default tokenizer: space-delimited, normalized, no stemming.
DEFAULT_TOKENIZER = SpaceTokenizer()

#: Tokenizer with the paper's "increase the reach" stemming enabled.
STEMMING_TOKENIZER = SpaceTokenizer(stem=True)
