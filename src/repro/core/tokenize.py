"""Tokenization for titles and keyphrases.

The paper (Section III-C, footnote 3) allows any tokenization scheme as
long as string comparison is well-defined and consistent; the default is
space-delimited.  We provide that default plus normalization and an
optional light stemmer — the paper mentions a proprietary stemming
function used "to increase the reach of token matches" (Section IV-F1).
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: A tokenizer maps a raw string to a list of tokens.
Tokenizer = Callable[[str], List[str]]

_PUNCT_EDGES = re.compile(r"^[^\w]+|[^\w]+$")


def normalize_token(token: str) -> str:
    """Lowercase a token and strip punctuation from its edges.

    Interior punctuation ("16gb", "1:64", "wi-fi") is preserved, matching
    how marketplace search treats alphanumeric model codes.
    """
    return _PUNCT_EDGES.sub("", token.lower())


def light_stem(token: str) -> str:
    """Conservative suffix-stripping stemmer.

    Only plural suffixes are removed, so "headphones" and "headphone"
    compare equal while short tokens and model codes are left intact.
    """
    if len(token) <= 3:
        return token
    if token.endswith("ies") and len(token) > 4:
        return token[:-3] + "y"
    if token.endswith("sses"):
        return token[:-2]
    if token.endswith("ss") or token.endswith("us") or token.endswith("is"):
        return token
    if token.endswith("s"):
        return token[:-1]
    return token


class SpaceTokenizer:
    """Space-delimited tokenizer with normalization and optional stemming.

    Args:
        stem: Apply :func:`light_stem` to every token.
        drop_stopwords: Tokens to drop entirely (e.g. "for", "with").

    The same tokenizer instance must be used at construction and inference
    time so that string comparisons stay consistent (paper footnote 3);
    :class:`~repro.core.model.GraphExModel` enforces this by owning its
    tokenizer.
    """

    def __init__(self, stem: bool = False,
                 drop_stopwords: Sequence[str] = ()) -> None:
        self._stem = stem
        self._stopwords = frozenset(drop_stopwords)

    @property
    def stems(self) -> bool:
        """Whether this tokenizer applies stemming."""
        return self._stem

    @property
    def stopwords(self) -> frozenset:
        """Tokens dropped entirely by this tokenizer."""
        return self._stopwords

    def process(self, raw: str) -> Optional[str]:
        """Normalize/stem one whitespace-separated raw token.

        Returns None when the token is dropped (empty after normalization
        or a stopword).  ``__call__`` is exactly a split + ``process`` per
        raw token; :class:`TokenCache` relies on that to memoize the
        per-token pipeline without changing semantics.
        """
        token = normalize_token(raw)
        if not token or token in self._stopwords:
            return None
        if self._stem:
            token = light_stem(token)
        return token

    def __call__(self, text: str) -> List[str]:
        """Tokenize, normalize and optionally stem a string.

        ``str.split()`` and the historical ``\\s+`` regex split agree on
        every Unicode codepoint (and the empty string's lone ``""``
        chunk normalizes away), so this is the exact same token stream,
        just without the regex engine.
        """
        return [token for token in map(self.process, text.split())
                if token is not None]


class TokenCache:
    """Shared token pool with memoized per-text unique-token ids.

    Model construction tokenizes every curated keyphrase of every leaf,
    and marketplace vocabulary overlaps heavily across leaves — the same
    keyphrase text (duplicated across leaf categories, and wholesale in
    the pooled graph) and the same raw tokens recur constantly.  The
    cache interns each distinct token string once into a shared
    append-only pool and memoizes, per distinct text, the tuple of
    pool ids of its unique tokens in first-occurrence order — exactly
    ``dict.fromkeys(tokenizer(text))`` mapped through the pool.

    For a plain :class:`SpaceTokenizer` the whole per-raw-token pipeline
    collapses into one memo lookup (``raw token → pool id, or dropped``),
    so repeated tokens skip the normalization regex *and* the
    string-keyed interning dict entirely; any other callable falls back
    to invoking it per distinct text.  Either way the produced token
    streams are identical to calling the tokenizer directly.

    Safe for concurrent use: pool misses take a lock, reads are
    lock-free (the pool is append-only).
    """

    def __init__(self, tokenizer: Tokenizer) -> None:
        self._tokenizer = tokenizer
        self._tokens: List[str] = []
        self._token_ids: Dict[str, int] = {}
        self._text_ids: Dict[str, Tuple[int, ...]] = {}
        self._lock = threading.Lock()
        # Only replicate the token-wise pipeline for the exact class; a
        # subclass may override __call__ with non-token-wise behavior.
        self._raw_ids: Optional[Dict[str, int]] = (
            {} if type(tokenizer) is SpaceTokenizer else None)

    def __len__(self) -> int:
        return len(self._tokens)

    @property
    def tokenizer(self) -> Tokenizer:
        """The underlying tokenizer whose semantics the cache mirrors."""
        return self._tokenizer

    @property
    def token_wise(self) -> bool:
        """Whether :meth:`resolve_raws` is available (plain
        :class:`SpaceTokenizer`, whose pipeline is per raw token)."""
        return self._raw_ids is not None

    def token(self, token_id: int) -> str:
        """Pool string for an id."""
        return self._tokens[token_id]

    def tokens_for(self, token_ids: Sequence[int]) -> List[str]:
        """Pool strings for a sequence of ids."""
        tokens = self._tokens
        return [tokens[i] for i in token_ids]

    def _intern(self, token: str) -> int:
        token_id = self._token_ids.get(token)
        if token_id is None:
            with self._lock:
                token_id = self._token_ids.get(token)
                if token_id is None:
                    token_id = len(self._tokens)
                    self._tokens.append(token)
                    self._token_ids[token] = token_id
        return token_id

    def resolve_raws(self, raws: Sequence[str]) -> List[int]:
        """Pool ids for raw whitespace-separated tokens, in order.

        Dropped tokens (empty after normalization, or stopwords) resolve
        to ``-1``.  ``text.split()`` fed through this method is exactly
        ``tokenizer(text)`` with drops marked instead of removed.  Only
        available when :attr:`token_wise` is true.
        """
        raw_ids = self._raw_ids
        # Warm the memo on the batch's *distinct* new raws first (one
        # C-level set difference), so the per-occurrence mapping below
        # is a pure C map() with no miss handling.
        new = set(raws).difference(raw_ids)
        if new:
            process = self._tokenizer.process
            for raw in new:
                token = process(raw)
                raw_ids[raw] = -1 if token is None else self._intern(token)
        return list(map(raw_ids.__getitem__, raws))

    def export_state(self) -> Tuple[List[str], Dict[str, Tuple[int, ...]],
                                    Optional[Dict[str, int]]]:
        """Picklable snapshot: pool tokens, text memo, raw-token memo.

        A process-shard construction worker builds its leaves against a
        private cache and ships this snapshot back (the cache itself
        holds a lock and is not picklable); the parent merges it with
        :meth:`absorb_state`.
        """
        return (list(self._tokens), dict(self._text_ids),
                None if self._raw_ids is None else dict(self._raw_ids))

    def absorb_state(self, state: Tuple[List[str],
                                        Dict[str, Tuple[int, ...]],
                                        Optional[Dict[str, int]]]) -> None:
        """Merge another cache's exported state with a stable id-remap.

        Donor tokens unknown to this pool are appended in the donor's
        id order, so absorbing shard states in shard-index order always
        yields the same pool; every donor memo entry is remapped onto
        this pool's ids (existing entries win).  Token *streams*
        resolved through the merged cache are identical to the donor's
        — same strings, possibly different pool ids — which the bulk
        builders are insensitive to by the bit-identity contract.  The
        donor must wrap the same tokenizer semantics as this cache.
        """
        tokens, text_ids, raw_ids = state
        remap = [self._intern(token) for token in tokens]
        for text, ids in text_ids.items():
            if text not in self._text_ids:
                self._text_ids[text] = tuple(remap[i] for i in ids)
        if raw_ids is not None and self._raw_ids is not None:
            for raw, token_id in raw_ids.items():
                if raw not in self._raw_ids:
                    self._raw_ids[raw] = (remap[token_id]
                                          if token_id >= 0 else -1)

    def unique_ids(self, text: str) -> Tuple[int, ...]:
        """Pool ids of the text's unique tokens, in first-occurrence order.

        Deduplication happens on ids, which is equivalent to the scalar
        ``dict.fromkeys(tokenizer(text))`` on strings: distinct raw
        tokens that normalize to the same token share one pool id.
        """
        ids = self._text_ids.get(text)
        if ids is not None:
            return ids
        if self._raw_ids is None:
            ids = tuple(self._intern(token)
                        for token in dict.fromkeys(self._tokenizer(text)))
        else:
            unique = dict.fromkeys(self.resolve_raws(text.split()))
            unique.pop(-1, None)  # dropped tokens
            ids = tuple(unique)
        self._text_ids[text] = ids
        return ids


#: Default tokenizer: space-delimited, normalized, no stemming.
DEFAULT_TOKENIZER = SpaceTokenizer()

#: Tokenizer with the paper's "increase the reach" stemming enabled.
STEMMING_TOKENIZER = SpaceTokenizer(stem=True)
