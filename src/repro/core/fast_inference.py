"""Vectorized leaf-batched inference engine (the "fast" path).

The scalar path (:func:`repro.core.inference.recommend_from_graph`) runs
Algorithm 1 once per title: dict lookups, Python list building and a
per-item ``np.unique``.  That is fine for one request but wasteful for the
batch and NRT workloads of Figure 7, where thousands of titles hit the
same handful of leaf graphs.  This module batches the whole algorithm at
the leaf level:

1. **Group by graph** — requests are bucketed by the leaf graph that will
   serve them (including the pooled fallback for unknown leaves), so every
   downstream array op amortises over the group.
2. **Bulk intern** — all titles of a group are tokenized and mapped
   through the leaf's ``word_vocab`` with a group-local token cache;
   repeated tokens across titles pay the dict lookup once.
3. **Fused enumeration** — one CSR gather expands every (title, word)
   pair's adjacency list, then a single offset-shifted ``np.bincount``
   (candidate label ids shifted by ``item_index * n_labels``) counts the
   duplication ``c = |T ∩ l|`` for *every* item at once.  When the shifted
   key range would be too large to bincount densely, an ``np.unique``
   run-length fallback produces the identical (key-sorted) output.
4. **Vectorized group-pruning** — the paper's count-array pruning
   (Section III-F) runs for all items in one segmented pass: a single
   ``lexsort`` by (item, count desc) finds each item's k-th largest count,
   and whole threshold groups are kept per item exactly as the scalar
   path does.
5. **Segmented ranking** — one ``np.lexsort`` keyed by (item, score desc,
   Search Count desc, Recall Count asc, label id asc) ranks every item's
   survivors together.
6. **Deduplicated materialisation** — a ranked row's value is a pure
   function of (label, c, |T|), and :class:`Recommendation` is immutable,
   so each distinct row is constructed once and shared across the items
   that ranked it (popular labels hit many titles in a batch).

The engine is *provably identical* to the scalar path — same candidate
sets, same IEEE-754 scores (identical operand values through identical
vectorized alignment functions), same tie-break order — and
``tests/test_fast_inference.py`` pins that equivalence property-based.
The scalar path remains the semantics reference.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .alignment import ALIGNMENTS
from .batch import InferenceRequest, validate_hard_limit
from .inference import Recommendation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .model import GraphExModel, LeafGraph

#: Above this ``n_items * n_labels`` product the dense bincount would
#: allocate too much, so enumeration falls back to the np.unique path.
DEFAULT_DENSE_LIMIT = 1 << 23


def _alignment_is_vectorized(fn) -> bool:
    """Probe whether an alignment callable is element-wise vectorized.

    The scalar path hands ``fn`` candidate arrays with a *scalar*
    title_len; the fast path batches whole leaf groups, so title_len
    becomes an array too.  The built-in LTA/WMR/JAC broadcast
    identically either way; a scalar-only or cross-row-coupled custom
    callable would crash or silently score differently, so it is
    rejected up front.  The registry built-ins are trusted without
    probing, keeping per-batch runner construction free of redundant
    work; only custom callables pay the (tiny) probe.
    """
    if any(fn is known for known in ALIGNMENTS.values()):
        return True
    c = np.array([1, 2], dtype=np.int64)
    label_len = np.array([2, 4], dtype=np.int64)
    title_len = np.array([3, 5], dtype=np.int64)
    try:
        batched = np.asarray(fn(c, label_len, title_len),
                             dtype=np.float64)
        if batched.shape != (2,):
            return False
        for i in range(2):
            single = np.asarray(
                fn(c[i:i + 1], label_len[i:i + 1], int(title_len[i])),
                dtype=np.float64)
            if single.shape != (1,):
                return False
            if not (single[0] == batched[i]
                    or (np.isnan(single[0]) and np.isnan(batched[i]))):
                return False
    except Exception:
        return False
    return True


def _intern_group(graph: "LeafGraph", titles: Sequence[Sequence[str]]):
    """Bulk-intern tokenized titles against one graph's word vocabulary.

    Args:
        graph: The leaf graph whose ``word_vocab`` interns the tokens.
        titles: Pre-tokenized titles (one token list per item).

    Returns:
        ``(word_ids, word_owner, n_tokens)``: flat known-word ids across
        the whole group, the item index owning each id, and the per-item
        unique-token count (unknown tokens included — it is the ``|T|``
        the alignment functions see).
    """
    vocab_get = graph.word_vocab.get
    cache: Dict[str, int] = {}
    flat_ids: List[int] = []
    flat_owner: List[int] = []
    n_tokens = np.zeros(len(titles), dtype=np.int64)
    for item_index, tokens in enumerate(titles):
        unique_tokens = dict.fromkeys(tokens)
        n_tokens[item_index] = len(unique_tokens)
        for token in unique_tokens:
            word_id = cache.get(token)
            if word_id is None:
                resolved = vocab_get(token)
                word_id = -1 if resolved is None else resolved
                cache[token] = word_id
            if word_id >= 0:
                flat_ids.append(word_id)
                flat_owner.append(item_index)
    return (np.asarray(flat_ids, dtype=np.int64),
            np.asarray(flat_owner, dtype=np.int64),
            n_tokens)


def _enumerate_group(graph: "LeafGraph", word_ids: np.ndarray,
                     word_owner: np.ndarray, n_items: int,
                     dense_limit: int = DEFAULT_DENSE_LIMIT):
    """Fused Enumeration for a whole leaf group.

    One CSR gather expands every word's adjacency list, then candidate
    label ids are shifted by ``item_index * n_labels`` so a single
    ``np.bincount`` (or, beyond ``dense_limit``, one ``np.unique``)
    yields every item's candidate labels and duplication counts at once.

    Returns:
        ``(labels, counts, item_of)`` — flat arrays sorted by (item,
        label), exactly the per-item ordering ``np.unique`` produces in
        the scalar path.
    """
    empty = np.empty(0, dtype=np.int64)
    if len(word_ids) == 0:
        return empty, empty, empty
    indptr = graph.graph.indptr
    starts = indptr[word_ids]
    degrees = indptr[word_ids + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        return empty, empty, empty
    # Gather: positions of every adjacency entry in one index vector.
    offsets = np.cumsum(degrees) - degrees
    positions = (np.repeat(starts - offsets, degrees)
                 + np.arange(total, dtype=np.int64))
    candidates = graph.graph.indices[positions].astype(np.int64)
    owner = np.repeat(word_owner, degrees)

    n_labels = graph.n_labels
    keys = owner * n_labels + candidates
    if n_items * n_labels <= dense_limit:
        key_counts = np.bincount(keys)
        unique_keys = np.flatnonzero(key_counts)
        counts = key_counts[unique_keys]
    else:
        unique_keys, counts = np.unique(keys, return_counts=True)
    item_of = unique_keys // n_labels
    labels = unique_keys - item_of * n_labels
    return labels, counts.astype(np.int64), item_of


def _segments(sorted_item: np.ndarray):
    """Start/end offsets of each run of equal values in a sorted array."""
    new_segment = np.empty(len(sorted_item), dtype=bool)
    new_segment[0] = True
    new_segment[1:] = sorted_item[1:] != sorted_item[:-1]
    starts = np.flatnonzero(new_segment)
    return starts, np.append(starts[1:], len(sorted_item))


def _prune_group(labels: np.ndarray, counts: np.ndarray,
                 item_of: np.ndarray, n_items: int, k: int):
    """Segmented count-group pruning for every item at once.

    Matches :func:`repro.core.inference.prune_by_count_groups` per item:
    the k-th largest count of each item becomes its cutoff and whole
    threshold groups survive; items with ``<= k`` candidates keep all.
    """
    if len(labels) == 0:
        return labels, counts, item_of
    order = np.lexsort((-counts, item_of))
    sorted_item = item_of[order]
    starts, ends = _segments(sorted_item)
    # Each item's k-th largest count is its cutoff; items without a k-th
    # candidate keep everything (cutoff 0 is below any count).
    kth = starts + (k - 1)
    valid = kth < ends
    cutoffs = np.zeros(n_items, dtype=np.int64)
    cutoffs[sorted_item[starts[valid]]] = counts[order[kth[valid]]]
    mask = counts >= cutoffs[item_of]
    return labels[mask], counts[mask], item_of[mask]


class LeafBatchRunner:
    """Vectorized batch inference over leaf-grouped requests.

    The model's alignment function must be element-wise vectorized over
    its ``(c, label_len, title_len)`` arguments, as the built-in
    LTA/WMR/JAC are and the :data:`~repro.core.alignment.AlignmentFunction`
    contract requires: the engine scores a whole leaf group in one call
    and deduplicates rows by ``(label, c, |T|)``, so a callable that is
    scalar-only or couples scores across rows is not supported here (use
    the reference engine for such experiments).

    Args:
        model: The serving :class:`~repro.core.model.GraphExModel`.
        k: Target predictions per item (whole count-groups kept; ``k <= 0``
            yields no predictions, matching the scalar path's contract).
        hard_limit: Optional strict per-item cap applied after ranking
            (must be ``None`` or ``>= 0``).
        workers: Worker threads.  Unlike the reference path's contiguous
            request shards, sharding here is by *leaf group* — each worker
            owns whole groups so the vectorized ops never split.
        dense_limit: Max ``n_items * n_labels`` for the dense bincount in
            enumeration; larger groups use the np.unique fallback.

    Raises:
        ValueError: If ``hard_limit`` is negative, or the model's
            alignment function fails the vectorization probe.
    """

    def __init__(self, model: "GraphExModel", k: int = 10,
                 hard_limit: Optional[int] = None, workers: int = 1,
                 dense_limit: int = DEFAULT_DENSE_LIMIT) -> None:
        validate_hard_limit(hard_limit)
        if not _alignment_is_vectorized(model.alignment_fn):
            raise ValueError(
                "the model's alignment function is not element-wise "
                "vectorized over (c, label_len, title_len); the fast "
                "engine cannot guarantee equivalence — use "
                "engine='reference' for this model")
        self._model = model
        self._k = k
        self._hard_limit = hard_limit
        self._workers = max(1, workers)
        self._dense_limit = dense_limit

    def run(self, requests: Sequence[InferenceRequest]
            ) -> Dict[int, List[Recommendation]]:
        """Infer a whole batch, leaf group by leaf group.

        Returns:
            Item id → ranked recommendations, with the same
            duplicate-item-id semantics as the scalar loop (the last
            request for an id wins).
        """
        results = self.run_indexed(requests)
        out: Dict[int, List[Recommendation]] = {}
        for index, (item_id, _title, _leaf_id) in enumerate(requests):
            out[item_id] = results[index]
        return out

    def run_indexed(self, requests: Sequence[InferenceRequest]
                    ) -> List[List[Recommendation]]:
        """Infer a batch, returning per-request results in input order.

        Unlike :meth:`run`, duplicate item ids are *not* collapsed —
        the i-th output belongs to ``requests[i]``.  This is the unit a
        process-shard worker returns: the parent scatters shard outputs
        back by request index, which preserves the scalar loop's
        last-request-wins semantics even when duplicates of one item id
        land in different shards.
        """
        model = self._model
        results: List[Optional[List[Recommendation]]] = \
            [None] * len(requests)
        # Bucket request indices by the graph that will serve them.
        groups: Dict[int, Tuple["LeafGraph", List[int]]] = {}
        for index, (_item_id, _title, leaf_id) in enumerate(requests):
            graph = model.leaf_graph(leaf_id) or model.pooled_graph
            if graph is None:
                results[index] = []
                continue
            bucket = groups.get(id(graph))
            if bucket is None:
                groups[id(graph)] = (graph, [index])
            else:
                bucket[1].append(index)

        group_list = sorted(groups.values(), key=lambda g: -len(g[1]))

        def run_group(entry: Tuple["LeafGraph", List[int]]) -> None:
            graph, indices = entry
            titles = [model.tokenizer(requests[i][1]) for i in indices]
            for local, recs in enumerate(self._run_group(graph, titles)):
                results[indices[local]] = recs

        if self._workers == 1 or len(group_list) <= 1:
            for entry in group_list:
                run_group(entry)
        else:
            with ThreadPoolExecutor(max_workers=self._workers) as pool:
                list(pool.map(run_group, group_list))
        return results

    def _run_group(self, graph: "LeafGraph",
                   titles: Sequence[Sequence[str]]
                   ) -> List[List[Recommendation]]:
        """Run fused enumerate → prune → rank → materialise for one group."""
        n_items = len(titles)
        empties: List[List[Recommendation]] = [[] for _ in range(n_items)]
        if self._k <= 0:
            return empties
        word_ids, word_owner, n_tokens = _intern_group(graph, titles)
        labels, counts, item_of = _enumerate_group(
            graph, word_ids, word_owner, n_items, self._dense_limit)
        labels, counts, item_of = _prune_group(
            labels, counts, item_of, n_items, self._k)
        if len(labels) == 0:
            return empties

        alignment_fn = self._model.alignment_fn
        scores = alignment_fn(counts, graph.label_lengths[labels],
                              n_tokens[item_of])
        search = graph.search_counts[labels]
        recall = graph.recall_counts[labels]
        # One segmented lexsort; within an item the keys are the scalar
        # path's (score desc, S desc, R asc, label id asc).  The label-id
        # key is implicit: rows enter in (item, label) order and lexsort
        # is stable, so full ties stay label-ascending.
        order = np.lexsort((recall, -search, -scores, item_of))

        sorted_item = item_of[order]
        starts, ends = _segments(sorted_item)
        segment_items = sorted_item[starts].tolist()
        if self._hard_limit is not None:
            # Cap each segment *before* materialising; rows past the
            # per-item limit never reach the output.
            ends = np.minimum(ends, starts + self._hard_limit)
            lengths = ends - starts
            out_ends = np.cumsum(lengths)
            out_starts = out_ends - lengths
            keep = (np.repeat(starts - out_starts, lengths)
                    + np.arange(int(out_ends[-1]) if len(out_ends) else 0,
                                dtype=np.int64))
            order = order[keep]
            starts, ends = out_starts, out_ends

        # A row's value is fully determined by (label, c, |T|): text, S and
        # R come from the label and the score from alignment_fn(c, |l|,
        # |T|).  Recommendation is immutable, so rows repeated across
        # items (the common case — popular labels hit many titles) are
        # deduplicated and constructed once, then fanned out by index.
        ordered_labels = labels[order]
        ordered_counts = counts[order]
        ordered_titles = n_tokens[item_of[order]]
        c_base = int(ordered_counts.max()) + 1 if len(order) else 1
        t_base = int(ordered_titles.max()) + 1 if len(order) else 1
        key = ((ordered_labels * c_base + ordered_counts) * t_base
               + ordered_titles)
        _, rep, inverse = np.unique(key, return_index=True,
                                    return_inverse=True)
        originals = order[rep]
        unique_rows = list(map(Recommendation._make, zip(
            map(graph.label_texts.__getitem__, labels[originals].tolist()),
            scores[originals].tolist(), search[originals].tolist(),
            recall[originals].tolist(), counts[originals].tolist())))
        rows = list(map(unique_rows.__getitem__, inverse.tolist()))
        for item_index, start, end in zip(segment_items, starts.tolist(),
                                          ends.tolist()):
            empties[item_index] = rows[start:end]
        return empties


def fast_batch_recommend(model: "GraphExModel",
                         requests: Sequence[InferenceRequest],
                         k: int = 10,
                         hard_limit: Optional[int] = None,
                         workers: int = 1
                         ) -> Dict[int, List[Recommendation]]:
    """Convenience wrapper: one-shot :class:`LeafBatchRunner` run."""
    return LeafBatchRunner(model, k=k, hard_limit=hard_limit,
                           workers=workers).run(requests)
