"""The unified execution plane: one Executor abstraction, four substrates.

GraphEx runs the same shard-shaped work — leaf-group inference batches
and whole-leaf construction — on several execution substrates that grew
up independently: in-process thread sharding, the process pool, and the
multi-machine cluster runner.  This module collapses them behind one
:class:`Executor` interface so every layer (``batch_recommend``,
``GraphExModel.construct``, the serving stack, the CLI) routes through
a single dial instead of branching on ``parallel=`` strings:

===========  ===================  ==========================  ==========
name         class                where shards run            oracle?
===========  ===================  ==========================  ==========
``serial``   SerialExecutor       calling thread, one shard   yes
``thread``   ThreadShardExecutor  in-process thread pool      no
``process``  ProcessShardExecutor worker processes            no
``cluster``  ClusterExecutor      remote hosts over TCP       no
===========  ===================  ==========================  ==========

Every executor resolves from the legacy spellings via
:func:`resolve_executor` (``parallel="thread"/"process"`` and
``cluster=<coordinator>`` keep working), and all four are bound by the
same non-negotiable contract: **element-wise identical inference output
and bit-identical constructed models** for any substrate, any worker
count, and any failure topology — pinned by the cross-executor property
suite in ``tests/test_execution.py``.

The plane is also where cost telemetry lives.  Every executor records
per-shard wall-clock timings into its :class:`CostModel` — per-group
inference seconds and per-leaf construction seconds, folded as decaying
rates — and :meth:`ShardPlan.for_inference` /
:meth:`ShardPlan.for_construction` accept that model to LPT-balance on
*observed* costs instead of the request-count/char-count proxies.
Because a plan only changes *which shard* runs a work unit (outputs are
batch-composition independent), feeding any cost model in never changes
the served bytes — only the balance.  :func:`plan_rebalance_gain`
quantifies that balance win; the daily refresh orchestrator threads
yesterday's model into today's plan with it.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import shutil
import tempfile
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, Hashable, List, Optional,
                    Sequence, Tuple, Union)

from ..obs import MetricsRegistry, NullRegistry
from .batch import BatchResult, InferenceRequest
from .fast_construct import build_leaf_graph_fast, fast_construct_leaf_graphs
from .fast_inference import DEFAULT_DENSE_LIMIT, LeafBatchRunner
from .inference import Recommendation
from .sharding import (PARALLEL_MODES, ShardExecutionError, ShardPlan,
                       ShardWorkerError, _unwrap_shard_future)
from .tokenize import DEFAULT_TOKENIZER, TokenCache, Tokenizer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..cluster.coordinator import ClusterCoordinator
    from .curation import CuratedKeyphrases, CuratedLeaf
    from .model import GraphExModel, LeafGraph

__all__ = ["EXECUTOR_NAMES", "CostModel", "Executor", "SerialExecutor",
           "ThreadShardExecutor", "ProcessShardExecutor",
           "ClusterExecutor", "plan_rebalance_gain", "resolve_executor"]

#: Executor spellings accepted by :func:`resolve_executor` (and the CLI
#: ``--executor`` flag).  The legacy :data:`~repro.core.sharding.PARALLEL_MODES`
#: are a strict subset.
EXECUTOR_NAMES = ("serial", "thread", "process", "cluster")

#: Observed-cost plans quantize rates to integer microseconds so they
#: stay inside ShardPlan's strict int-cost wire format.
_COST_SCALE = 1_000_000


class CostModel:
    """Observed per-work-unit execution rates, fed back into planning.

    Every executor records each work unit's wall-clock seconds here —
    inference units are leaf groups (key = leaf id, units = requests
    served), construction units are whole leaves (key = leaf id, units
    = the char-count proxy).  Observations fold into a decaying rate
    (seconds per unit) per key, so yesterday's hot spots steer today's
    :class:`~repro.core.sharding.ShardPlan` balance while old readings
    fade.

    The model is a value object: :meth:`to_json` / :meth:`from_json`
    round-trip exactly (``RefreshReport`` / bench artifacts persist it
    across daily runs), :meth:`merge` decay-folds another day's model
    in, and a model with **no** observations for a kind leaves the
    proxy costs untouched — planning degrades gracefully to the
    request-count/char-count heuristics.

    Thread-safe: executors observe from shard worker threads.

    Args:
        decay: Weight retained by the *old* rate when a new observation
            (or merged model) folds in; ``0.7`` keeps roughly a week of
            daily history relevant.
    """

    KINDS = ("inference", "construction")

    def __init__(self, decay: float = 0.7) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self._decay = decay
        self._lock = threading.Lock()
        self._rates: Dict[str, Dict[Hashable, float]] = \
            {kind: {} for kind in self.KINDS}
        self._counts: Dict[str, Dict[Hashable, int]] = \
            {kind: {} for kind in self.KINDS}

    @property
    def decay(self) -> float:
        """Old-rate weight per folded observation."""
        return self._decay

    def observe(self, kind: str, key: Hashable, seconds: float,
                units: int = 1) -> None:
        """Fold one wall-clock measurement into the key's rate."""
        if kind not in self.KINDS:
            raise ValueError(f"unknown cost kind {kind!r}; expected one "
                             f"of {self.KINDS}")
        rate = max(0.0, float(seconds)) / max(1, int(units))
        with self._lock:
            old = self._rates[kind].get(key)
            if old is None:
                self._rates[kind][key] = rate
                self._counts[kind][key] = 1
            else:
                self._rates[kind][key] = (self._decay * old
                                          + (1.0 - self._decay) * rate)
                self._counts[kind][key] += 1

    def observe_inference(self, key: Hashable, seconds: float,
                          units: int = 1) -> None:
        """One leaf group served ``units`` requests in ``seconds``."""
        self.observe("inference", key, seconds, units)

    def observe_construction(self, key: Hashable, seconds: float,
                             units: int = 1) -> None:
        """One leaf (char proxy ``units``) built in ``seconds``."""
        self.observe("construction", key, seconds, units)

    def n_observations(self, kind: Optional[str] = None) -> int:
        """Observations folded in (for one kind, or in total)."""
        with self._lock:
            kinds = self.KINDS if kind is None else (kind,)
            return sum(sum(self._counts[k].values()) for k in kinds)

    def has_observations(self, kind: str) -> bool:
        """Whether any rate exists for ``kind`` (else proxies rule)."""
        with self._lock:
            return bool(self._rates[kind])

    def merge(self, other: "CostModel") -> None:
        """Decay-fold another model's rates into this one.

        The daily hand-off primitive: today's freshly recorded model
        merges into the orchestrator's running one.  A key present only
        on one side is copied; a key present on both folds as a
        count-weighted mean with this model's history decayed once —
        so repeated daily merges geometrically age out stale readings.
        """
        with other._lock:
            snapshot = {
                kind: (dict(other._rates[kind]), dict(other._counts[kind]))
                for kind in self.KINDS}
        with self._lock:
            for kind, (rates, counts) in snapshot.items():
                for key, rate in rates.items():
                    count = counts[key]
                    mine = self._rates[kind].get(key)
                    if mine is None:
                        self._rates[kind][key] = rate
                        self._counts[kind][key] = count
                    else:
                        old_weight = self._counts[kind][key] * self._decay
                        total = old_weight + count
                        self._rates[kind][key] = \
                            (mine * old_weight + rate * count) / total
                        self._counts[kind][key] += count

    def costs(self, kind: str,
              proxy: Sequence[Tuple[Hashable, int]]
              ) -> List[Tuple[Hashable, int]]:
        """Re-cost a proxy list with observed rates (or pass it through).

        With no observation for ``kind`` the proxy is returned
        unchanged.  Otherwise every key's cost becomes
        ``rate * proxy_units`` in integer microseconds (floored at 1,
        so a planned key never becomes free); an unobserved key uses
        the mean observed rate, keeping it commensurate with observed
        neighbours instead of comparing microseconds to raw counts.
        """
        if kind not in self.KINDS:
            raise ValueError(f"unknown cost kind {kind!r}; expected one "
                             f"of {self.KINDS}")
        with self._lock:
            rates = dict(self._rates[kind])
        if not rates:
            return list(proxy)
        default = sum(rates.values()) / len(rates)
        return [(key,
                 max(1, round(rates.get(key, default)
                              * max(1, units) * _COST_SCALE)))
                for key, units in proxy]

    def inference_costs(self, proxy: Sequence[Tuple[Hashable, int]]
                        ) -> List[Tuple[Hashable, int]]:
        """:meth:`costs` for inference plans (ShardPlan hook)."""
        return self.costs("inference", proxy)

    def construction_costs(self, proxy: Sequence[Tuple[Hashable, int]]
                           ) -> List[Tuple[Hashable, int]]:
        """:meth:`costs` for construction plans (ShardPlan hook)."""
        return self.costs("construction", proxy)

    def to_json(self) -> str:
        """Serialize for the daily round-trip (exact; see from_json)."""
        with self._lock:
            return json.dumps({
                "decay": self._decay,
                **{kind: {str(key): [self._rates[kind][key],
                                      self._counts[kind][key]]
                          for key in self._rates[kind]}
                   for kind in self.KINDS}})

    @classmethod
    def from_json(cls, payload: str) -> "CostModel":
        """Reconstruct a model serialized with :meth:`to_json`.

        Rates round-trip bit-exactly (json float repr), so a restored
        model plans the same shards the recording run would have.
        """
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"cost model payload is not JSON: {exc}") \
                from None
        if not isinstance(data, dict) or "decay" not in data:
            raise ValueError(
                "cost model payload must be an object with 'decay'")
        model = cls(decay=float(data["decay"]))
        for kind in cls.KINDS:
            for raw_key, entry in dict(data.get(kind, {})).items():
                if not isinstance(entry, list) or len(entry) != 2:
                    raise ValueError(
                        f"cost model {kind} entry {raw_key!r} must be a "
                        f"[rate, count] pair, got {entry!r}")
                try:
                    key: Hashable = int(raw_key)
                except ValueError:
                    key = raw_key
                model._rates[kind][key] = float(entry[0])
                model._counts[kind][key] = int(entry[1])
        return model

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CostModel):
            return NotImplemented
        return (self._decay == other._decay
                and self._rates == other._rates
                and self._counts == other._counts)

    def __repr__(self) -> str:
        return (f"CostModel(decay={self._decay}, "
                f"n_observations={self.n_observations()})")


def plan_rebalance_gain(cost_model: Optional[CostModel],
                        proxy: Sequence[Tuple[Hashable, int]],
                        n_shards: int,
                        kind: str = "construction") -> Optional[float]:
    """Makespan ratio of the proxy plan over the observed-cost plan.

    Both plans are *evaluated* under the observed costs (the best
    estimate of reality): ``gain > 1`` means balancing on observations
    shrank the critical-path shard by that factor versus the
    request-count/char-count proxy.  Returns ``None`` when there is
    nothing to compare — no cost model, no observations for ``kind``,
    or fewer than two shards/keys.
    """
    if cost_model is None or not cost_model.has_observations(kind):
        return None
    if n_shards < 2 or len(proxy) < 2:
        return None
    observed = dict(cost_model.costs(kind, proxy))
    proxy_plan = ShardPlan.balance(proxy, n_shards)
    observed_plan = ShardPlan.balance(
        [(key, observed[key]) for key, _units in proxy], n_shards)
    proxy_makespan = max(sum(observed[key] for key in shard)
                         for shard in proxy_plan.shards)
    observed_makespan = max(observed_plan.shard_costs)
    if observed_makespan <= 0:
        return None
    return proxy_makespan / observed_makespan


# ---------------------------------------------------------------------------
# The Executor interface


class Executor:
    """One execution substrate for shard-shaped GraphEx work.

    Subclasses implement :meth:`run_inference` (leaf-group shards of a
    request batch) and :meth:`run_construction` (whole-leaf shards of a
    curated corpus) and record per-shard wall-clock timings into
    :attr:`cost_model`.  All substrates are output-equivalent — the
    bit-identity contract in the module docstring — so callers choose
    purely on capacity.

    Attributes:
        name: The :data:`EXECUTOR_NAMES` spelling this class answers to.
        supports_reference: Whether the scalar ``reference``
            engine/builder may pair with this executor.  Only the
            in-process substrates do — the scalar paths stay
            single-process as the semantics oracle.
        cost_model: Where this executor's shard timings accumulate.
        metrics: The :class:`~repro.obs.MetricsRegistry` this executor
            records into; a :class:`~repro.obs.NullRegistry` (telemetry
            off) by default.  Every timed shard feeds the registry and
            the cost model from the *same* clock reading via
            :meth:`record_timing`.
    """

    name: str = "abstract"
    supports_reference: bool = False

    def __init__(self, *, cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.cost_model = cost_model if cost_model is not None \
            else CostModel()
        self.metrics = metrics if metrics is not None else NullRegistry()

    def record_timing(self, kind: str,
                      keyed_units: Sequence[Tuple[Hashable, int]],
                      elapsed: float) -> None:
        """Feed one timed span of shard work into both telemetry sinks.

        The single chokepoint for executor timings: ``elapsed`` is
        spread pro rata over the keys into :attr:`cost_model` (the
        planner's decaying rates) and recorded whole into
        :attr:`metrics` — one ``perf_counter`` interval, two views,
        so the cost model and the operator dashboards can never
        disagree about what was measured.
        """
        _observe_spread(self.cost_model, kind, keyed_units, elapsed)
        metrics = self.metrics
        metrics.inc(f"executor.{kind}.tasks", executor=self.name)
        if kind == "inference":
            metrics.inc("executor.inference.requests",
                        sum(units for _key, units in keyed_units),
                        executor=self.name)
        else:
            metrics.inc("executor.construction.leaves",
                        len(keyed_units), executor=self.name)
        metrics.observe(f"executor.{kind}.seconds", elapsed,
                        executor=self.name)

    def record_plan(self, kind: str, plan: ShardPlan) -> None:
        """Gauge a plan's balance (see ShardPlan.balance_stats)."""
        stats = plan.balance_stats()
        self.metrics.gauge("executor.plan.n_shards",
                           stats["n_shards"], kind=kind,
                           executor=self.name)
        self.metrics.gauge("executor.plan.imbalance",
                           stats["imbalance"], kind=kind,
                           executor=self.name)

    def run_inference(self, model: "GraphExModel",
                      requests: Sequence[InferenceRequest],
                      k: int = 10, hard_limit: Optional[int] = None,
                      dense_limit: int = DEFAULT_DENSE_LIMIT
                      ) -> BatchResult:
        """Infer a batch; item id → ranked recommendations with the
        scalar loop's last-request-wins duplicate semantics."""
        raise NotImplementedError

    def run_construction(self, curated: "CuratedKeyphrases",
                         tokenizer: Tokenizer = DEFAULT_TOKENIZER
                         ) -> Tuple[Dict[int, "LeafGraph"], TokenCache]:
        """Build every non-empty leaf graph; same ``(graphs, cache)``
        contract as
        :func:`~repro.core.fast_construct.fast_construct_leaf_graphs`."""
        raise NotImplementedError

    def close(self) -> None:
        """Release owned resources (no-op for in-process executors)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _observe_spread(cost_model: CostModel, kind: str,
                    keyed_units: Sequence[Tuple[Hashable, int]],
                    elapsed: float) -> None:
    """Distribute one shard's elapsed seconds over its keys, pro rata
    by each key's unit count (the best attribution available when the
    substrate timed the shard as a whole)."""
    total = sum(units for _key, units in keyed_units)
    for key, units in keyed_units:
        share = elapsed * units / total if total else 0.0
        cost_model.observe(kind, key, share, units)


class ThreadShardExecutor(Executor):
    """In-process thread sharding (the default substrate).

    Absorbs the thread fan-out that used to live inside
    ``LeafBatchRunner(workers=...)`` / ``fast_construct_leaf_graphs``:
    leaf groups (inference) and whole leaves (construction) are
    LPT-planned via :class:`~repro.core.sharding.ShardPlan` — observed
    costs included — and each planned shard runs on a pool thread.
    With one worker (or one shard) the work runs inline on the calling
    thread, timing included.

    Args:
        workers: Upper bound on threads (and shards planned).
        cost_model: Shared cost model; a private one by default.
    """

    name = "thread"
    supports_reference = True

    def __init__(self, workers: int = 1, *,
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        super().__init__(cost_model=cost_model, metrics=metrics)
        self.workers = max(1, int(workers))

    def run_inference(self, model: "GraphExModel",
                      requests: Sequence[InferenceRequest],
                      k: int = 10, hard_limit: Optional[int] = None,
                      dense_limit: int = DEFAULT_DENSE_LIMIT
                      ) -> BatchResult:
        requests = list(requests)
        runner = LeafBatchRunner(model, k=k, hard_limit=hard_limit,
                                 dense_limit=dense_limit)
        plan, groups = ShardPlan.for_inference(
            model, requests, self.workers, cost_model=self.cost_model)
        self.record_plan("inference", plan)
        results: List[List[Recommendation]] = [[] for _ in requests]

        def run_shard(shard: Sequence[Hashable]) -> None:
            for key in shard:
                indices = groups[key]
                start = time.perf_counter()
                for index, recs in zip(indices, runner.run_indexed(
                        [requests[index] for index in indices])):
                    results[index] = recs
                self.record_timing("inference", [(key, len(indices))],
                                   time.perf_counter() - start)

        if self.workers == 1 or plan.n_shards <= 1:
            for shard in plan.shards:
                run_shard(shard)
        else:
            with ThreadPoolExecutor(max_workers=plan.n_shards) as pool:
                list(pool.map(run_shard, plan.shards))
        out: BatchResult = {}
        for index, (item_id, _title, _leaf_id) in enumerate(requests):
            out[item_id] = results[index]
        return out

    def run_construction(self, curated: "CuratedKeyphrases",
                         tokenizer: Tokenizer = DEFAULT_TOKENIZER
                         ) -> Tuple[Dict[int, "LeafGraph"], TokenCache]:
        cache = TokenCache(tokenizer)
        items = [(leaf_id, leaf) for leaf_id, leaf in
                 curated.leaves.items() if len(leaf) > 0]
        plan = ShardPlan.for_construction(curated, self.workers,
                                          cost_model=self.cost_model)
        self.record_plan("construction", plan)
        by_id = dict(items)
        built: Dict[int, "LeafGraph"] = {}

        def run_shard(shard: Sequence[Hashable]) -> None:
            for leaf_id in shard:
                leaf = by_id[leaf_id]
                start = time.perf_counter()
                built[leaf_id] = build_leaf_graph_fast(leaf, cache)
                self.record_timing(
                    "construction",
                    [(leaf_id, sum(map(len, leaf.texts)) + 1)],
                    time.perf_counter() - start)

        if self.workers == 1 or plan.n_shards <= 1:
            for shard in plan.shards:
                run_shard(shard)
        else:
            # The shared TokenCache is safe across shard threads, and
            # the built graphs are insensitive to pool id assignment
            # order — the pinned bit-identity contract.
            with ThreadPoolExecutor(max_workers=plan.n_shards) as pool:
                list(pool.map(run_shard, plan.shards))
        return {leaf_id: built[leaf_id] for leaf_id, _leaf in items}, cache


class SerialExecutor(ThreadShardExecutor):
    """The oracle substrate: one shard, calling thread, no pools.

    Identical code path to :class:`ThreadShardExecutor` with
    ``workers=1`` — everything runs inline — which is exactly what
    makes it the reference the cross-executor property suite compares
    the parallel substrates against.
    """

    name = "serial"

    def __init__(self, *, cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        super().__init__(workers=1, cost_model=cost_model,
                         metrics=metrics)


# ---------------------------------------------------------------------------
# Worker-process entry points.  Module-level (picklable by reference) and
# parameterised through per-process globals set by the pool initializer,
# so the model/tokenizer is shipped once per worker, not once per task.

_INFERENCE_RUNNER: Optional[LeafBatchRunner] = None
_CONSTRUCT_TOKENIZER: Optional[Tokenizer] = None


def _init_inference_worker(model: "GraphExModel", k: int,
                           hard_limit: Optional[int],
                           dense_limit: int) -> None:
    """Build this worker's runner once; its shards reuse it."""
    global _INFERENCE_RUNNER
    _INFERENCE_RUNNER = LeafBatchRunner(model, k=k, hard_limit=hard_limit,
                                        dense_limit=dense_limit)


def _run_inference_shard(requests: Sequence[InferenceRequest]
                         ) -> Tuple[List[List[Recommendation]], float]:
    """One inference shard: per-request results in shard order, plus the
    worker-side wall-clock seconds the shard took (measured here so the
    cost model never counts pool start-up or queueing).

    Failures come back as :class:`ShardWorkerError` carrying the full
    worker-side traceback — a raw exception would lose it (or, when
    unpicklable, collapse into a bare ``BrokenProcessPool``).
    """
    try:
        start = time.perf_counter()
        rows = _INFERENCE_RUNNER.run_indexed(requests)
        return rows, time.perf_counter() - start
    except Exception:
        raise ShardWorkerError(traceback.format_exc()) from None


def _init_construct_worker(tokenizer: Tokenizer) -> None:
    global _CONSTRUCT_TOKENIZER
    _CONSTRUCT_TOKENIZER = tokenizer


def _build_construct_shard(leaves: Sequence["CuratedLeaf"],
                           artifact_dir: str):
    """One construction shard: graphs land on disk, not in a pickle.

    The built leaf graphs are written as a zero-copy format-3 *leaf
    bundle* (:func:`repro.core.serialization.save_leaf_graphs` — raw
    page-aligned arrays plus one string blob); only the shard's token
    pool state and per-leaf build timings cross the process boundary as
    a pickle.  The parent opens the bundle with ``mmap=True``, so the
    graphs are never serialized object-by-object — the pickle return
    path used to *dominate* process construction (0.52x vs the thread
    path at 2 workers on small worlds).

    The per-shard :class:`TokenCache` keeps the memoized-tokenization
    win within the shard; its exported state is merged into the parent
    cache afterwards so the pooled-graph build still skips every text
    the shards already processed.

    Returns:
        ``(token_state, timings)`` — the exported cache state and
        ``(leaf_id, seconds)`` per built leaf for the cost model.
    """
    from .serialization import save_leaf_graphs

    try:
        cache = TokenCache(_CONSTRUCT_TOKENIZER)
        graphs = []
        timings: List[Tuple[int, float]] = []
        for leaf in leaves:
            start = time.perf_counter()
            graphs.append(build_leaf_graph_fast(leaf, cache))
            timings.append((leaf.leaf_id,
                            time.perf_counter() - start))
        save_leaf_graphs(graphs, artifact_dir)
        return cache.export_state(), timings
    except Exception:
        # A half-written bundle must not outlive the failure: the parent
        # only removes the staging root it knows about, and a retrying
        # caller would otherwise mmap stale arrays from this attempt.
        shutil.rmtree(artifact_dir, ignore_errors=True)
        raise ShardWorkerError(traceback.format_exc()) from None


class ProcessShardExecutor(Executor):
    """Runs fast-engine shards in worker processes.

    Args:
        workers: Upper bound on worker processes (and shards planned).
            With one worker, or one shard after planning, work runs in
            the calling process — same output, no pool overhead.
        start_method: Optional multiprocessing start method ("fork",
            "spawn", "forkserver"); None uses the platform default.
        cost_model: Shared cost model; a private one by default.

    Output is element-wise/bit-identical to the single-process fast
    paths for any worker count (see the module docstring for why).
    """

    name = "process"

    def __init__(self, workers: int = 2,
                 start_method: Optional[str] = None, *,
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        super().__init__(cost_model=cost_model, metrics=metrics)
        self._workers = max(1, int(workers))
        self._start_method = start_method

    @property
    def workers(self) -> int:
        """Upper bound on worker processes."""
        return self._workers

    def _pool(self, n_shards: int, initializer, initargs
              ) -> ProcessPoolExecutor:
        context = (multiprocessing.get_context(self._start_method)
                   if self._start_method is not None else None)
        return ProcessPoolExecutor(max_workers=n_shards,
                                   mp_context=context,
                                   initializer=initializer,
                                   initargs=initargs)

    def plan_inference(self, model: "GraphExModel",
                       requests: Sequence[InferenceRequest]
                       ) -> Tuple[ShardPlan, Dict[int, List[int]]]:
        """Group servable requests by leaf graph and balance the groups.

        Mirrors ``LeafBatchRunner``'s grouping: a request is keyed by
        its leaf id when that leaf has a graph, by the pooled
        pseudo-leaf when it falls back to the pooled graph, and is
        excluded (its result is ``[]``) when neither exists.  Costs are
        the executor's observed rates when it has any, else the group
        request counts.

        Returns:
            ``(plan, groups)`` — the balanced plan over group keys, and
            each group's request indices in batch order.
        """
        return ShardPlan.for_inference(model, requests, self._workers,
                                       cost_model=self.cost_model)

    def run_inference(self, model: "GraphExModel",
                      requests: Sequence[InferenceRequest],
                      k: int = 10, hard_limit: Optional[int] = None,
                      dense_limit: int = DEFAULT_DENSE_LIMIT
                      ) -> BatchResult:
        """Infer a batch with leaf-group shards in worker processes.

        Returns:
            Item id → ranked recommendations, with the scalar loop's
            duplicate-id semantics (the last request for an id wins)
            even when the duplicates land in different shards.
        """
        requests = list(requests)
        # Constructing the local runner validates hard_limit and the
        # alignment probe up front, and serves the no-pool fallback.
        runner = LeafBatchRunner(model, k=k, hard_limit=hard_limit,
                                 dense_limit=dense_limit)
        plan, groups = self.plan_inference(model, requests)
        self.record_plan("inference", plan)
        results: List[List[Recommendation]] = [[] for _ in requests]
        if self._workers == 1 or plan.n_shards <= 1:
            for shard in plan.shards:
                for key in shard:
                    indices = groups[key]
                    start = time.perf_counter()
                    for index, recs in zip(indices, runner.run_indexed(
                            [requests[index] for index in indices])):
                        results[index] = recs
                    self.record_timing(
                        "inference", [(key, len(indices))],
                        time.perf_counter() - start)
        else:
            shards = [[index for key in shard for index in groups[key]]
                      for shard in plan.shards]
            with self._pool(len(shards), _init_inference_worker,
                            (model, k, hard_limit, dense_limit)) as pool:
                futures = [pool.submit(_run_inference_shard,
                                       [requests[index]
                                        for index in shard])
                           for shard in shards]
                for shard_index, (shard, future) in enumerate(
                        zip(shards, futures)):
                    shard_results, elapsed = _unwrap_shard_future(
                        future, "inference", shard_index,
                        plan.shards[shard_index])
                    for index, recs in zip(shard, shard_results):
                        results[index] = recs
                    self.record_timing(
                        "inference",
                        [(key, len(groups[key]))
                         for key in plan.shards[shard_index]], elapsed)
        out: BatchResult = {}
        for index, (item_id, _title, _leaf_id) in enumerate(requests):
            out[item_id] = results[index]
        return out

    def run_construction(self, curated: "CuratedKeyphrases",
                         tokenizer: Tokenizer = DEFAULT_TOKENIZER
                         ) -> Tuple[Dict[int, "LeafGraph"], TokenCache]:
        """Build every non-empty leaf graph with whole-leaf process shards.

        The cost estimate is each leaf's observed build rate when the
        cost model has one, else its summed keyphrase character count —
        proportional to token occurrences, hence to the edge pairs the
        build pass walks — without paying a tokenization pass in the
        parent.  Shard states merge into the returned cache in
        shard-index order (deterministic pool, reused by the
        pooled-graph build exactly as in the thread path).

        Return path: each worker persists its built graphs as a
        format-3 leaf bundle under a temporary directory and the
        parent opens every bundle *zero-copy*
        (:func:`~repro.core.serialization.load_leaf_graphs` with
        ``mmap=True``) instead of unpickling graph objects.  The
        returned graphs' arrays are read-only views over the bundle
        mappings; the temporary files are unlinked before returning
        (live mappings keep them readable — POSIX), so nothing leaks.
        The graphs are element-wise/string-identical to the thread
        path's, as the equivalence suites pin.

        Returns:
            ``(leaf_graphs, cache)`` with the same contract as
            :func:`~repro.core.fast_construct.fast_construct_leaf_graphs`.
        """
        from .serialization import load_leaf_graphs

        items = [(leaf_id, leaf) for leaf_id, leaf in
                 curated.leaves.items() if len(leaf) > 0]
        if self._workers == 1 or len(items) <= 1:
            # Delegate so the in-parent fallback can never drift from
            # the thread path's contracts (empty-leaf filter, insertion
            # order); the whole build is timed and spread pro rata.
            start = time.perf_counter()
            graphs, cache = fast_construct_leaf_graphs(curated, tokenizer)
            self.record_timing(
                "construction",
                [(leaf_id, sum(map(len, leaf.texts)) + 1)
                 for leaf_id, leaf in items],
                time.perf_counter() - start)
            return graphs, cache

        cache = TokenCache(tokenizer)
        plan = ShardPlan.for_construction(curated, self._workers,
                                          cost_model=self.cost_model)
        self.record_plan("construction", plan)
        by_id = dict(items)
        shards = [[by_id[leaf_id] for leaf_id in shard]
                  for shard in plan.shards]
        built: Dict[int, "LeafGraph"] = {}
        staging = Path(tempfile.mkdtemp(prefix="graphex-shard-"))
        try:
            with self._pool(len(shards), _init_construct_worker,
                            (tokenizer,)) as pool:
                futures = [
                    pool.submit(_build_construct_shard, shard,
                                str(staging / f"shard-{index}"))
                    for index, shard in enumerate(shards)]
                for index, future in enumerate(futures):
                    state, timings = _unwrap_shard_future(
                        future, "construction", index,
                        plan.shards[index])
                    cache.absorb_state(state)
                    for leaf_id, seconds in timings:
                        self.record_timing(
                            "construction",
                            [(leaf_id,
                              sum(map(len, by_id[leaf_id].texts)) + 1)],
                            seconds)
                    for graph in load_leaf_graphs(
                            staging / f"shard-{index}", mmap=True):
                        built[graph.leaf_id] = graph
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return {leaf_id: built[leaf_id] for leaf_id, _leaf in items}, cache


class ClusterExecutor(Executor):
    """The multi-machine substrate: shards run on remote hosts.

    Wraps a *started*
    :class:`~repro.cluster.coordinator.ClusterCoordinator` — fleet
    management, per-RPC deadlines, retries, dead-host re-planning and
    exactly-once merging all live there; this class adapts it to the
    synchronous :class:`Executor` interface and threads the cost model
    into the coordinator's plans.

    The sync :meth:`run_inference` / :meth:`run_construction` submit to
    the coordinator's event loop and block the *calling* thread, so
    they must not be called from that loop — code already running on
    it awaits :meth:`run_inference_async` /
    :meth:`run_construction_async` instead.

    Args:
        coordinator: A started coordinator (its loop must be running).
        distribute: Model hand-off for inference jobs — ``"path"``
            (shared filesystem / localhost) or ``"stream"`` (spool the
            artifact over each worker's connection).
        cost_model: Shared cost model; a private one by default.

    Use :meth:`local` for a self-contained fleet (own loop thread plus
    N in-process workers) when no external cluster is running —
    :meth:`close` tears that fleet down; an adopted coordinator is
    never stopped by this class.
    """

    name = "cluster"

    def __init__(self, coordinator: "ClusterCoordinator", *,
                 distribute: str = "path",
                 cost_model: Optional[CostModel] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        super().__init__(cost_model=cost_model, metrics=metrics)
        self.coordinator = coordinator
        self._distribute = distribute
        self._owned: Optional[tuple] = None

    @classmethod
    def local(cls, workers: int = 2, *,
              distribute: str = "path",
              cost_model: Optional[CostModel] = None,
              metrics: Optional[MetricsRegistry] = None,
              retry=None, rpc_timeout: float = 30.0,
              start_timeout: float = 60.0) -> "ClusterExecutor":
        """Boot a self-contained localhost fleet and wrap it.

        Spins a daemon thread running a private event loop, starts a
        coordinator plus ``workers`` in-process
        :class:`~repro.cluster.worker.ClusterWorker` hosts on it, and
        returns the executor once every host has registered.  The CLI's
        ``--executor cluster`` backend.  :meth:`close` (or the context
        manager) stops the fleet and joins the loop thread.
        """
        from ..cluster.coordinator import ClusterCoordinator
        from ..cluster.worker import ClusterWorker

        workers = max(1, int(workers))
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever,
                                  name="graphex-cluster-loop",
                                  daemon=True)
        thread.start()

        async def boot():
            coordinator = ClusterCoordinator(retry=retry,
                                             rpc_timeout=rpc_timeout)
            await coordinator.start()
            tasks = []
            for index in range(workers):
                worker = ClusterWorker(coordinator.host,
                                       coordinator.port,
                                       name=f"local-{index}")
                tasks.append(asyncio.ensure_future(worker.run()))
            await coordinator.wait_for_workers(workers,
                                               timeout=start_timeout)
            return coordinator, tasks

        try:
            coordinator, tasks = asyncio.run_coroutine_threadsafe(
                boot(), loop).result(timeout=start_timeout)
        except BaseException:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
            loop.close()
            raise
        executor = cls(coordinator, distribute=distribute,
                       cost_model=cost_model, metrics=metrics)
        executor._owned = (loop, thread, tasks)
        return executor

    def _submit(self, coro):
        """Run a coordinator coroutine from this (non-loop) thread."""
        loop = self.coordinator.loop
        if loop is None:
            coro.close()
            raise RuntimeError(
                "ClusterExecutor needs a started coordinator (its "
                "event loop is not running)")
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is loop:
            coro.close()
            raise RuntimeError(
                "ClusterExecutor cannot block the coordinator's own "
                "event loop; await run_inference_async / "
                "run_construction_async instead")
        return asyncio.run_coroutine_threadsafe(coro, loop).result()

    async def run_inference_async(
            self, model: "GraphExModel",
            requests: Sequence[InferenceRequest],
            k: int = 10, hard_limit: Optional[int] = None,
            dense_limit: int = DEFAULT_DENSE_LIMIT) -> BatchResult:
        """:meth:`run_inference` for callers on the coordinator loop."""
        return await self.coordinator.run_inference(
            model, list(requests), k=k, hard_limit=hard_limit,
            dense_limit=dense_limit, distribute=self._distribute,
            cost_model=self.cost_model, metrics=self.metrics)

    async def run_construction_async(
            self, curated: "CuratedKeyphrases",
            tokenizer: Tokenizer = DEFAULT_TOKENIZER
            ) -> Tuple[Dict[int, "LeafGraph"], TokenCache]:
        """:meth:`run_construction` for callers on the coordinator loop."""
        return await self.coordinator.run_construction(
            curated, tokenizer, cost_model=self.cost_model,
            metrics=self.metrics)

    def run_inference(self, model: "GraphExModel",
                      requests: Sequence[InferenceRequest],
                      k: int = 10, hard_limit: Optional[int] = None,
                      dense_limit: int = DEFAULT_DENSE_LIMIT
                      ) -> BatchResult:
        return self._submit(self.run_inference_async(
            model, requests, k=k, hard_limit=hard_limit,
            dense_limit=dense_limit))

    def run_construction(self, curated: "CuratedKeyphrases",
                         tokenizer: Tokenizer = DEFAULT_TOKENIZER
                         ) -> Tuple[Dict[int, "LeafGraph"], TokenCache]:
        return self._submit(self.run_construction_async(curated,
                                                        tokenizer))

    def close(self) -> None:
        """Tear down a :meth:`local` fleet (no-op for adopted ones)."""
        owned, self._owned = self._owned, None
        if owned is None:
            return
        loop, thread, tasks = owned

        async def shutdown():
            await self.coordinator.stop()
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(shutdown(),
                                         loop).result(timeout=30.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        loop.close()


# ---------------------------------------------------------------------------
# The resolver: legacy spellings, new spellings, and instances all land
# on an Executor — the only place the `parallel` strings are interpreted.

_EXECUTOR_CLASSES = {
    "serial": SerialExecutor,
    "thread": ThreadShardExecutor,
    "process": ProcessShardExecutor,
}


def resolve_executor(executor: Union[Executor, str, None] = None, *,
                     parallel: Optional[str] = None,
                     workers: int = 1,
                     cluster: Optional["ClusterCoordinator"] = None,
                     cost_model: Optional[CostModel] = None,
                     metrics: Optional[MetricsRegistry] = None,
                     engine: Optional[str] = None) -> Executor:
    """Resolve any accepted spelling to an :class:`Executor` instance.

    The single entry point behind every ``executor=`` keyword (and the
    back-compat shim behind every legacy ``parallel=``/``cluster=``
    one):

    * an :class:`Executor` instance passes through unchanged (it keeps
      its own workers, cost model, and metrics registry);
    * ``"serial"`` / ``"thread"`` / ``"process"`` build the matching
      class with ``workers``, ``cost_model``, and ``metrics``;
    * ``"cluster"`` wraps the supplied ``cluster`` coordinator (one is
      required — a fleet cannot be conjured from a string);
    * ``None`` falls back to the legacy ``parallel`` spelling, then to
      a ``cluster`` coordinator if one was passed, then to
      ``"thread"`` — exactly the old default.

    ``engine`` (an engine *or* builder name) enforces the oracle
    pairing rule: the scalar ``reference`` paths stay single-process,
    so only executors with :attr:`Executor.supports_reference` may
    serve them.

    Raises:
        ValueError: On an unknown spelling, ``executor=`` combined
            with ``parallel=``, ``"cluster"`` without a coordinator,
            or a reference engine/builder paired with an out-of-process
            executor.
    """
    if executor is not None and parallel is not None:
        raise ValueError(
            f"pass either executor={executor!r} or the legacy "
            f"parallel={parallel!r}, not both")
    spec: Union[Executor, str, None] = executor
    if spec is None:
        spec = parallel
    if spec is None and cluster is not None:
        spec = "cluster"
    if spec is None:
        spec = "thread"

    if isinstance(spec, Executor):
        resolved = spec
    elif isinstance(spec, str):
        if spec not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown parallel mode {spec!r}; expected an Executor "
                f"instance or one of {EXECUTOR_NAMES} (legacy spellings "
                f"{PARALLEL_MODES} included)")
        if spec == "cluster":
            if cluster is None:
                raise ValueError(
                    "executor='cluster' needs a started "
                    "ClusterCoordinator: pass cluster=<coordinator>, "
                    "an existing ClusterExecutor instance, or use "
                    "ClusterExecutor.local()")
            resolved = ClusterExecutor(cluster, cost_model=cost_model,
                                       metrics=metrics)
        else:
            resolved = _EXECUTOR_CLASSES[spec](
                workers, cost_model=cost_model, metrics=metrics) \
                if spec != "serial" \
                else SerialExecutor(cost_model=cost_model,
                                    metrics=metrics)
    else:
        raise ValueError(
            f"unknown parallel mode {spec!r}; expected an Executor "
            f"instance or one of {EXECUTOR_NAMES}")

    if engine is not None and engine != "fast" \
            and not resolved.supports_reference:
        raise ValueError(
            f"executor {resolved.name!r} requires the fast "
            f"engine/builder; the {engine!r} path stays single-process "
            f"as the semantics reference")
    return resolved
