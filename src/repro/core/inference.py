"""GraphEx inference: the Enumeration and Ranking steps (Algorithm 1).

Enumeration maps the (de-duplicated) title tokens through the leaf's
bipartite graph, gathering candidate labels; the duplication count ``c``
of a label equals ``|T ∩ l|``, the number of title tokens it shares.  The
implementation uses the paper's count-array optimisation: candidates are
counted with a vectorized unique-count, then *whole count-groups* are
pruned so the number of survivors is at least the requested prediction
count ("groups with larger redundancy counts are preferred, and all
keyphrases in the threshold group are included even if the group size
exceeds the number of required predictions", Section III-F).

Ranking sorts by alignment score (LTA by default) with ties broken by
higher Search Count, then lower Recall Count (Section III-E2), then label
id for full determinism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, NamedTuple, Optional, Sequence

import numpy as np

from .alignment import AlignmentFunction, lta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .model import LeafGraph


class Recommendation(NamedTuple):
    """One recommended keyphrase with its ranking attributes.

    A NamedTuple (not a frozen dataclass) because batch inference
    materialises hundreds of thousands of these per run and tuple
    construction is several times cheaper; it stays immutable with
    field-wise equality.

    Attributes:
        text: The keyphrase string.
        score: Alignment score (LTA/WMR/JAC) used as the primary sort key.
        search_count: ``S(l)`` — tie-break one (higher preferred).
        recall_count: ``R(l)`` — tie-break two (lower preferred).
        common: ``c = |T ∩ l]``, shared-token count with the title.
    """

    text: str
    score: float
    search_count: int
    recall_count: int
    common: int


def enumerate_candidates(graph: "LeafGraph",
                         title_tokens: Sequence[str]):
    """Enumeration step: candidate label ids and duplication counts.

    Args:
        graph: The leaf's bipartite graph.
        title_tokens: Tokenized title (duplicates are collapsed here, so
            ``c`` is a true set-intersection size).

    Returns:
        ``(labels, counts, n_title_tokens)`` where ``labels`` is an int
        array of candidate label ids and ``counts[i]`` is the number of
        title tokens shared with ``labels[i]``.  Both arrays are empty when
        no title token occurs in the graph vocabulary.
    """
    unique_tokens = list(dict.fromkeys(title_tokens))
    neighbor_lists = []
    for token in unique_tokens:
        word_id = graph.word_vocab.get(token)
        if word_id is None:
            continue
        adjacency = graph.graph.neighbors(word_id)
        if len(adjacency):
            neighbor_lists.append(adjacency)
    if not neighbor_lists:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, len(unique_tokens)
    # Each adjacency list holds distinct labels, so the multiplicity of a
    # label across the concatenation is exactly |T ∩ l| — the DC function
    # of Algorithm 1 realised as one vectorized unique-count.
    candidates = np.concatenate(neighbor_lists)
    labels, counts = np.unique(candidates, return_counts=True)
    return labels.astype(np.int64), counts.astype(np.int64), len(unique_tokens)


def prune_by_count_groups(labels: np.ndarray, counts: np.ndarray,
                          k: int):
    """Keep the largest count-groups until at least ``k`` labels survive.

    The threshold group is kept whole even if that overshoots ``k``.
    ``k <= 0`` requests no predictions and prunes *everything* — it used
    to return every candidate, which inverted the caller's intent.

    Returns:
        Filtered ``(labels, counts)`` arrays.
    """
    if k <= 0:
        empty = np.empty(0, dtype=labels.dtype)
        return empty, np.empty(0, dtype=counts.dtype)
    if len(labels) <= k:
        return labels, counts
    order = np.argsort(-counts, kind="stable")
    cutoff = counts[order[k - 1]]
    mask = counts >= cutoff
    return labels[mask], counts[mask]


def rank_candidates(graph: "LeafGraph", labels: np.ndarray,
                    counts: np.ndarray, n_title_tokens: int,
                    alignment_fn: AlignmentFunction = lta) -> np.ndarray:
    """Ranking step: order candidate labels.

    Sort keys (major → minor): alignment score desc, Search Count desc,
    Recall Count asc, label id asc.

    Returns:
        Indices into ``labels`` in rank order.
    """
    scores = alignment_fn(counts, graph.label_lengths[labels],
                          n_title_tokens)
    search = graph.search_counts[labels]
    recall = graph.recall_counts[labels]
    # np.lexsort sorts by the LAST key first.
    return np.lexsort((labels, recall, -search, -scores))


def recommend_from_graph(graph: "LeafGraph",
                         title_tokens: Sequence[str],
                         k: int = 10,
                         alignment_fn: AlignmentFunction = lta,
                         hard_limit: Optional[int] = None
                         ) -> List[Recommendation]:
    """Full Algorithm 1: enumerate, prune, rank, materialise.

    Args:
        graph: Leaf bipartite graph.
        title_tokens: Tokenized item title.
        k: Target prediction count (whole threshold group kept).
        alignment_fn: Scoring function (LTA default).
        hard_limit: Optional strict cap applied after ranking.

    Returns:
        Ranked :class:`Recommendation` list.
    """
    labels, counts, n_tokens = enumerate_candidates(graph, title_tokens)
    if len(labels) == 0:
        return []
    labels, counts = prune_by_count_groups(labels, counts, k)
    order = rank_candidates(graph, labels, counts, n_tokens, alignment_fn)
    scores = alignment_fn(counts, graph.label_lengths[labels], n_tokens)
    out: List[Recommendation] = []
    for idx in order:
        label = int(labels[idx])
        out.append(Recommendation(
            text=graph.label_texts[label],
            score=float(scores[idx]),
            search_count=int(graph.search_counts[label]),
            recall_count=int(graph.recall_counts[label]),
            common=int(counts[idx]),
        ))
    if hard_limit is not None:
        out = out[:hard_limit]
    return out
