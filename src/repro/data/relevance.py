"""Ground-truth relevance between queries and products.

The generator knows the latent product behind every listing, so relevance
is *defined* rather than estimated: a query is relevant to an item when
every content token of the query is semantically true of the item's
product.  This plays the role of the paper's AI judge (Mixtral), which the
authors benchmarked at >90% agreement with human judgment — our oracle is
exact by construction (see DESIGN.md, substitutions table).

The same rule drives the click simulator (buyers click relevant results)
and the offline :class:`repro.eval.judge.OracleJudge`, keeping the world
model consistent end to end.
"""

from __future__ import annotations

from typing import Iterable

from .catalog import Product
from .queries import QUERY_STOPWORDS


def oracle_relevant(product: Product, query_tokens: Iterable[str]) -> bool:
    """Return True when a query is relevant to a product.

    A query is relevant iff every non-stopword token appears in the
    product's concept-token set (brand, model, type, attributes,
    compatibilities).

    Args:
        product: The latent product behind a listing.
        query_tokens: Tokens of the query string.

    Returns:
        True when the query targets this product; False otherwise.
        Queries consisting solely of stopwords are never relevant.
    """
    content = [t for t in query_tokens if t not in QUERY_STOPWORDS]
    if not content:
        return False
    concept = product.concept_tokens
    return all(token in concept for token in content)
