"""One-call dataset factory reproducing the paper's CAT 1/2/3 profiles.

Table II of the paper describes three meta categories: large (CAT 1, 200M
items / 3.6M keyphrases), medium (CAT 2, 14M / 0.83M) and small (CAT 3,
7M / 0.46M).  We reproduce the *ordering and ratios* at laptop scale —
all reported metrics are proportions, so absolute scale is immaterial
(see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .catalog import Catalog, build_catalog
from .lexicon import COLLECTIBLES, ELECTRONICS, HOME_GARDEN, MetaLexicon
from .queries import QueryUniverse, build_query_universe


@dataclass(frozen=True)
class DatasetProfile:
    """Sizing knobs for one synthetic dataset."""

    name: str
    items_per_meta: Dict[str, int]
    seed: int = 7
    query_seed: int = 11

    @property
    def total_items(self) -> int:
        """Total items across all meta categories."""
        return sum(self.items_per_meta.values())


#: Default scaled-down profile mirroring the paper's large/medium/small split.
DEFAULT_PROFILE = DatasetProfile(
    name="default",
    items_per_meta={"CAT_1": 3000, "CAT_2": 1200, "CAT_3": 500},
)

#: Small profile for fast tests.
TINY_PROFILE = DatasetProfile(
    name="tiny",
    items_per_meta={"CAT_1": 300, "CAT_2": 150, "CAT_3": 80},
    seed=13,
    query_seed=17,
)


@dataclass
class Dataset:
    """A catalog plus its buyer query universe."""

    profile: DatasetProfile
    catalog: Catalog
    queries: QueryUniverse

    @property
    def metas(self) -> List[str]:
        """Meta-category names in the dataset."""
        return self.catalog.tree.metas


_META_LEXICONS: Dict[str, MetaLexicon] = {
    "CAT_1": ELECTRONICS,
    "CAT_2": HOME_GARDEN,
    "CAT_3": COLLECTIBLES,
}


def generate_dataset(profile: Optional[DatasetProfile] = None) -> Dataset:
    """Build a reproducible synthetic dataset.

    Args:
        profile: Sizing profile; defaults to :data:`DEFAULT_PROFILE`.

    Returns:
        A :class:`Dataset` with catalog and query universe.  Identical
        profiles (same seeds) produce identical datasets.
    """
    profile = profile or DEFAULT_PROFILE
    metas = [_META_LEXICONS[name] for name in profile.items_per_meta]
    catalog = build_catalog(
        metas, profile.items_per_meta, seed=profile.seed)
    queries = build_query_universe(
        catalog, metas, seed=profile.query_seed)
    return Dataset(profile=profile, catalog=catalog, queries=queries)
