"""Word inventories for the synthetic e-commerce catalog.

The paper evaluates on three proprietary eBay meta-categories (CAT 1/2/3,
large/medium/small).  We substitute a deterministic synthetic lexicon with
the same structure: a *meta category* contains *leaf categories*; each leaf
has brands, multi-token product types, grouped attributes, and filler words
used to pad item titles the way real listings pad theirs ("NEW", "OEM",
"Fast Shipping").

Everything here is plain data — no randomness — so catalogs built from the
same seed are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class LeafLexicon:
    """Word pools for one leaf category.

    Attributes:
        name: Leaf category name (single token, kebab-case).
        brands: Brand names (single tokens).
        product_types: Product types; each is a tuple of tokens, e.g.
            ``("gaming", "headphones")``.
        attributes: Attribute groups, e.g. ``{"color": ("black", ...)}``.
            Attribute values may be multi-token tuples.
        compatibles: Things the product is "for" — platforms, appliances,
            audiences.  Used both in titles ("... for xbox") and queries.
    """

    name: str
    brands: Tuple[str, ...]
    product_types: Tuple[Tuple[str, ...], ...]
    attributes: Dict[str, Tuple[Tuple[str, ...], ...]]
    compatibles: Tuple[str, ...] = ()


@dataclass(frozen=True)
class MetaLexicon:
    """Word pools for one meta category (a set of leaves + shared filler)."""

    name: str
    leaves: Tuple[LeafLexicon, ...]
    filler_words: Tuple[str, ...] = field(
        default=(
            "new", "genuine", "oem", "sealed", "bundle", "lot",
            "sale", "free", "shipping", "usa", "fast", "authentic",
            "original", "rare", "mint", "open", "box",
        )
    )

    def leaf(self, name: str) -> LeafLexicon:
        """Return the leaf lexicon with the given name.

        Raises:
            KeyError: If no leaf with that name exists.
        """
        for leaf in self.leaves:
            if leaf.name == name:
                return leaf
        raise KeyError(f"no leaf named {name!r} in meta {self.name!r}")


def _attrs(**groups: Tuple[str, ...]) -> Dict[str, Tuple[Tuple[str, ...], ...]]:
    """Normalise attribute groups: single-token strings become 1-tuples."""
    out: Dict[str, Tuple[Tuple[str, ...], ...]] = {}
    for group, values in groups.items():
        out[group] = tuple(
            v if isinstance(v, tuple) else (v,) for v in values
        )
    return out


_COLORS = ("black", "white", "silver", "blue", "red", "green", "gold", "gray")
_CONDITIONS = ("new", "used", "refurbished", "vintage")

_ELECTRONICS_LEAVES = (
    LeafLexicon(
        name="headphones",
        brands=("audeze", "sonorix", "bassforge", "klaro", "wavecrest",
                "echopod", "tunefjord", "auralis", "dbx", "hymn"),
        product_types=(
            ("headphones",), ("gaming", "headphones"), ("wireless", "earbuds"),
            ("headset",), ("earphones",), ("studio", "headphones"),
            ("noise", "cancelling", "headphones"),
        ),
        attributes=_attrs(
            color=_COLORS[:6],
            connectivity=("bluetooth", "wired", "wireless", "usb"),
            feature=("microphone", ("noise", "cancelling"), "foldable",
                     ("over", "ear"), ("in", "ear")),
        ),
        compatibles=("xbox", "playstation", "pc", "iphone", "android", "switch"),
    ),
    LeafLexicon(
        name="laptops",
        brands=("zenbooklite", "corevale", "nimbus", "voltedge", "graphyne",
                "lumora", "pinnacle", "stratos", "orbitek"),
        product_types=(
            ("laptop",), ("gaming", "laptop"), ("ultrabook",),
            ("notebook",), ("chromebook",), ("workstation", "laptop"),
        ),
        attributes=_attrs(
            screen=("13", "14", "15", "17"),
            ram=(("8gb", "ram"), ("16gb", "ram"), ("32gb", "ram")),
            storage=(("256gb", "ssd"), ("512gb", "ssd"), ("1tb", "ssd"),
                     ("1tb", "hdd")),
            cpu=("i5", "i7", "i9", "ryzen"),
        ),
        compatibles=("students", "business", "gaming", "video", "editing"),
    ),
    LeafLexicon(
        name="phones",
        brands=("calypso", "nexar", "pebblio", "vertex", "monsoon",
                "kitefone", "halcyon", "zephyr"),
        product_types=(
            ("smartphone",), ("phone",), ("cell", "phone"),
            ("unlocked", "phone"), ("flip", "phone"),
        ),
        attributes=_attrs(
            storage=("64gb", "128gb", "256gb", "512gb"),
            color=_COLORS[:5],
            network=("unlocked", "5g", "4g", "dual", "sim"),
        ),
        compatibles=("verizon", "att", "tmobile", "prepaid"),
    ),
    LeafLexicon(
        name="cameras",
        brands=("optiko", "lumenara", "fovea", "silverlens", "panoptia",
                "irisview", "clarita"),
        product_types=(
            ("camera",), ("digital", "camera"), ("mirrorless", "camera"),
            ("dslr", "camera"), ("action", "camera"), ("instant", "camera"),
        ),
        attributes=_attrs(
            resolution=("12mp", "20mp", "24mp", "45mp"),
            feature=(("4k", "video"), "wifi", ("image", "stabilization"),
                     "waterproof"),
            kit=(("with", "lens"), ("body", "only"), ("bundle", "kit")),
        ),
        compatibles=("vlogging", "travel", "beginners", "underwater"),
    ),
    LeafLexicon(
        name="tablets",
        brands=("slatea", "paperon", "glyphtab", "nimbus", "vertex",
                "orbitek", "lumora"),
        product_types=(
            ("tablet",), ("android", "tablet"), ("kids", "tablet"),
            ("drawing", "tablet"), ("e", "reader"),
        ),
        attributes=_attrs(
            screen=("8", "10", "11", "13"),
            storage=("32gb", "64gb", "128gb", "256gb"),
            connectivity=("wifi", ("wifi", "cellular"), "lte"),
        ),
        compatibles=("kids", "students", "artists", "reading"),
    ),
    LeafLexicon(
        name="monitors",
        brands=("viewforge", "pixelon", "claritymax", "arcscreen", "voltedge",
                "graphyne", "stratos"),
        product_types=(
            ("monitor",), ("gaming", "monitor"), ("curved", "monitor"),
            ("ultrawide", "monitor"), ("portable", "monitor"),
        ),
        attributes=_attrs(
            size=("24", "27", "32", "34"),
            refresh=(("144hz",), ("165hz",), ("240hz",), ("60hz",)),
            resolution=("1080p", "1440p", "4k"),
            panel=("ips", "va", "oled"),
        ),
        compatibles=("gaming", "office", "mac", "laptop"),
    ),
    LeafLexicon(
        name="keyboards",
        brands=("keyvolt", "tactilus", "clackworks", "ironkeys", "dbx",
                "bassforge", "hymn"),
        product_types=(
            ("keyboard",), ("mechanical", "keyboard"), ("gaming", "keyboard"),
            ("wireless", "keyboard"), ("ergonomic", "keyboard"),
        ),
        attributes=_attrs(
            switch=(("red", "switches"), ("blue", "switches"),
                    ("brown", "switches"), ("low", "profile")),
            layout=(("60", "percent"), "tkl", ("full", "size"), "compact"),
            feature=("rgb", "backlit", ("hot", "swappable"), "programmable"),
        ),
        compatibles=("mac", "pc", "gaming", "typing"),
    ),
    LeafLexicon(
        name="speakers",
        brands=("sonorix", "wavecrest", "echopod", "basslane", "auralis",
                "tunefjord", "klaro"),
        product_types=(
            ("speaker",), ("bluetooth", "speaker"), ("portable", "speaker"),
            ("smart", "speaker"), ("bookshelf", "speakers"), ("soundbar",),
        ),
        attributes=_attrs(
            color=_COLORS[:5],
            power=("10w", "20w", "40w", "100w"),
            feature=("waterproof", ("party", "lights"), "stereo",
                     ("deep", "bass")),
        ),
        compatibles=("home", "outdoor", "party", "tv"),
    ),
    LeafLexicon(
        name="drones",
        brands=("aeropix", "skyforge", "hoverline", "glidea", "panoptia",
                "fovea"),
        product_types=(
            ("drone",), ("camera", "drone"), ("mini", "drone"),
            ("fpv", "drone"), ("racing", "drone"),
        ),
        attributes=_attrs(
            camera=(("4k", "camera"), ("1080p", "camera"), ("no", "camera")),
            feature=("foldable", "gps", ("obstacle", "avoidance"),
                     ("long", "range")),
            skill=(("for", "beginners"), "professional", "hobby"),
        ),
        compatibles=("beginners", "kids", "adults", "photography"),
    ),
    LeafLexicon(
        name="smartwatches",
        brands=("chronix", "pulsewake", "tempora", "halcyon", "zephyr",
                "vertex"),
        product_types=(
            ("smartwatch",), ("fitness", "tracker"), ("smart", "watch"),
            ("gps", "watch"), ("kids", "smartwatch"),
        ),
        attributes=_attrs(
            color=_COLORS[:5],
            size=("40mm", "42mm", "44mm", "46mm"),
            feature=(("heart", "rate"), "gps", "waterproof",
                     ("sleep", "tracking"), "amoled"),
        ),
        compatibles=("iphone", "android", "running", "swimming"),
    ),
    LeafLexicon(
        name="routers",
        brands=("netspire", "linkforge", "meshona", "signalux", "orbitek",
                "stratos"),
        product_types=(
            ("router",), ("wifi", "router"), ("mesh", "router"),
            ("gaming", "router"), ("travel", "router"),
        ),
        attributes=_attrs(
            standard=(("wifi", "6"), ("wifi", "6e"), ("wifi", "5"), "ax3000"),
            coverage=(("whole", "home"), ("long", "range"), "compact"),
            ports=(("4", "ports"), ("8", "ports"), ("2.5g", "port")),
        ),
        compatibles=("gaming", "streaming", "home", "office"),
    ),
    LeafLexicon(
        name="printers",
        brands=("inkvale", "printora", "laserline", "paperon", "clarita",
                "pixelon"),
        product_types=(
            ("printer",), ("laser", "printer"), ("inkjet", "printer"),
            ("photo", "printer"), ("label", "printer"),
            ("all", "in", "one", "printer"),
        ),
        attributes=_attrs(
            color=(("color",), ("monochrome",), ("black", "white")),
            feature=("wireless", "duplex", "airprint", ("with", "scanner")),
            speed=(("20ppm",), ("30ppm",), ("40ppm",)),
        ),
        compatibles=("home", "office", "school", "small", "business"),
    ),
)

_HOME_GARDEN_LEAVES = (
    LeafLexicon(
        name="cookware",
        brands=("ferrova", "copperhollow", "simmerline", "castiria",
                "panmark", "culina"),
        product_types=(
            ("cookware", "set"), ("frying", "pan"), ("dutch", "oven"),
            ("skillet",), ("saucepan",), ("stock", "pot"),
        ),
        attributes=_attrs(
            material=(("cast", "iron"), ("stainless", "steel"), "nonstick",
                      "ceramic", "copper"),
            size=(("10", "inch"), ("12", "inch"), ("5", "quart"),
                  ("8", "quart")),
            feature=(("oven", "safe"), ("dishwasher", "safe"),
                     ("induction", "compatible")),
        ),
        compatibles=("induction", "gas", "electric", "camping"),
    ),
    LeafLexicon(
        name="bedding",
        brands=("cloudnest", "dreamweft", "lunaloft", "quilted", "sereno"),
        product_types=(
            ("sheet", "set"), ("comforter",), ("duvet", "cover"),
            ("pillow",), ("mattress", "topper"), ("weighted", "blanket"),
        ),
        attributes=_attrs(
            size=("twin", "full", "queen", "king"),
            material=("cotton", "microfiber", "bamboo", "linen", "down"),
            color=_COLORS[:6],
        ),
        compatibles=("summer", "winter", "kids", "guest", "room"),
    ),
    LeafLexicon(
        name="lighting",
        brands=("glowette", "lumenhaus", "brighton", "solstice", "auric"),
        product_types=(
            ("floor", "lamp"), ("table", "lamp"), ("ceiling", "light"),
            ("led", "strip", "lights"), ("pendant", "light"),
            ("string", "lights"),
        ),
        attributes=_attrs(
            style=("modern", "industrial", "farmhouse", "vintage"),
            feature=("dimmable", ("remote", "control"), ("smart", "bulb"),
                     ("color", "changing")),
            power=(("battery", "operated"), ("plug", "in"), "solar"),
        ),
        compatibles=("bedroom", "living", "room", "outdoor", "patio"),
    ),
    LeafLexicon(
        name="garden-tools",
        brands=("terraforge", "bloomline", "verdana", "rootwise", "soleia"),
        product_types=(
            ("pruning", "shears"), ("garden", "hose"), ("leaf", "blower"),
            ("hedge", "trimmer"), ("lawn", "mower"), ("tool", "set"),
        ),
        attributes=_attrs(
            power=("cordless", "electric", "gas", "manual"),
            feature=(("heavy", "duty"), "lightweight", "telescoping",
                     ("quick", "connect")),
            size=(("25", "ft"), ("50", "ft"), ("100", "ft")),
        ),
        compatibles=("garden", "yard", "lawn", "landscaping"),
    ),
    LeafLexicon(
        name="furniture",
        brands=("oakhaven", "formline", "nordvik", "casaluce", "strutto"),
        product_types=(
            ("coffee", "table"), ("bookshelf",), ("office", "chair"),
            ("tv", "stand"), ("dining", "table"), ("accent", "chair"),
        ),
        attributes=_attrs(
            material=("wood", "metal", "glass", ("solid", "oak"), "velvet"),
            style=("modern", "rustic", ("mid", "century"), "industrial"),
            color=("black", "white", "walnut", "oak", "espresso"),
        ),
        compatibles=("living", "room", "office", "bedroom", "small", "spaces"),
    ),
    LeafLexicon(
        name="storage",
        brands=("tidyforge", "stacksmith", "binhaven", "ordena"),
        product_types=(
            ("storage", "bins"), ("shelving", "unit"), ("closet", "organizer"),
            ("storage", "cabinet"), ("shoe", "rack"), ("garage", "shelves"),
        ),
        attributes=_attrs(
            material=("plastic", "fabric", "metal", "wire", "bamboo"),
            size=(("small",), ("large",), ("66", "quart"), ("5", "tier")),
            feature=("stackable", ("with", "lids"), "collapsible",
                     ("heavy", "duty")),
        ),
        compatibles=("garage", "closet", "pantry", "kids", "toys"),
    ),
    LeafLexicon(
        name="decor",
        brands=("murale", "artisca", "velvetine", "gildform"),
        product_types=(
            ("wall", "art"), ("throw", "pillow"), ("area", "rug"),
            ("wall", "mirror"), ("picture", "frame"), ("vase",),
        ),
        attributes=_attrs(
            style=("boho", "modern", "farmhouse", "abstract", "vintage"),
            size=(("5x7",), ("8x10",), ("large",), ("set", "of", "2")),
            color=("gold", "black", "white", "neutral", "multicolor"),
        ),
        compatibles=("living", "room", "bedroom", "bathroom", "entryway"),
    ),
    LeafLexicon(
        name="grills",
        brands=("emberline", "charforge", "flamebrook", "searmaster"),
        product_types=(
            ("gas", "grill"), ("charcoal", "grill"), ("pellet", "grill"),
            ("portable", "grill"), ("smoker",), ("griddle",),
        ),
        attributes=_attrs(
            burners=(("2", "burner"), ("3", "burner"), ("4", "burner")),
            feature=(("side", "table"), ("temperature", "gauge"),
                     ("with", "cover"), "foldable"),
            fuel=("propane", "charcoal", "pellet", "electric"),
        ),
        compatibles=("camping", "tailgating", "backyard", "patio"),
    ),
)

_COLLECTIBLES_LEAVES = (
    LeafLexicon(
        name="trading-cards",
        brands=("cardforge", "mythic", "apexdeck", "relicary"),
        product_types=(
            ("trading", "card"), ("booster", "box"), ("card", "lot"),
            ("graded", "card"), ("booster", "pack"),
        ),
        attributes=_attrs(
            grade=(("psa", "10"), ("psa", "9"), "ungraded", ("bgs", "9.5")),
            rarity=("holo", ("first", "edition"), "rare", "promo"),
            era=("vintage", "modern", ("base", "set")),
        ),
        compatibles=("collectors", "players", "investment"),
    ),
    LeafLexicon(
        name="coins",
        brands=("numisma", "aurelius", "mintmark"),
        product_types=(
            ("silver", "dollar"), ("gold", "coin"), ("coin", "lot"),
            ("proof", "set"), ("commemorative", "coin"),
        ),
        attributes=_attrs(
            grade=("ms65", "ms70", "au", "circulated", "uncirculated"),
            metal=("silver", "gold", "copper", ("90", "silver")),
            era=("morgan", "peace", ("pre", "1933"), "modern"),
        ),
        compatibles=("collectors", "investment", "gift"),
    ),
    LeafLexicon(
        name="stamps",
        brands=("philatel", "postmark", "perfora"),
        product_types=(
            ("stamp", "collection"), ("stamp", "lot"), ("first", "day", "cover"),
            ("mint", "stamps"), ("stamp", "album"),
        ),
        attributes=_attrs(
            condition=("mint", "used", "hinged", ("never", "hinged")),
            origin=("us", "worldwide", "british", "german"),
            era=("19th", "century", "classic", "modern"),
        ),
        compatibles=("collectors", "beginners"),
    ),
    LeafLexicon(
        name="vintage-toys",
        brands=("tinwhistle", "joyforge", "retrona", "playden"),
        product_types=(
            ("action", "figure"), ("tin", "toy"), ("model", "train"),
            ("die", "cast", "car"), ("vintage", "doll"), ("board", "game"),
        ),
        attributes=_attrs(
            condition=(("in", "box"), "loose", "complete", "sealed"),
            era=("1960s", "1970s", "1980s", "1990s"),
            scale=(("1:64",), ("1:18",), ("ho", "scale")),
        ),
        compatibles=("collectors", "display", "restoration"),
    ),
    LeafLexicon(
        name="comics",
        brands=("inkpanel", "quadrant", "vellum"),
        product_types=(
            ("comic", "book"), ("comic", "lot"), ("graphic", "novel"),
            ("graded", "comic"), ("key", "issue"),
        ),
        attributes=_attrs(
            grade=(("cgc", "9.8"), ("cgc", "9.2"), "raw", "vf", "nm"),
            era=(("golden", "age"), ("silver", "age"), ("bronze", "age"),
                 "modern"),
            feature=(("first", "appearance"), "variant", ("signed",)),
        ),
        compatibles=("collectors", "readers", "investment"),
    ),
)


#: The three synthetic meta categories, mirroring the paper's CAT 1/2/3
#: large / medium / small split (Table II).
ELECTRONICS = MetaLexicon(name="CAT_1", leaves=_ELECTRONICS_LEAVES)
HOME_GARDEN = MetaLexicon(name="CAT_2", leaves=_HOME_GARDEN_LEAVES)
COLLECTIBLES = MetaLexicon(name="CAT_3", leaves=_COLLECTIBLES_LEAVES)

META_LEXICONS: Dict[str, MetaLexicon] = {
    lex.name: lex for lex in (ELECTRONICS, HOME_GARDEN, COLLECTIBLES)
}


def all_leaf_names() -> List[str]:
    """Return every leaf-category name across all meta categories."""
    return [leaf.name for lex in META_LEXICONS.values() for leaf in lex.leaves]
