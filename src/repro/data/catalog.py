"""Synthetic product catalog: category tree, products, items and titles.

Mirrors the structure GraphEx assumes at eBay: a *meta category* (top of the
categorization tree) contains many *leaf categories* (lowest-level product
categorization).  Items live in exactly one leaf.  Titles are noisy,
seller-authored strings: brand + model + attributes + product type + filler.

A :class:`Product` is the latent "true product" behind one or more item
listings; its ``concept_tokens`` are the ground-truth semantic vocabulary
used by the oracle relevance judge (``repro.eval.judge.OracleJudge``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .lexicon import LeafLexicon, MetaLexicon


@dataclass(frozen=True)
class LeafCategory:
    """One leaf category in the categorization tree."""

    leaf_id: int
    name: str
    meta: str


class CategoryTree:
    """Two-level categorization tree: meta category -> leaf categories.

    Leaf ids are globally unique integers (the paper notes leaf ids are
    generally unique across meta categories, letting one model serve a whole
    site).
    """

    def __init__(self, metas: Sequence[MetaLexicon],
                 first_leaf_id: int = 100) -> None:
        self._leaves: List[LeafCategory] = []
        self._by_id: Dict[int, LeafCategory] = {}
        self._by_name: Dict[str, LeafCategory] = {}
        self._by_meta: Dict[str, List[LeafCategory]] = {}
        next_id = first_leaf_id
        for meta in metas:
            self._by_meta[meta.name] = []
            for leaf_lex in meta.leaves:
                leaf = LeafCategory(next_id, leaf_lex.name, meta.name)
                next_id += 1
                self._leaves.append(leaf)
                self._by_id[leaf.leaf_id] = leaf
                self._by_name[leaf.name] = leaf
                self._by_meta[meta.name].append(leaf)

    def __len__(self) -> int:
        return len(self._leaves)

    def __iter__(self) -> Iterator[LeafCategory]:
        return iter(self._leaves)

    @property
    def metas(self) -> List[str]:
        """Names of the meta categories, in insertion order."""
        return list(self._by_meta)

    def leaf_by_id(self, leaf_id: int) -> LeafCategory:
        """Look up a leaf by its integer id."""
        return self._by_id[leaf_id]

    def leaf_by_name(self, name: str) -> LeafCategory:
        """Look up a leaf by its name."""
        return self._by_name[name]

    def leaves_of(self, meta: str) -> List[LeafCategory]:
        """All leaves under the given meta category."""
        return list(self._by_meta[meta])


@dataclass(frozen=True)
class Product:
    """A latent product: the ground truth behind one or more listings.

    Attributes:
        product_id: Unique integer id.
        leaf_id: Leaf category the product belongs to.
        brand: Brand token.
        model: Synthetic model code token (e.g. ``"mx450"``).
        ptype: Product-type tokens, e.g. ``("gaming", "headphones")``.
        attrs: Chosen attribute value per group, e.g.
            ``{"color": ("black",)}``.
        compatibles: Compatibility tokens this product advertises.
        concept_tokens: Frozen set of all tokens that are semantically true
            of this product; the oracle judge deems a query relevant when
            every content token of the query is in this set.
    """

    product_id: int
    leaf_id: int
    brand: str
    model: str
    ptype: Tuple[str, ...]
    attrs: Dict[str, Tuple[str, ...]] = field(hash=False)
    compatibles: Tuple[str, ...]
    concept_tokens: FrozenSet[str]


@dataclass(frozen=True)
class Item:
    """A single listed item (one listing of one product)."""

    item_id: int
    product_id: int
    leaf_id: int
    title: str

    @property
    def title_tokens(self) -> List[str]:
        """Space-delimited tokens of the title."""
        return self.title.split()


def _make_model_code(rng: np.random.Generator) -> str:
    """Generate a plausible alphanumeric model code like ``mx450``."""
    letters = "abcdefghjkmnprstvwxz"
    prefix = "".join(rng.choice(list(letters), size=2))
    number = int(rng.integers(10, 9900))
    return f"{prefix}{number}"


class ProductFactory:
    """Deterministically samples products from a leaf lexicon."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._next_product_id = 1

    def make(self, leaf: LeafCategory, lexicon: LeafLexicon) -> Product:
        """Sample one product for the given leaf."""
        rng = self._rng
        brand = str(rng.choice(lexicon.brands))
        model = _make_model_code(rng)
        ptype = lexicon.product_types[
            int(rng.integers(len(lexicon.product_types)))]
        attrs: Dict[str, Tuple[str, ...]] = {}
        for group, values in lexicon.attributes.items():
            # Most products specify most attribute groups; a few omit some,
            # like real listings do.
            if rng.random() < 0.95:
                attrs[group] = values[int(rng.integers(len(values)))]
        n_compat = min(len(lexicon.compatibles), int(rng.integers(0, 3)))
        compatibles: Tuple[str, ...] = ()
        if n_compat and lexicon.compatibles:
            picked = rng.choice(
                len(lexicon.compatibles), size=n_compat, replace=False)
            compatibles = tuple(lexicon.compatibles[i] for i in picked)

        concept = {brand, model}
        concept.update(ptype)
        for value in attrs.values():
            concept.update(value)
        concept.update(compatibles)
        # Generic type words shared by every product of the leaf: the head
        # noun of every product type containing the product's head noun.
        concept.add(ptype[-1])

        product = Product(
            product_id=self._next_product_id,
            leaf_id=leaf.leaf_id,
            brand=brand,
            model=model,
            ptype=ptype,
            attrs=attrs,
            compatibles=compatibles,
            concept_tokens=frozenset(concept),
        )
        self._next_product_id += 1
        return product


class TitleWriter:
    """Composes noisy seller-style titles for a product.

    Titles interleave true product tokens with filler ("new", "free
    shipping") and occasionally drop attributes — so extraction models see
    realistic incomplete surface forms.  A fraction of titles is
    *keyword-stuffed* with competitor brand tokens ("fits audeze klaro"),
    a real marketplace pathology: those tokens are in the title but not
    true of the product, so lexical full-matches are not automatically
    relevant.
    """

    def __init__(self, rng: np.random.Generator,
                 filler_words: Sequence[str],
                 stuffing_vocab: Sequence[str] = (),
                 stuffing_rate: float = 0.3) -> None:
        self._rng = rng
        self._filler = list(filler_words)
        self._stuffing = list(stuffing_vocab)
        self._stuffing_rate = stuffing_rate

    def write(self, product: Product) -> str:
        """Return a title string for the product."""
        rng = self._rng
        parts: List[str] = []
        if rng.random() < 0.25:
            parts.append(str(rng.choice(self._filler)))
        parts.append(product.brand)
        parts.append(product.model)
        attr_groups = list(product.attrs.values())
        rng.shuffle(attr_groups)
        # Include most attributes in the surface title; occasionally one
        # is dropped, like real listings omit a spec.
        keep = len(attr_groups)
        if attr_groups and rng.random() < 0.35:
            keep -= 1
        for value in attr_groups[:keep]:
            parts.extend(value)
        parts.extend(product.ptype)
        if product.compatibles and rng.random() < 0.7:
            parts.append("for")
            parts.append(product.compatibles[0])
        n_filler = int(rng.integers(0, 3))
        for _ in range(n_filler):
            parts.append(str(rng.choice(self._filler)))
        stuffable = [t for t in self._stuffing
                     if t != product.brand and t not in parts]
        if stuffable and rng.random() < self._stuffing_rate:
            n_stuffed = int(rng.integers(1, 3))
            picks = rng.choice(len(stuffable),
                               size=min(n_stuffed, len(stuffable)),
                               replace=False)
            parts.append("fits")
            parts.extend(stuffable[i] for i in picks)
        return " ".join(parts)


@dataclass
class Catalog:
    """A complete synthetic catalog for one or more meta categories."""

    tree: CategoryTree
    products: List[Product]
    items: List[Item]

    def __post_init__(self) -> None:
        self._items_by_id = {it.item_id: it for it in self.items}
        self._products_by_id = {p.product_id: p for p in self.products}
        self._items_by_leaf: Dict[int, List[Item]] = {}
        for it in self.items:
            self._items_by_leaf.setdefault(it.leaf_id, []).append(it)

    def item(self, item_id: int) -> Item:
        """Look up an item by id."""
        return self._items_by_id[item_id]

    def product(self, product_id: int) -> Product:
        """Look up a product by id."""
        return self._products_by_id[product_id]

    def product_of_item(self, item_id: int) -> Product:
        """The latent product behind an item."""
        return self.product(self.item(item_id).product_id)

    def items_in_leaf(self, leaf_id: int) -> List[Item]:
        """All items listed in the given leaf category."""
        return list(self._items_by_leaf.get(leaf_id, []))

    def items_in_meta(self, meta: str) -> List[Item]:
        """All items listed under the given meta category."""
        out: List[Item] = []
        for leaf in self.tree.leaves_of(meta):
            out.extend(self._items_by_leaf.get(leaf.leaf_id, []))
        return out


def build_catalog(metas: Sequence[MetaLexicon],
                  items_per_meta: Dict[str, int],
                  seed: int = 7,
                  listings_per_product: float = 1.6) -> Catalog:
    """Build a reproducible catalog.

    Args:
        metas: Meta-category lexicons to include.
        items_per_meta: Target number of items per meta-category name.
        seed: RNG seed; identical seeds give identical catalogs.
        listings_per_product: Average number of item listings per latent
            product (eBay has many duplicate listings of the same product).

    Returns:
        A fully-populated :class:`Catalog`.
    """
    rng = np.random.default_rng(seed)
    tree = CategoryTree(metas)
    factory = ProductFactory(rng)
    products: List[Product] = []
    items: List[Item] = []
    next_item_id = 1

    for meta in metas:
        n_items = items_per_meta[meta.name]
        leaves = tree.leaves_of(meta.name)
        # Skew item volume across leaves (real categories are imbalanced).
        weights = rng.dirichlet(np.full(len(leaves), 2.0))
        counts = np.maximum(1, (weights * n_items).astype(int))
        for leaf, leaf_count in zip(leaves, counts):
            lexicon = meta.leaf(leaf.name)
            writer = TitleWriter(rng, meta.filler_words,
                                 stuffing_vocab=lexicon.brands)
            n_products = max(1, int(leaf_count / listings_per_product))
            leaf_products = [factory.make(leaf, lexicon)
                             for _ in range(n_products)]
            products.extend(leaf_products)
            for _ in range(int(leaf_count)):
                product = leaf_products[int(rng.integers(n_products))]
                items.append(Item(
                    item_id=next_item_id,
                    product_id=product.product_id,
                    leaf_id=leaf.leaf_id,
                    title=writer.write(product),
                ))
                next_item_id += 1

    return Catalog(tree=tree, products=products, items=items)
