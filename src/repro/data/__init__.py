"""Synthetic e-commerce substrate: catalog, titles and buyer queries.

This subpackage substitutes for the proprietary eBay data the paper uses
(see DESIGN.md, substitutions table).  It produces exactly the interfaces
GraphEx and the baselines consume: items with titles and leaf categories,
and a query universe with Zipf-skewed search popularity.
"""

from .catalog import (
    Catalog,
    CategoryTree,
    Item,
    LeafCategory,
    Product,
    build_catalog,
)
from .generator import (
    DEFAULT_PROFILE,
    TINY_PROFILE,
    Dataset,
    DatasetProfile,
    generate_dataset,
)
from .lexicon import (
    COLLECTIBLES,
    ELECTRONICS,
    HOME_GARDEN,
    META_LEXICONS,
    LeafLexicon,
    MetaLexicon,
)
from .queries import QUERY_STOPWORDS, Query, QueryUniverse, build_query_universe

__all__ = [
    "Catalog",
    "CategoryTree",
    "Item",
    "LeafCategory",
    "Product",
    "build_catalog",
    "Dataset",
    "DatasetProfile",
    "DEFAULT_PROFILE",
    "TINY_PROFILE",
    "generate_dataset",
    "LeafLexicon",
    "MetaLexicon",
    "META_LEXICONS",
    "ELECTRONICS",
    "HOME_GARDEN",
    "COLLECTIBLES",
    "Query",
    "QueryUniverse",
    "QUERY_STOPWORDS",
    "build_query_universe",
]
