"""Buyer query universe with Zipf-skewed search popularity.

Queries ("keyphrases" in the paper) are generated from product populations
per leaf category using templates that range from generic head queries
("gaming headphones") to specific tail queries ("audeze mx450").  Popularity
weights are Zipf-distributed within each template band so a small number of
head queries dominates search volume — the property GraphEx's curation
process (Section III-B) exploits.

A small fraction of *bogus* queries (misspelled / junk) is included with
weight ~1, motivating the Search-Count threshold ablation of Table VII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .catalog import Catalog, Product
from .lexicon import MetaLexicon

#: Tokens that carry no product meaning and are dropped from query templates.
QUERY_STOPWORDS = frozenset({"for", "with", "the", "a", "of", "in", "and"})


@dataclass(frozen=True)
class Query:
    """One buyer search query.

    Attributes:
        text: The query string (space-delimited tokens).
        leaf_id: Leaf category Cassini attributes this query to (the paper:
            leaf of the top-ranked item; here: the leaf it was generated
            from, which the search substrate reproduces).
        weight: Relative search popularity; buyer sessions sample queries
            proportionally to weight, producing the observed Search Count.
        origin_product_id: Product the query was templated from (0 for
            generic/bogus queries).  Diagnostic only — never exposed to
            models.
    """

    text: str
    leaf_id: int
    weight: float
    origin_product_id: int = 0

    @property
    def tokens(self) -> List[str]:
        """Space-delimited tokens of the query."""
        return self.text.split()


def _clean(tokens: Sequence[str]) -> Tuple[str, ...]:
    """Drop stopwords and collapse duplicates while preserving order."""
    seen = set()
    out: List[str] = []
    for token in tokens:
        if token in QUERY_STOPWORDS or token in seen:
            continue
        seen.add(token)
        out.append(token)
    return tuple(out)


def _templates_for(product: Product) -> List[Tuple[Tuple[str, ...], float]]:
    """Query templates for one product with head/tail base weights.

    Returns ``(tokens, base_weight)`` pairs; larger base weight means the
    template sits closer to the head of the search distribution.
    """
    ptype = product.ptype
    head_noun = (ptype[-1],)
    attr_values = list(product.attrs.values())
    templates: List[Tuple[Tuple[str, ...], float]] = [
        (head_noun, 100.0),
        (ptype, 60.0),
        ((product.brand,) + head_noun, 25.0),
        ((product.brand,) + ptype, 18.0),
    ]
    for value in attr_values:
        templates.append((value + ptype, 10.0))
        templates.append((value + head_noun, 8.0))
        templates.append(((product.brand,) + value + head_noun, 4.0))
        templates.append(((product.brand,) + value + ptype, 2.0))
    if product.compatibles:
        compat = product.compatibles[0]
        templates.append((ptype + (compat,), 12.0))
        templates.append((head_noun + (compat,), 9.0))
        templates.append(((product.brand,) + ptype + (compat,), 3.0))
        if attr_values:
            templates.append((attr_values[0] + ptype + (compat,), 2.0))
    for first, second in zip(attr_values, attr_values[1:]):
        templates.append((first + second + head_noun, 2.5))
        templates.append((first + second + ptype, 1.5))
        templates.append(((product.brand,) + first + second + head_noun, 1.0))
    if len(attr_values) >= 3:
        templates.append(
            (attr_values[0] + attr_values[1] + attr_values[2] + head_noun,
             1.0))
    # Model-number queries: specific but searched daily for active
    # products (buyers paste model codes into search).
    templates.append(((product.brand, product.model), 6.0))
    templates.append(((product.brand, product.model) + head_noun, 4.0))
    templates.append(((product.model,) + head_noun, 2.0))
    return [(_clean(tokens), base) for tokens, base in templates]


def _bogus_queries(rng: np.random.Generator, leaf_id: int,
                   sample_tokens: Sequence[str], count: int) -> List[Query]:
    """Junk queries: typo'd or scrambled token mixes with weight ~1."""
    out: List[Query] = []
    vocab = list(dict.fromkeys(sample_tokens))
    if not vocab:
        return out
    for _ in range(count):
        k = int(rng.integers(1, 3))
        picked = [str(rng.choice(vocab)) for _ in range(k)]
        token = picked[0]
        if len(token) > 3 and rng.random() < 0.6:
            # Introduce a deletion typo so the query matches nothing.
            cut = int(rng.integers(1, len(token) - 1))
            picked[0] = token[:cut] + token[cut + 1:]
        text = " ".join(dict.fromkeys(picked))
        out.append(Query(text=text, leaf_id=leaf_id, weight=1.0))
    return out


class QueryUniverse:
    """All queries buyers may search, grouped by leaf and meta category."""

    def __init__(self, queries: Sequence[Query],
                 meta_of_leaf: Dict[int, str]) -> None:
        self._queries = list(queries)
        self._meta_of_leaf = dict(meta_of_leaf)
        self._by_leaf: Dict[int, List[Query]] = {}
        for query in self._queries:
            self._by_leaf.setdefault(query.leaf_id, []).append(query)

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def in_leaf(self, leaf_id: int) -> List[Query]:
        """Queries attributed to one leaf category."""
        return list(self._by_leaf.get(leaf_id, []))

    def in_meta(self, meta: str) -> List[Query]:
        """Queries attributed to any leaf of one meta category."""
        return [q for q in self._queries
                if self._meta_of_leaf.get(q.leaf_id) == meta]

    def meta_of_leaf(self, leaf_id: int) -> str:
        """Meta category that owns the given leaf."""
        return self._meta_of_leaf[leaf_id]

    @property
    def total_weight(self) -> float:
        """Sum of popularity weights over all queries."""
        return float(sum(q.weight for q in self._queries))


def build_query_universe(catalog: Catalog,
                         metas: Sequence[MetaLexicon],
                         seed: int = 11,
                         bogus_fraction: float = 0.12,
                         zipf_exponent: float = 1.1) -> QueryUniverse:
    """Generate the buyer query universe for a catalog.

    Args:
        catalog: The synthetic catalog to derive queries from.
        metas: Meta lexicons (used only for leaf enumeration).
        seed: RNG seed.
        bogus_fraction: Fraction of extra junk queries per leaf.
        zipf_exponent: Skew of the within-template popularity multiplier;
            larger values concentrate more volume in the head.

    Returns:
        A :class:`QueryUniverse` with de-duplicated queries whose weights
        sum popularity contributions from every product that generated them.
    """
    rng = np.random.default_rng(seed)
    meta_of_leaf = {leaf.leaf_id: leaf.meta for leaf in catalog.tree}
    merged: Dict[Tuple[int, str], Dict[str, float]] = {}

    products_by_leaf: Dict[int, List[Product]] = {}
    for product in catalog.products:
        products_by_leaf.setdefault(product.leaf_id, []).append(product)

    # Heavy-tailed per-product demand: a few hot products dominate search
    # volume, so their specific queries clear curation thresholds while
    # accidental cross-product combinations do not.
    product_demand = {
        product.product_id: float(rng.pareto(zipf_exponent) + 0.25)
        for product in catalog.products
    }

    for leaf in catalog.tree:
        for product in products_by_leaf.get(leaf.leaf_id, []):
            demand = product_demand[product.product_id]
            for tokens, base in _templates_for(product):
                if not tokens:
                    continue
                text = " ".join(tokens)
                key = (leaf.leaf_id, text)
                # Zipf-style multiplier: heavy-tailed per-query popularity.
                multiplier = float(rng.pareto(zipf_exponent) + 1.0)
                entry = merged.setdefault(
                    key, {"weight": 0.0, "origin": product.product_id})
                entry["weight"] += base * multiplier * demand

    queries: List[Query] = []
    for (leaf_id, text), entry in merged.items():
        queries.append(Query(
            text=text,
            leaf_id=leaf_id,
            weight=entry["weight"],
            origin_product_id=int(entry["origin"]),
        ))

    # Bogus long-tail noise per leaf.
    for leaf in catalog.tree:
        leaf_queries = [q for q in queries if q.leaf_id == leaf.leaf_id]
        n_bogus = int(len(leaf_queries) * bogus_fraction)
        tokens: List[str] = []
        for query in leaf_queries[:50]:
            tokens.extend(query.tokens)
        queries.extend(
            _bogus_queries(rng, leaf.leaf_id, tokens, n_bogus))

    return QueryUniverse(queries, meta_of_leaf)
