"""Search substrate: Cassini-like engine, biased clicks, search logs.

Substitutes for eBay's search stack (see DESIGN.md): produces Search
Counts, Recall Counts, query→leaf attribution and MNAR-biased click logs.
"""

from .clicks import ClickModel, ClickModelConfig
from .engine import SearchEngine, SearchResult
from .logs import ClickEvent, KeyphraseStat, SearchLog, click_sparsity
from .sessions import SessionSimulator

__all__ = [
    "ClickModel",
    "ClickModelConfig",
    "SearchEngine",
    "SearchResult",
    "ClickEvent",
    "KeyphraseStat",
    "SearchLog",
    "click_sparsity",
    "SessionSimulator",
]
