"""Buyer session simulation: searches, impressions, clicks, logs.

The simulator plays out a window of buyer activity in *rounds* so the
popularity-bias feedback loop can develop: each round re-ranks every
active query with the engine's current click counts, allocates a share of
that query's searches, samples clicks, and feeds them back into the
engine.  The result is a :class:`~repro.search.logs.SearchLog` with the
same statistical pathologies the paper describes in real click data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.catalog import Catalog
from ..data.queries import Query, QueryUniverse
from .clicks import ClickModel, ClickModelConfig
from .engine import SearchEngine
from .logs import ClickEvent, SearchLog


class SessionSimulator:
    """Simulates a window of buyer search sessions.

    Args:
        catalog: Synthetic catalog backing the engine.
        universe: Buyer query universe with popularity weights.
        engine: Search engine (shared across windows so popularity
            accumulates realistically).
        click_config: Click-model knobs.
        seed: RNG seed for search-volume sampling and click draws.
        top_k: Impressions shown per search (exposure-bias cut-off).
    """

    def __init__(self, catalog: Catalog, universe: QueryUniverse,
                 engine: Optional[SearchEngine] = None,
                 click_config: ClickModelConfig = ClickModelConfig(),
                 seed: int = 29, top_k: int = 20) -> None:
        self._catalog = catalog
        self._universe = universe
        self._engine = engine or SearchEngine(catalog.items, seed=seed)
        self._clicks = ClickModel(catalog, click_config, seed=seed + 1)
        self._rng = np.random.default_rng(seed + 2)
        self._top_k = top_k

    @property
    def engine(self) -> SearchEngine:
        """The engine used by this simulator."""
        return self._engine

    def _sample_search_volume(self, queries: List[Query],
                              n_events: int) -> np.ndarray:
        """Multinomial allocation of total searches across queries."""
        weights = np.array([q.weight for q in queries], dtype=np.float64)
        probs = weights / weights.sum()
        return self._rng.multinomial(n_events, probs)

    def run(self, n_events: int, day_start: int, day_end: int,
            rounds: int = 4) -> SearchLog:
        """Simulate one window of buyer activity.

        Args:
            n_events: Total search events to allocate across the universe.
            day_start: First day of the window (inclusive).
            day_end: Last day of the window (inclusive).
            rounds: Popularity feedback rounds; 1 disables the loop.

        Returns:
            A :class:`SearchLog` covering the window.
        """
        if day_end < day_start:
            raise ValueError("day_end must be >= day_start")
        if rounds < 1:
            raise ValueError("rounds must be >= 1")

        queries = list(self._universe)
        volume = self._sample_search_volume(queries, n_events)
        log = SearchLog(day_start=day_start, day_end=day_end)

        # Recall counts and leaf attribution are static per window.
        attributed_leaf: Dict[int, int] = {}
        for qi, query in enumerate(queries):
            if volume[qi] <= 0:
                continue
            tokens = query.tokens
            leaf = self._engine.assign_leaf(tokens)
            if leaf is None:
                leaf = query.leaf_id
            attributed_leaf[qi] = leaf
            key = (leaf, query.text)
            log.search_counts[key] = (
                log.search_counts.get(key, 0) + int(volume[qi]))
            log.recall_counts.setdefault(
                key, self._engine.recall_count(tokens))

        active = [qi for qi in range(len(queries)) if volume[qi] > 0]
        per_round = np.ceil(volume / rounds).astype(np.int64)

        for round_idx in range(rounds):
            for qi in active:
                remaining = volume[qi] - round_idx * per_round[qi]
                searches = int(min(per_round[qi], max(0, remaining)))
                if searches <= 0:
                    continue
                query = queries[qi]
                tokens = query.tokens
                results = self._engine.search(tokens, top_k=self._top_k)
                for result in results:
                    n_clicks = self._clicks.sample_clicks(
                        result.item_id, tokens, result.position, searches)
                    if n_clicks <= 0:
                        continue
                    self._engine.record_click(result.item_id, n_clicks)
                    days = self._rng.integers(
                        day_start, day_end + 1, size=n_clicks)
                    leaf = attributed_leaf[qi]
                    for day in days:
                        log.clicks.append(ClickEvent(
                            day=int(day),
                            query_text=query.text,
                            leaf_id=leaf,
                            item_id=result.item_id,
                            position=result.position,
                        ))
        return log

    def run_training_window(self, n_events: int = 150_000,
                            rounds: int = 4) -> SearchLog:
        """Six-month training window (days 1-180), as the paper uses."""
        return self.run(n_events, day_start=1, day_end=180, rounds=rounds)

    def run_test_window(self, n_events: int = 12_000) -> SearchLog:
        """Separate 15-day window (days 181-195) for unbiased test
        search counts, mirroring Section IV-B."""
        return self.run(n_events, day_start=181, day_end=195, rounds=1)
