"""Biased click model for simulated buyer sessions.

Reproduces the three biases the paper contextualises (Section I-A2):

* **Position bias** — click probability decays with rank
  (``1 / (1 + position) ** exponent``).
* **Exposure bias** — only the top-k impressions are ever shown, so
  low-ranked relevant items collect no clicks (Missing-Not-At-Random).
* **Popularity bias** — emerges from the feedback loop: clicks recorded
  into the :class:`~repro.search.engine.SearchEngine` boost future rank.

Relevant items are clicked with probability proportional to a static
per-item attractiveness; irrelevant ones receive a small noise click rate,
matching the paper's observation that clicks are reliable positives while
missing clicks are unreliable negatives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..data.catalog import Catalog
from ..data.relevance import oracle_relevant


@dataclass(frozen=True)
class ClickModelConfig:
    """Knobs of the click model."""

    position_exponent: float = 1.15
    base_click_rate: float = 0.32
    noise_click_rate: float = 0.12
    attractiveness_low: float = 0.35
    attractiveness_high: float = 1.0


class ClickModel:
    """Samples clicks for ranked impressions of a query.

    Args:
        catalog: Catalog (provides the latent product for relevance).
        config: Click-model parameters.
        seed: RNG seed for per-item attractiveness and click sampling.
    """

    def __init__(self, catalog: Catalog,
                 config: ClickModelConfig = ClickModelConfig(),
                 seed: int = 23) -> None:
        self._catalog = catalog
        self._config = config
        self._rng = np.random.default_rng(seed)
        self._attractiveness: Dict[int, float] = {}

    def _attract(self, item_id: int) -> float:
        value = self._attractiveness.get(item_id)
        if value is None:
            cfg = self._config
            value = float(self._rng.uniform(
                cfg.attractiveness_low, cfg.attractiveness_high))
            self._attractiveness[item_id] = value
        return value

    def position_bias(self, position: int) -> float:
        """Probability multiplier for a 0-based rank position."""
        return 1.0 / (1.0 + position) ** self._config.position_exponent

    def click_probability(self, item_id: int, query_tokens: Sequence[str],
                          position: int) -> float:
        """Per-impression click probability for one (item, query, rank)."""
        cfg = self._config
        product = self._catalog.product_of_item(item_id)
        if oracle_relevant(product, query_tokens):
            rate = cfg.base_click_rate * self._attract(item_id)
        else:
            rate = cfg.noise_click_rate
        return min(1.0, rate * self.position_bias(position))

    def sample_clicks(self, item_id: int, query_tokens: Sequence[str],
                      position: int, n_impressions: int) -> int:
        """Binomially sample clicks over ``n_impressions`` impressions."""
        if n_impressions <= 0:
            return 0
        p = self.click_probability(item_id, query_tokens, position)
        if p <= 0.0:
            return 0
        return int(self._rng.binomial(n_impressions, p))
