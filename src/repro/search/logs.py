"""Search-log records and window aggregations.

The log is the raw material for everything downstream:

* GraphEx curation consumes ``keyphrase_stats`` — (text, leaf, Search
  Count, Recall Count) tuples with **no item association** (Section III-B).
* The XMC baselines and the Rules Engine consume ``item_query_pairs`` —
  click-based item↔keyphrase ground truths, complete with the MNAR biases
  the paper warns about (Section I-A2).
* Figure 2 is the histogram of queries-per-clicked-item from this log.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class ClickEvent:
    """One buyer click on the search result page."""

    day: int
    query_text: str
    leaf_id: int
    item_id: int
    position: int


@dataclass(frozen=True)
class KeyphraseStat:
    """Aggregated statistics for one (keyphrase, leaf) pair in a window."""

    text: str
    leaf_id: int
    search_count: int
    recall_count: int


@dataclass
class SearchLog:
    """Aggregated search activity over a day window.

    Attributes:
        day_start: First day of the window (inclusive).
        day_end: Last day of the window (inclusive).
        search_counts: Searches per (leaf_id, query_text) in the window.
        recall_counts: Engine recall count per (leaf_id, query_text).
        clicks: Every click event, with its day.
    """

    day_start: int
    day_end: int
    search_counts: Dict[Tuple[int, str], int] = field(default_factory=dict)
    recall_counts: Dict[Tuple[int, str], int] = field(default_factory=dict)
    clicks: List[ClickEvent] = field(default_factory=list)

    @property
    def n_days(self) -> int:
        """Window length in days."""
        return self.day_end - self.day_start + 1

    @property
    def total_searches(self) -> int:
        """Total search events aggregated in the window."""
        return sum(self.search_counts.values())

    def keyphrase_stats(self) -> List[KeyphraseStat]:
        """Per-(keyphrase, leaf) stats — GraphEx's training input.

        Deliberately contains no item association: this is the click-bias
        decoupling at the heart of the paper.
        """
        return [
            KeyphraseStat(text=text, leaf_id=leaf_id,
                          search_count=count,
                          recall_count=self.recall_counts.get(
                              (leaf_id, text), 0))
            for (leaf_id, text), count in self.search_counts.items()
        ]

    def item_query_pairs(
        self,
        min_day: Optional[int] = None,
        max_day: Optional[int] = None,
        min_clicks: int = 1,
    ) -> Dict[int, Dict[str, int]]:
        """Click-based ground truths: item -> {query_text: click_count}.

        Args:
            min_day: Restrict to clicks on/after this day (e.g. the RE
                30-day lookback).
            max_day: Restrict to clicks on/before this day.
            min_clicks: Minimum clicks for a pair to be kept.

        Returns:
            Mapping from item id to its clicked queries and counts.
        """
        counts: Dict[int, Counter] = {}
        for click in self.clicks:
            if min_day is not None and click.day < min_day:
                continue
            if max_day is not None and click.day > max_day:
                continue
            counts.setdefault(click.item_id, Counter())[click.query_text] += 1
        out: Dict[int, Dict[str, int]] = {}
        for item_id, counter in counts.items():
            kept = {q: c for q, c in counter.items() if c >= min_clicks}
            if kept:
                out[item_id] = kept
        return out

    def queries_per_item_histogram(self) -> Dict[int, int]:
        """Figure 2: #clicked items keyed by how many distinct queries each has."""
        pairs = self.item_query_pairs()
        hist: Counter = Counter()
        for queries in pairs.values():
            hist[len(queries)] += 1
        return dict(hist)

    def clicked_item_ids(self) -> List[int]:
        """Ids of items with at least one click in the window."""
        return sorted({click.item_id for click in self.clicks})

    def search_count(self, leaf_id: int, text: str) -> int:
        """Search count of one (leaf, query) pair; 0 if never searched."""
        return self.search_counts.get((leaf_id, text), 0)

    def merged_with(self, other: "SearchLog") -> "SearchLog":
        """Union of two logs (summed counts, concatenated clicks)."""
        merged = SearchLog(
            day_start=min(self.day_start, other.day_start),
            day_end=max(self.day_end, other.day_end),
            search_counts=dict(self.search_counts),
            recall_counts=dict(self.recall_counts),
            clicks=list(self.clicks) + list(other.clicks),
        )
        for key, count in other.search_counts.items():
            merged.search_counts[key] = merged.search_counts.get(key, 0) + count
        for key, count in other.recall_counts.items():
            merged.recall_counts.setdefault(key, count)
        return merged


def click_sparsity(log: SearchLog, n_items_total: int) -> Dict[str, float]:
    """Summary of the click-data sparsity the paper reports (Section I-A2).

    Returns a dict with:
        ``frac_items_without_clicks`` — paper: ~96%.
        ``frac_clicked_items_single_query`` — paper: ~90%.
    """
    pairs = log.item_query_pairs()
    n_clicked = len(pairs)
    single = sum(1 for qs in pairs.values() if len(qs) == 1)
    return {
        "frac_items_without_clicks":
            1.0 - (n_clicked / n_items_total if n_items_total else 0.0),
        "frac_clicked_items_single_query":
            (single / n_clicked) if n_clicked else 0.0,
    }
