"""Cassini-like search engine over item titles.

Implements the two behaviours the paper relies on:

* **Recall Count** — "Cassini shows a sufficient number of items for each
  input query"; the recall count of a query is how many items it recalls
  (strict AND semantics over content tokens).
* **Leaf attribution** — "Cassini determines the leaf category of the
  keyphrase and it is the same as the top-ranked item's leaf category."

Ranking mixes lexical match with accumulated click *popularity*, which is
the feedback loop that produces the popularity/exposure biases of
Section I-A2: items that got clicks rank higher, get more exposure, and
collect even more clicks (MNAR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..data.catalog import Item
from ..data.queries import QUERY_STOPWORDS


@dataclass(frozen=True)
class SearchResult:
    """One ranked search result."""

    item_id: int
    score: float
    position: int


class SearchEngine:
    """Inverted-index search with popularity-biased ranking.

    Args:
        items: Items to index.
        seed: Seed for the static per-item attractiveness jitter used to
            break ties deterministically.
        popularity_weight: How strongly accumulated clicks boost ranking;
            0 disables the popularity-bias feedback loop.
    """

    def __init__(self, items: Sequence[Item], seed: int = 0,
                 popularity_weight: float = 0.35) -> None:
        self._items = list(items)
        self._popularity_weight = popularity_weight
        self._item_index: Dict[int, int] = {
            item.item_id: idx for idx, item in enumerate(self._items)}
        self._leaf_of = np.array([item.leaf_id for item in self._items],
                                 dtype=np.int64)
        self._item_ids = np.array([item.item_id for item in self._items],
                                  dtype=np.int64)
        self._title_len = np.zeros(len(self._items), dtype=np.float64)
        self._postings: Dict[str, np.ndarray] = {}
        buckets: Dict[str, List[int]] = {}
        for idx, item in enumerate(self._items):
            tokens = set(item.title_tokens)
            self._title_len[idx] = max(1, len(tokens))
            for token in tokens:
                buckets.setdefault(token, []).append(idx)
        for token, idxs in buckets.items():
            self._postings[token] = np.asarray(idxs, dtype=np.int64)

        rng = np.random.default_rng(seed)
        # Static per-item tie-break jitter, standing in for listing quality.
        self._jitter = rng.random(len(self._items)) * 1e-3
        self._clicks = np.zeros(len(self._items), dtype=np.float64)

    def __len__(self) -> int:
        return len(self._items)

    def _content_tokens(self, query_tokens: Iterable[str]) -> List[str]:
        return [t for t in query_tokens if t not in QUERY_STOPWORDS]

    def _match_counts(self, tokens: Sequence[str]):
        """Candidate item row indices and per-candidate matched-token counts."""
        unique = list(dict.fromkeys(tokens))
        posting_lists = [self._postings[t] for t in unique
                         if t in self._postings]
        if not posting_lists:
            return None, None, 0
        all_rows = np.concatenate(posting_lists)
        rows, counts = np.unique(all_rows, return_counts=True)
        return rows, counts, len(unique)

    def search(self, query_tokens: Sequence[str],
               top_k: int = 50) -> List[SearchResult]:
        """Rank items for a query.

        Score = fraction of query tokens present in the title, boosted by
        log-popularity (clicks seen so far) and a static jitter.

        Args:
            query_tokens: Tokenized query.
            top_k: Maximum results to return.

        Returns:
            Results in decreasing score order with 0-based positions.
        """
        content = self._content_tokens(query_tokens)
        rows, counts, n_terms = self._match_counts(content)
        if rows is None or n_terms == 0:
            return []
        frac = counts / n_terms
        pop = 1.0 + self._popularity_weight * np.log1p(self._clicks[rows])
        scores = frac * pop + self._jitter[rows]
        if len(rows) > top_k:
            top = np.argpartition(scores, -top_k)[-top_k:]
            rows, scores = rows[top], scores[top]
        order = np.argsort(-scores, kind="stable")
        return [
            SearchResult(item_id=int(self._item_ids[r]),
                         score=float(s), position=pos)
            for pos, (r, s) in enumerate(zip(rows[order], scores[order]))
        ]

    def recall_count(self, query_tokens: Sequence[str]) -> int:
        """Number of items recalled under strict AND semantics.

        An item is recalled when *every* content token of the query occurs
        in its title — matching the exact-query-match auction semantics the
        paper emphasises.
        """
        content = self._content_tokens(query_tokens)
        rows, counts, n_terms = self._match_counts(content)
        if rows is None or n_terms == 0:
            return 0
        return int(np.count_nonzero(counts == n_terms))

    def assign_leaf(self, query_tokens: Sequence[str]) -> Optional[int]:
        """Leaf category of the top-ranked item, or None if nothing matches."""
        results = self.search(query_tokens, top_k=1)
        if not results:
            return None
        row = self._item_index[results[0].item_id]
        return int(self._leaf_of[row])

    def record_click(self, item_id: int, amount: float = 1.0) -> None:
        """Feed a click back into the popularity signal."""
        row = self._item_index.get(item_id)
        if row is not None:
            self._clicks[row] += amount

    def popularity_of(self, item_id: int) -> float:
        """Accumulated click count for one item."""
        row = self._item_index.get(item_id)
        return float(self._clicks[row]) if row is not None else 0.0

    def reset_popularity(self) -> None:
        """Clear the popularity feedback signal."""
        self._clicks[:] = 0.0
