"""Lint findings and the machine-readable report they roll up into.

A :class:`Violation` is one broken invariant at one source location; a
:class:`Waiver` is one explicit, reasoned exemption a human wrote into
the source (see :mod:`repro.analysis.waivers`).  :class:`LintReport`
pairs the surviving violations with the waivers that were exercised and
serializes to the JSON schema CI archives (``schema_version`` guards
consumers against silent shape drift).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["LintReport", "Violation", "Waiver", "SCHEMA_VERSION"]

#: Bump when the JSON report shape changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Violation:
    """One broken invariant at one source location.

    ``path`` is whatever the caller linted under (a repo-relative file
    for the CLI, a virtual ``<module>`` marker for in-memory sources);
    ``module`` is the dotted module the engine resolved the file to —
    rules scope on it, so it is part of the finding.
    """

    rule: str
    path: str
    module: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The one-line human spelling: ``path:line:col: rule: msg``."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path,
                "module": self.module, "line": self.line,
                "col": self.col, "message": self.message}


@dataclass
class Waiver:
    """One ``# lint:`` waiver comment parsed out of a source file.

    Attributes:
        rules: Rule ids the comment waives.
        reason: The mandatory human reason (empty string when the
            author omitted it — the engine turns that into a
            ``waiver-syntax`` violation rather than honouring it).
        path, module, line: Where the comment sits.
        used: Set by the engine when the waiver suppressed at least one
            violation; an unused waiver is reported as stale.
    """

    rules: List[str]
    reason: str
    path: str
    module: str
    line: int
    used: bool = False

    def as_dict(self) -> dict:
        return {"rules": list(self.rules), "reason": self.reason,
                "path": self.path, "module": self.module,
                "line": self.line}


@dataclass
class LintReport:
    """Everything one lint run found, JSON-serializable for CI.

    ``violations`` are the findings that gate (exit code 1 when any
    survive); ``waived`` are findings a reasoned waiver suppressed —
    reported for audit, never gating.
    """

    root: str
    n_files: int
    rule_ids: List[str]
    violations: List[Violation] = field(default_factory=list)
    waived: List[Violation] = field(default_factory=list)
    waivers: List[Waiver] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_rule(self) -> Dict[str, int]:
        """Surviving violation count per rule id (zero-count rules
        included, so the JSON proves every rule actually ran)."""
        counts = {rule_id: 0 for rule_id in self.rule_ids}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def as_dict(self) -> dict:
        return {
            "tool": "repro-lint",
            "schema_version": SCHEMA_VERSION,
            "root": self.root,
            "ok": self.ok,
            "n_files": self.n_files,
            "n_violations": len(self.violations),
            "n_waived": len(self.waived),
            "violations_by_rule": self.by_rule(),
            "violations": [v.as_dict() for v in self.violations],
            "waived": [v.as_dict() for v in self.waived],
            "waivers": [w.as_dict() for w in self.waivers],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """Human-readable summary: one line per finding, then totals."""
        lines = [violation.render() for violation in self.violations]
        for violation in self.waived:
            lines.append(f"{violation.render()} [waived]")
        lines.append(
            f"repro-lint: {len(self.violations)} violation(s), "
            f"{len(self.waived)} waived, {self.n_files} file(s), "
            f"{len(self.rule_ids)} rule(s)")
        return "\n".join(lines)


def merge_rule_ids(rules: Sequence) -> List[str]:
    """Stable unique rule-id list for a report header."""
    seen: List[str] = []
    for rule in rules:
        if rule.id not in seen:
            seen.append(rule.id)
    return seen
