"""``python -m repro.analysis`` — the repo-wide invariant gate.

Exit codes: 0 clean (possibly with waived findings), 1 violations,
2 usage error.  ``--json`` writes the machine-readable report (the CI
artifact) regardless of outcome.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import engine
from .rules import RULE_CLASSES, get_rule

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=("repro-lint: AST-enforced concurrency, clock, "
                     "serialization, and import contracts"))
    parser.add_argument(
        "--root", type=Path, default=None,
        help="package directory to lint (default: the installed "
             "repro package)")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the machine-readable JSON report here")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE-ID",
        help="run only this rule (repeatable)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable report on success")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in RULE_CLASSES:
            print(f"{cls.id}: {cls.description}")
        return 0

    rules = None
    if args.rule:
        try:
            rules = [get_rule(rule_id) for rule_id in args.rule]
        except KeyError as exc:
            print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
            return 2

    report = engine.run(root=args.root, rules=rules)

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(report.to_json() + "\n", encoding="utf-8")

    if not report.ok or not args.quiet:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
