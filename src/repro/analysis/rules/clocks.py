"""monotonic-clock: timers never read the wall clock.

Deadlines, heartbeats, retry backoff, and the async front's batching
window are all *interval* measurements; ``time.time()`` jumps under
NTP step corrections and DST, which is how a 150 ms batching window
once became a 59-minute stall in the inspiration systems.  Interval
code must use ``time.monotonic()`` (or the loop's ``loop.time()``).

Scope is the timer-bearing modules named by the contract: everything
under ``repro.cluster`` (heartbeats, retry backoff, replan deadlines),
the async serving front (window timers), and everything under
``repro.obs`` (span durations, histogram timers, staleness gauges —
an observability plane that read the wall clock would *measure* the
very anomalies it exists to detect).  Operator-facing *timestamps*
(report fields, log lines) legitimately want wall-clock time — those
live outside this scope, or carry a reasoned waiver.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..report import Violation
from .base import FileContext, Rule, dotted

__all__ = ["MonotonicClockRule"]

#: Wall-clock reads banned in timer scope.
WALL_CLOCK_CALLS = frozenset({"time.time", "datetime.now",
                              "datetime.utcnow", "datetime.today"})


class MonotonicClockRule(Rule):
    id = "monotonic-clock"
    description = ("time.time() banned in deadline/heartbeat/backoff/"
                   "window-timer paths (cluster/, retry, async_front, "
                   "obs/)")

    SCOPES = ("repro.cluster.", "repro.obs.")
    SCOPE_MODULES = ("repro.serving.async_front", "repro.obs")

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.module.startswith(self.SCOPES)
                or ctx.module in self.SCOPE_MODULES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name is None:
                continue
            tail2 = ".".join(name.split(".")[-2:])
            if name in WALL_CLOCK_CALLS or tail2 in WALL_CLOCK_CALLS:
                violations.append(self.violation(
                    ctx, node,
                    f"wall-clock read {name}() in a timer path; use "
                    f"time.monotonic() / loop.time() for intervals "
                    f"(waive only for operator-facing timestamps)"))
        return violations
