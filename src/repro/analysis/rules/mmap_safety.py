"""mmap-write-safety: serving code never mutates model-plane arrays.

Format-v3 models are served as read-only ``np.memmap`` views shared by
every worker process on the box; the arrays are opened write-protected
precisely so a serving-path bug cannot corrupt the file every process
is mapping.  This rule flags the two ways serving code can defeat
that: re-enabling writes with ``.setflags(write=True)``, and in-place
element/slice stores (``model.data[i] = ...``, ``graph.weights += d``)
on receivers that look like model-plane arrays.  Serving code that
needs modified arrays copies first (``np.array(...)``, delta overlays
in the NRT store) — mutation belongs in the build plane.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional

from ..report import Violation
from .base import FileContext, Rule, dotted

__all__ = ["MmapWriteSafetyRule"]

#: Receiver spellings that mean "a model-plane array" in this codebase:
#: the model object itself, leaf/pooled graphs, and the CSR component
#: arrays the v3 format mmaps.
_MODELISH_RE = re.compile(
    r"(model|graph|csr|indptr|indices|weights|embedd|offsets)",
    re.IGNORECASE)


class MmapWriteSafetyRule(Rule):
    id = "mmap-write-safety"
    description = ("no in-place mutation of mmap'd model-plane arrays "
                   "in serving code (writes corrupt the shared "
                   "read-only mapping)")

    SCOPES = ("repro.serving.",)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith(self.SCOPES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                label = self._setflags_write(node)
                if label:
                    violations.append(self.violation(
                        ctx, node,
                        f"{label}.setflags(write=True) defeats the "
                        f"read-only mmap protection; copy the array "
                        f"instead of unprotecting it"))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    label = self._model_store_target(target)
                    if label:
                        violations.append(self.violation(
                            ctx, node,
                            f"in-place store into model-plane array "
                            f"{label}; serving must treat mmap'd "
                            f"arrays as immutable (copy, or overlay "
                            f"deltas in the store)"))
            elif isinstance(node, ast.AugAssign):
                label = self._model_store_target(node.target,
                                                 allow_attribute=True)
                if label:
                    violations.append(self.violation(
                        ctx, node,
                        f"in-place augmented store into model-plane "
                        f"array {label}; serving must treat mmap'd "
                        f"arrays as immutable"))
        return violations

    @staticmethod
    def _setflags_write(call: ast.Call) -> Optional[str]:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "setflags"):
            return None
        for kw in call.keywords:
            if kw.arg == "write" and not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value in (False, None)):
                return dotted(func.value) or "<array>"
        return None

    @staticmethod
    def _model_store_target(target: ast.AST,
                            allow_attribute: bool = False
                            ) -> Optional[str]:
        base = None
        if isinstance(target, ast.Subscript):
            base = target.value
        elif allow_attribute and isinstance(target, ast.Attribute):
            base = target
        if base is None:
            return None
        name = dotted(base)
        if name is not None and _MODELISH_RE.search(name):
            return name
        return None
