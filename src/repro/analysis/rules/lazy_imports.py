"""lazy-import-contract: the real import graph matches the declared one.

PR 4 broke the ``batch -> sharding -> fast_inference -> batch`` cycle
by demoting specific imports to function scope, and pinned that with
an ad-hoc AST test over one file.  This rule replaces the pin with the
general contract, computed over the *actual* module graph every run:

1. **Acyclicity** — the module-level import graph (``TYPE_CHECKING``
   blocks excluded; they never execute) must contain no cycles.  A new
   module-level cycle is reported as one violation per strongly
   connected component.
2. **Declared lazy edges** — each edge in ``DECLARED_LAZY_EDGES`` must
   exist *only* at function scope: importing it at module level
   re-creates the coupling the edge was demoted to break, and if the
   lazy import disappears entirely the declaration is stale and must
   be pruned (both are violations, so the declaration table can never
   drift from the code).

Imports are resolved (including relative ``from . import x``) against
the set of modules in the run, so the rule works identically on the
repo and on multi-module fixture files.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..report import Violation
from .base import FileContext, Rule

__all__ = ["LazyImportContractRule", "module_imports"]

#: (importer, imported) edges that must stay function-scoped.  These
#: are the cycle-breaking demotions from PR 4/8: batch and sharding
#: dispatch through the execution plane only at call time.
DEFAULT_DECLARED_LAZY_EDGES = frozenset({
    ("repro.core.batch", "repro.core.execution"),
    ("repro.core.batch", "repro.core.fast_inference"),
    ("repro.core.sharding", "repro.core.execution"),
})

#: (target, lineno) import edges out of one module.
_Edges = List[Tuple[str, int]]


def _is_type_checking_if(node: ast.If) -> bool:
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and \
        test.attr == "TYPE_CHECKING"


def _resolve_from(node: ast.ImportFrom, module: str,
                  is_package: bool) -> Optional[str]:
    """Absolute dotted base of a ``from X import ...`` statement."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = node.level - 1
    if drop > len(parts):
        return None
    parts = parts[:len(parts) - drop] if drop else parts
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts) if parts else None


def _edge_targets(base: str, names: Sequence[ast.alias],
                  known: Set[str]) -> Set[str]:
    """Which known modules a resolved import statement reaches."""
    targets: Set[str] = set()
    for alias in names:
        candidate = f"{base}.{alias.name}"
        if candidate in known:
            targets.add(candidate)
        elif base in known:
            targets.add(base)
    if not targets:
        # ``import a.b.c`` style: longest known prefix.
        parts = base.split(".")
        for end in range(len(parts), 0, -1):
            prefix = ".".join(parts[:end])
            if prefix in known:
                targets.add(prefix)
                break
    return targets


def module_imports(ctx: FileContext, known: Set[str]
                   ) -> Tuple[Dict[str, _Edges], Dict[str, _Edges]]:
    """``(module_level, function_scoped)`` intra-project import edges
    of ``ctx``, each mapping target module -> [(target, lineno), ...].
    """
    is_package = ctx.path.endswith("__init__.py")
    module_level: Dict[str, _Edges] = {}
    lazy: Dict[str, _Edges] = {}

    def record(sink: Dict[str, _Edges], node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                for target in _edge_targets(alias.name, [], known):
                    sink.setdefault(target, []).append(
                        (target, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from(node, ctx.module, is_package)
            if base is None:
                return
            for target in _edge_targets(base, node.names, known):
                sink.setdefault(target, []).append(
                    (target, node.lineno))

    def visit(node: ast.AST, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and \
                    _is_type_checking_if(child):
                continue  # never executes at runtime
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                record(lazy if in_function else module_level, child)
            nested = in_function or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef))
            visit(child, nested)

    visit(ctx.tree, in_function=False)
    return module_level, lazy


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components of size > 1 (plus self-loops),
    via Tarjan — each is one cycle to report."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1 or node in graph.get(node, ()):
                sccs.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sccs


class LazyImportContractRule(Rule):
    id = "lazy-import-contract"
    description = ("module-level import graph stays acyclic and "
                   "declared lazy edges stay function-scoped")
    project_wide = True

    def __init__(self, declared_lazy=DEFAULT_DECLARED_LAZY_EDGES):
        self.declared_lazy = frozenset(declared_lazy)

    def check_project(self, ctxs: Sequence[FileContext]
                      ) -> Iterable[Violation]:
        known = {ctx.module for ctx in ctxs}
        by_module = {ctx.module: ctx for ctx in ctxs}
        module_level: Dict[str, Dict[str, _Edges]] = {}
        lazy: Dict[str, Dict[str, _Edges]] = {}
        for ctx in ctxs:
            module_level[ctx.module], lazy[ctx.module] = \
                module_imports(ctx, known)

        violations: List[Violation] = []

        graph = {mod: set(edges) for mod, edges in module_level.items()}
        for cycle in _find_cycles(graph):
            anchor_mod = cycle[0]
            ctx = by_module[anchor_mod]
            # Anchor at the first in-cycle import of the anchor module.
            lineno = min((recs[0][1]
                          for target, recs in
                          module_level[anchor_mod].items()
                          if target in cycle), default=1)
            violations.append(Violation(
                rule=self.id, path=ctx.path, module=ctx.module,
                line=lineno, col=0,
                message=("module-level import cycle: "
                         + " <-> ".join(cycle)
                         + "; demote one edge to a function-scoped "
                           "(lazy) import")))

        for src, dst in sorted(self.declared_lazy):
            if src not in known or dst not in known:
                continue  # edge outside this run's module set
            ctx = by_module[src]
            eager = module_level[src].get(dst)
            if eager:
                violations.append(Violation(
                    rule=self.id, path=ctx.path, module=src,
                    line=eager[0][1], col=0,
                    message=(f"{src} -> {dst} is a declared lazy edge "
                             f"but is imported at module level; move "
                             f"the import into the using function")))
            elif dst not in lazy[src]:
                violations.append(Violation(
                    rule=self.id, path=ctx.path, module=src,
                    line=1, col=0,
                    message=(f"declared lazy edge {src} -> {dst} no "
                             f"longer exists in the code; prune it "
                             f"from DECLARED_LAZY_EDGES")))
        return violations
