"""Rule plumbing: the per-file context, the Rule interface, AST helpers.

Every rule sees a :class:`FileContext` — parsed AST plus the resolved
dotted module name, which is what rules *scope* on (``repro.serving.*``
vs ``repro.cluster.*``), so the same rule runs identically over real
repo files and over in-memory fixture sources with virtual module
names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..report import Violation

__all__ = ["FileContext", "Rule", "dotted", "walk_function_body",
           "async_function_defs", "function_defs"]


@dataclass
class FileContext:
    """One parsed source file as the rules see it."""

    path: str            # display path (repo-relative file or marker)
    module: str          # dotted module name, e.g. repro.serving.nrt
    source: str
    tree: ast.Module

    @classmethod
    def from_source(cls, source: str, *, path: str,
                    module: str) -> "FileContext":
        return cls(path=path, module=module, source=source,
                   tree=ast.parse(source, filename=path))


class Rule:
    """One enforced invariant.

    Subclasses set ``id``/``description``, restrict themselves with
    :meth:`applies_to`, and implement :meth:`check` (per file).  A rule
    whose invariant spans files (the import-graph contract) sets
    ``project_wide = True`` and implements :meth:`check_project`
    instead; the engine hands it every context of the run at once.
    """

    id: str = ""
    description: str = ""
    project_wide: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        return ()

    def check_project(self, ctxs: Sequence[FileContext]
                      ) -> Iterable[Violation]:
        return ()

    def violation(self, ctx: FileContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(rule=self.id, path=ctx.path, module=ctx.module,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         message=message)


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _iter_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Children of ``node``, not descending into nested function or
    lambda bodies (those run in their own execution context — e.g. a
    sync helper dispatched to an executor from an async def)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        yield from _iter_shallow(child)


def walk_function_body(fn: ast.AST) -> Iterator[ast.AST]:
    """Every node lexically inside ``fn``'s own body, excluding nested
    function/lambda bodies (each nested def is visited as its own
    function by the callers that want it)."""
    for stmt in fn.body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield from _iter_shallow(stmt)


def async_function_defs(tree: ast.Module
                        ) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def function_defs(tree: ast.Module) -> Iterator[Tuple[ast.AST, bool]]:
    """Every function def in the file as ``(node, is_async)``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, isinstance(node, ast.AsyncFunctionDef)
