"""async-no-blocking: the event loop never runs blocking work inline.

The serving front and the cluster plane are single-event-loop hot
paths; one inline ``time.sleep``, file open, ``transaction_lock``
acquisition, or ``concurrent.futures`` ``.result()`` stalls every
connection the loop is carrying (PR 6-8 each shipped a fix for exactly
this shape).  The rule walks every ``async def`` body in
``repro.serving.*`` / ``repro.cluster.*`` and flags known-blocking
calls that are not awaited.

Deliberately out of scope, to stay false-positive-free:

* nested *sync* ``def``/``lambda`` bodies — those are the helpers the
  fix dispatches through ``loop.run_in_executor``;
* awaited calls (``await asyncio.sleep`` is the non-blocking spelling);
* bare ``.write()``/``.close()`` attribute calls — asyncio
  ``StreamWriter`` uses those names non-blockingly, so they cannot be
  distinguished statically.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from ..report import Violation
from .base import FileContext, Rule, dotted, walk_function_body

__all__ = ["AsyncNoBlockingRule"]

#: Fully-dotted calls that always block the calling thread.
BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "shutil.rmtree", "shutil.copy", "shutil.copy2", "shutil.copyfile",
    "shutil.copytree", "shutil.move",
    "tempfile.mkdtemp", "tempfile.mkstemp",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output",
    "os.replace", "os.rename", "os.makedirs", "os.remove", "os.unlink",
    "socket.create_connection",
})

#: Bare-name calls that block (``open``) or synchronously take the
#: store's RLock (``transaction_lock``) — lock waits are unbounded.
BLOCKING_NAMES = frozenset({"open", "transaction_lock", "open_model",
                            "save_model"})

#: Method names that block regardless of receiver: concurrent.futures
#: ``.result()``, threading-lock ``.acquire()``, pathlib filesystem
#: touches.  Kept to names with no common non-blocking homonym in this
#: codebase.
BLOCKING_ATTRS = frozenset({"result", "acquire", "mkdir", "rmdir",
                            "write_text", "read_text", "write_bytes",
                            "read_bytes", "unlink"})


class AsyncNoBlockingRule(Rule):
    id = "async-no-blocking"
    description = ("no blocking calls (sleep/file I/O/lock "
                   "acquisition/.result()) inside async def bodies in "
                   "serving/ and cluster/")

    SCOPES = ("repro.serving.", "repro.cluster.")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith(self.SCOPES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                violations.extend(self._check_async_def(ctx, node))
        return violations

    def _check_async_def(self, ctx: FileContext,
                         fn: ast.AsyncFunctionDef) -> List[Violation]:
        awaited: Set[int] = set()
        for node in walk_function_body(fn):
            if isinstance(node, ast.Await) and isinstance(node.value,
                                                          ast.Call):
                awaited.add(id(node.value))
        violations: List[Violation] = []
        for node in walk_function_body(fn):
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            label = self._blocking_label(node)
            if label is not None:
                violations.append(self.violation(
                    ctx, node,
                    f"blocking call {label}() inside async def "
                    f"{fn.name}; dispatch it through "
                    f"loop.run_in_executor (or await the async "
                    f"equivalent)"))
        return violations

    @staticmethod
    def _blocking_label(call: ast.Call) -> Optional[str]:
        func = call.func
        name = dotted(func)
        if name is not None:
            # Match on the trailing dotted pair so aliased module
            # access (``self._shutil.rmtree``) still hits.
            tail2 = ".".join(name.split(".")[-2:])
            if name in BLOCKING_DOTTED or tail2 in BLOCKING_DOTTED:
                return name
            if "." not in name and name in BLOCKING_NAMES:
                return name
        if isinstance(func, ast.Attribute) and func.attr in BLOCKING_ATTRS:
            return dotted(func) or func.attr
        return None
