"""no-pickle-boundary: process and wire boundaries carry no pickles.

Cluster frames cross machine boundaries (JSON frames + base64 chunks
via ``protocol.py``) and shard results cross process boundaries (plain
JSON-able tuples, with models re-opened from v3 leaf bundles on the
far side).  Pickle at either boundary would silently couple the wire
format to interpreter internals, break cross-version clusters, and —
on the receiving coordinator — execute attacker-controlled bytecode.
The rule bans importing or calling ``pickle`` (and its drop-ins) in
``repro.cluster.*`` and the process-shard execution module.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..report import Violation
from .base import FileContext, Rule, dotted

__all__ = ["NoPickleBoundaryRule"]

#: pickle and its drop-in replacements.
PICKLE_MODULES = frozenset({"pickle", "cPickle", "dill", "cloudpickle",
                            "marshal"})


class NoPickleBoundaryRule(Rule):
    id = "no-pickle-boundary"
    description = ("no pickle in cluster/ or process-shard return "
                   "paths; payloads go through protocol.py codecs or "
                   "v3 leaf bundles")

    SCOPES = ("repro.cluster.",)
    SCOPE_MODULES = ("repro.core.execution",)

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.module.startswith(self.SCOPES)
                or ctx.module in self.SCOPE_MODULES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in PICKLE_MODULES:
                        violations.append(self.violation(
                            ctx, node, self._message(root)))
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in PICKLE_MODULES:
                    violations.append(self.violation(
                        ctx, node, self._message(root)))
            elif isinstance(node, ast.Call):
                name = dotted(node.func)
                if name and name.split(".")[0] in PICKLE_MODULES:
                    violations.append(self.violation(
                        ctx, node, self._message(name)))
        return violations

    @staticmethod
    def _message(what: str) -> str:
        return (f"pickle-family usage ({what}) at a process/wire "
                f"boundary; serialize through repro.cluster.protocol "
                f"codecs or v3 leaf bundles instead")
