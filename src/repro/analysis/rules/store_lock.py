"""store-lock-discipline: multi-step store mutations are transactional.

The :class:`~repro.serving.kvstore.KeyValueStore` write protocol is
stage -> fill -> promote; a function that issues two or more mutating
calls without entering ``transaction_lock`` can interleave with the
daily-refresh swap and strand sentinels or serve a half-promoted
version (the PR 6 "stranded staged version" bug).  Any function in
``serving/`` or ``cluster/`` making >= 2 mutating store calls must
either enter ``with transaction_lock(...)`` itself or carry the
``# lint: caller-locked: <reason>`` waiver above its ``def`` stating
which caller owns the lock.

Receiver heuristics keep this sound without type inference: the
distinctive mutator names (``create_version``/``promote``/...) exist
only on the store, so they count on any receiver; the generic names
(``put``/``delete``/``prune``) also live on dicts and asyncio queues,
so they count only when the receiver text looks store-ish
(``store``/``kv`` in the dotted path).  ``kvstore.py`` itself is
exempt — it is the lock's implementation, not a client.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from ..report import Violation
from .base import FileContext, Rule, dotted, function_defs, \
    walk_function_body

__all__ = ["StoreLockDisciplineRule"]

#: Mutator names unique to KeyValueStore — counted on any receiver.
DISTINCTIVE_MUTATORS = frozenset({
    "create_version", "promote", "abandon", "copy_from_serving",
    "bulk_load",
})

#: Mutator names shared with dicts/queues — counted only on a
#: store-looking receiver.
GENERIC_MUTATORS = frozenset({"put", "delete", "prune"})

_STOREISH_RE = re.compile(r"(store|kv)", re.IGNORECASE)


class StoreLockDisciplineRule(Rule):
    id = "store-lock-discipline"
    description = (">= 2 mutating KeyValueStore calls in one function "
                   "must hold transaction_lock (or carry a "
                   "caller-locked waiver)")

    SCOPES = ("repro.serving.", "repro.cluster.")
    EXEMPT_MODULES = ("repro.serving.kvstore",)

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.module.startswith(self.SCOPES)
                and ctx.module not in self.EXEMPT_MODULES)

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        violations: List[Violation] = []
        for fn, _is_async in function_defs(ctx.tree):
            mutations = []
            holds_lock = False
            for node in walk_function_body(fn):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    if any(self._is_transaction_lock(item.context_expr)
                           for item in node.items):
                        holds_lock = True
                elif isinstance(node, ast.Call):
                    name = self._mutator_name(node)
                    if name is not None:
                        mutations.append(name)
            if len(mutations) >= 2 and not holds_lock:
                violations.append(self.violation(
                    ctx, fn,
                    f"{fn.name} makes {len(mutations)} mutating store "
                    f"calls ({', '.join(sorted(set(mutations)))}) "
                    f"without entering transaction_lock; wrap them or "
                    f"waive with '# lint: caller-locked: <reason>'"))
        return violations

    @staticmethod
    def _is_transaction_lock(expr: ast.AST) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        name = dotted(expr.func)
        return name is not None and \
            name.split(".")[-1] == "transaction_lock"

    @staticmethod
    def _mutator_name(call: ast.Call):
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in DISTINCTIVE_MUTATORS:
            return func.attr
        if func.attr in GENERIC_MUTATORS:
            receiver = dotted(func.value)
            if receiver is not None and _STOREISH_RE.search(receiver):
                return func.attr
        return None
