"""The rule registry: every enforced invariant, one place.

``default_rules()`` returns fresh instances of all registered rules in
a stable order; ``get_rule(id)`` resolves one by its public id (what
``--rule`` on the CLI and waiver comments use).  Adding an invariant
means adding a module here and registering its class — the engine,
CLI, JSON report, and the repo-wide test pick it up automatically.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import FileContext, Rule
from .async_blocking import AsyncNoBlockingRule
from .store_lock import StoreLockDisciplineRule
from .clocks import MonotonicClockRule
from .pickle_boundary import NoPickleBoundaryRule
from .lazy_imports import LazyImportContractRule
from .mmap_safety import MmapWriteSafetyRule

__all__ = ["FileContext", "Rule", "RULE_CLASSES", "default_rules",
           "get_rule", "rule_ids"]

#: Stable registry order — also the order rules run and report.
RULE_CLASSES: List[Type[Rule]] = [
    AsyncNoBlockingRule,
    StoreLockDisciplineRule,
    MonotonicClockRule,
    NoPickleBoundaryRule,
    LazyImportContractRule,
    MmapWriteSafetyRule,
]


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in RULE_CLASSES]


def rule_ids() -> List[str]:
    return [cls.id for cls in RULE_CLASSES]


def get_rule(rule_id: str) -> Rule:
    by_id: Dict[str, Type[Rule]] = {cls.id: cls for cls in RULE_CLASSES}
    try:
        return by_id[rule_id]()
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: "
            f"{', '.join(sorted(by_id))}") from None
