"""Waiver-comment parsing: explicit, reasoned exemptions in the source.

A waiver is the only sanctioned way to silence a rule, and it must name
the rule *and* carry a reason::

    # lint: waive monotonic-clock: report timestamps are operator-facing
    # lint: waive async-no-blocking, monotonic-clock: teardown path

plus one domain shorthand for the store-lock rule (a function whose
caller owns the transaction)::

    # lint: caller-locked: NRTService.flush holds the store lock

A waiver applies to violations on its own line (trailing comment) or on
the line immediately below (comment-above style, which is how function
level findings — reported at the ``def`` line — are waived).

Two degenerate shapes are themselves reported as violations by the
engine rather than honoured silently: a waiver with no reason
(``waiver-syntax``) and a waiver that suppresses nothing
(``waiver-unused``) — so waivers can never rot into invisible mute
buttons.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterator, List, Tuple

from .report import Waiver

__all__ = ["parse_waivers", "CALLER_LOCKED_RULE"]

#: The rule id the ``caller-locked`` shorthand expands to.
CALLER_LOCKED_RULE = "store-lock-discipline"

_WAIVER_RE = re.compile(
    r"#\s*lint:\s*"
    r"(?:(?P<shorthand>caller-locked)|waive\s+(?P<rules>[a-z0-9-]+"
    r"(?:\s*,\s*[a-z0-9-]+)*))"
    r"\s*(?::\s*(?P<reason>.*?))?\s*$")

#: A comment that *starts* like a waiver.  Anchored at the comment
#: start so prose that merely quotes a waiver (docs, this module) is
#: not mistaken for one; an anchored match that then fails the full
#: grammar is reported instead of ignored.
_WAIVERISH_RE = re.compile(r"#\s*lint:")


def _comments(source: str) -> Iterator[Tuple[int, str]]:
    """``(lineno, text)`` of every real comment token — string
    literals quoting ``# lint:`` in documentation never count."""
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            yield tok.start[0], tok.string


def parse_waivers(source: str, path: str,
                  module: str) -> List[Waiver]:
    """Extract every waiver comment from ``source``.

    A malformed waiver-looking comment is returned as a
    :class:`Waiver` with an empty rule list, which the engine reports
    as ``waiver-syntax`` — silently ignoring a typo'd waiver would
    leave its author believing the finding is suppressed.
    """
    waivers: List[Waiver] = []
    for lineno, comment in _comments(source):
        if not _WAIVERISH_RE.match(comment):
            continue
        match = _WAIVER_RE.match(comment)
        if match is None:
            waivers.append(Waiver(rules=[], reason="", path=path,
                                  module=module, line=lineno))
            continue
        if match.group("shorthand"):
            rules = [CALLER_LOCKED_RULE]
        else:
            rules = [rule.strip()
                     for rule in match.group("rules").split(",")]
        reason = (match.group("reason") or "").strip()
        waivers.append(Waiver(rules=rules, reason=reason, path=path,
                              module=module, line=lineno))
    return waivers
