"""The lint engine: files -> contexts -> rules -> waivers -> report.

The pipeline is deliberately dumb: parse every file once into a
:class:`FileContext`, run each per-file rule over each context it
applies to, hand project-wide rules the whole context set, then apply
waiver comments.  Two meta-rules run after waiver application so
waivers themselves stay honest:

* ``waiver-syntax`` — a ``# lint:`` comment that did not parse or
  omitted its mandatory reason.
* ``waiver-unused`` — a well-formed waiver that suppressed nothing
  this run (stale waivers are how suppression rot starts).

Meta-violations cannot themselves be waived.

Fixture support: :func:`lint_sources` lints in-memory sources keyed by
virtual module name, and :func:`split_fixture` explodes one fixture
file containing several ``# lint-fixture-module: <dotted>`` sections
into that mapping — so multi-module rules (the import contract) get
fixture coverage from a single file on disk.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .report import LintReport, Violation, Waiver
from .rules import FileContext, Rule, default_rules
from .rules import rule_ids as registered_rule_ids
from .waivers import parse_waivers

__all__ = ["lint_contexts", "lint_files", "lint_sources", "run",
           "split_fixture", "default_root", "iter_source_files",
           "module_name_for", "META_RULE_IDS"]

#: Rule ids the engine itself emits (not waivable, not in the registry).
META_RULE_IDS = ("waiver-syntax", "waiver-unused")

FIXTURE_DIRECTIVE = "# lint-fixture-module:"


def default_root() -> Path:
    """The installed ``repro`` package directory — what a bare
    ``python -m repro.analysis`` lints, independent of cwd."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Path) -> List[Path]:
    return sorted(path for path in root.rglob("*.py"))


def module_name_for(path: Path, package_root: Path) -> str:
    """Dotted module name of ``path`` relative to the directory that
    *contains* the package root (src/repro/serving/nrt.py ->
    repro.serving.nrt; __init__.py names the package itself)."""
    rel = path.resolve().relative_to(package_root.resolve().parent)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _display_path(path: Path) -> str:
    try:
        return os.path.relpath(path)
    except ValueError:  # different drive (windows)
        return str(path)


def lint_contexts(ctxs: Sequence[FileContext],
                  rules: Optional[Sequence[Rule]] = None,
                  root: str = "<memory>") -> LintReport:
    """Run ``rules`` (default: the full registry) over parsed contexts
    and fold in waivers."""
    rules = list(default_rules() if rules is None else rules)
    raw: List[Violation] = []
    for rule in rules:
        if rule.project_wide:
            raw.extend(rule.check_project(
                [ctx for ctx in ctxs if rule.applies_to(ctx)]))
        else:
            for ctx in ctxs:
                if rule.applies_to(ctx):
                    raw.extend(rule.check(ctx))

    waivers: List[Waiver] = [waiver for ctx in ctxs
               for waiver in parse_waivers(ctx.source, ctx.path,
                                           ctx.module)]

    surviving, waived = _apply_waivers(raw, waivers)
    surviving.extend(_meta_violations(
        waivers, run_ids={rule.id for rule in rules}))
    surviving.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    waived.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    return LintReport(
        root=root, n_files=len(ctxs),
        rule_ids=[rule.id for rule in rules] + list(META_RULE_IDS),
        violations=surviving, waived=waived, waivers=waivers)


def _apply_waivers(raw: Sequence[Violation],
                   waivers: Sequence[Waiver]
                   ) -> Tuple[List[Violation], List[Violation]]:
    surviving: List[Violation] = []
    waived: List[Violation] = []
    for violation in raw:
        match = None
        for waiver in waivers:
            if (waiver.rules and waiver.reason
                    and waiver.path == violation.path
                    and violation.rule in waiver.rules
                    and violation.line in (waiver.line,
                                           waiver.line + 1)):
                match = waiver
                break
        if match is None:
            surviving.append(violation)
        else:
            match.used = True
            waived.append(violation)
    return surviving, waived


def _meta_violations(waivers: Sequence[Waiver],
                     run_ids: set) -> List[Violation]:
    registered = set(registered_rule_ids())
    meta: List[Violation] = []
    for waiver in waivers:
        unknown = [rule for rule in waiver.rules
                   if rule not in registered]
        if not waiver.rules:
            meta.append(Violation(
                rule="waiver-syntax", path=waiver.path,
                module=waiver.module, line=waiver.line, col=0,
                message=("unparseable '# lint:' comment; expected "
                         "'# lint: waive <rule>[, <rule>]: <reason>' "
                         "or '# lint: caller-locked: <reason>'")))
        elif unknown:
            # Also catches attempts to waive the meta-rules: they are
            # not registered, hence not waivable.
            meta.append(Violation(
                rule="waiver-syntax", path=waiver.path,
                module=waiver.module, line=waiver.line, col=0,
                message=(f"waiver names unknown rule(s) "
                         f"{', '.join(unknown)}; known: "
                         f"{', '.join(sorted(registered))}")))
        elif not waiver.reason:
            meta.append(Violation(
                rule="waiver-syntax", path=waiver.path,
                module=waiver.module, line=waiver.line, col=0,
                message=(f"waiver for {', '.join(waiver.rules)} has "
                         f"no reason; a waiver must say why the "
                         f"finding is safe")))
        elif not waiver.used and \
                any(rule in run_ids for rule in waiver.rules):
            # Staleness is only judged when at least one waived rule
            # actually ran — a --rule subset must not flag waivers it
            # never exercised.
            meta.append(Violation(
                rule="waiver-unused", path=waiver.path,
                module=waiver.module, line=waiver.line, col=0,
                message=(f"waiver for {', '.join(waiver.rules)} "
                         f"suppressed nothing; delete the stale "
                         f"comment")))
    return meta


def lint_files(paths: Sequence[Path],
               package_root: Optional[Path] = None,
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    package_root = package_root or default_root()
    ctxs = [FileContext.from_source(
        path.read_text(encoding="utf-8"),
        path=_display_path(path),
        module=module_name_for(path, package_root))
        for path in paths]
    return lint_contexts(ctxs, rules=rules, root=str(package_root))


def lint_sources(sources: Dict[str, str],
                 rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint in-memory sources keyed by virtual dotted module name."""
    ctxs = [FileContext.from_source(source, path=f"<{module}>",
                                    module=module)
            for module, source in sources.items()]
    return lint_contexts(ctxs, rules=rules)


def split_fixture(text: str) -> Dict[str, str]:
    """Explode a fixture file into ``{module: source}`` sections.

    Sections start at ``# lint-fixture-module: <dotted>`` lines; text
    before the first directive (fixture commentary) is dropped.  Each
    section is padded with blank lines so violation line numbers match
    the fixture file on disk — failures point at real lines.
    """
    sections: Dict[str, str] = {}
    current: Optional[str] = None
    pad = 0
    buf: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith(FIXTURE_DIRECTIVE):
            if current is not None:
                sections[current] = "\n".join([""] * pad + buf) + "\n"
            current = stripped[len(FIXTURE_DIRECTIVE):].strip()
            pad = lineno  # blank padding up to and incl. directive
            buf = []
        elif current is not None:
            buf.append(line)
    if current is not None:
        sections[current] = "\n".join([""] * pad + buf) + "\n"
    return sections


def run(root: Optional[Path] = None,
        rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint every ``*.py`` under ``root`` (default: the repro
    package)."""
    root = Path(root) if root is not None else default_root()
    return lint_files(iter_source_files(root), package_root=root,
                      rules=rules)
