"""repro-lint: project-specific static analysis for the repro codebase.

The system's correctness rests on cross-cutting invariants no unit
test can pin for code that does not exist yet: the event loop never
blocks, multi-step store mutations hold the transaction lock, timers
read monotonic clocks, nothing pickles across process or wire
boundaries, the module-level import graph stays acyclic with its
declared lazy edges, and serving never writes into mmap'd model
arrays.  This package walks the AST of every module and enforces each
contract as a CI-gated rule.

Entry points
------------
* ``python -m repro.analysis`` / ``repro-cli lint`` — repo-wide run,
  exit 1 on any unwaived violation.
* :func:`run` / :func:`lint_files` / :func:`lint_sources` — library
  API (``lint_sources`` lints in-memory fixtures by virtual module
  name, which is how the per-rule self-tests work).

Findings are suppressed only by an explicit reasoned waiver comment
(see :mod:`repro.analysis.waivers`); the engine reports malformed and
stale waivers as violations in their own right.
"""

from __future__ import annotations

from .engine import (META_RULE_IDS, default_root, lint_contexts,
                     lint_files, lint_sources, run, split_fixture)
from .report import SCHEMA_VERSION, LintReport, Violation, Waiver
from .rules import (RULE_CLASSES, FileContext, Rule, default_rules,
                    get_rule, rule_ids)

__all__ = [
    "run", "lint_files", "lint_sources", "lint_contexts",
    "split_fixture", "default_root", "META_RULE_IDS",
    "LintReport", "Violation", "Waiver", "SCHEMA_VERSION",
    "Rule", "FileContext", "RULE_CLASSES", "default_rules",
    "get_rule", "rule_ids",
]
