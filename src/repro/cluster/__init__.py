"""Fault-tolerant multi-machine shard runner (see ROADMAP: cluster).

The package splits along the trust boundary:

* :mod:`~repro.cluster.protocol` — framing and wire codecs (the only
  place wire shapes are defined).
* :mod:`~repro.cluster.transport` — framed asyncio transports and the
  deterministic fault injector used by the robustness suite.
* :mod:`~repro.cluster.retry` — the shared capped-backoff-with-jitter
  policy (also used by the daily refresh orchestrator).
* :mod:`~repro.cluster.worker` — one executor host.
* :mod:`~repro.cluster.coordinator` — plans, dispatches, retries,
  re-plans around dead hosts, and merges exactly once.
"""

from .coordinator import (ClusterCoordinator, ClusterError,
                          ClusterExecutionError, ClusterRunReport)
from .protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION, FrameError,
                       decode_frame, encode_frame)
from .retry import RetriesExhausted, RetryPolicy
from .transport import (Fault, FaultSchedule, FaultyTransport, Transport,
                        TransportClosed)
from .worker import ClusterWorker, WorkerKilled

__all__ = [
    "ClusterCoordinator", "ClusterError", "ClusterExecutionError",
    "ClusterRunReport", "ClusterWorker", "WorkerKilled",
    "RetryPolicy", "RetriesExhausted",
    "Transport", "TransportClosed", "Fault", "FaultSchedule",
    "FaultyTransport",
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "FrameError",
    "encode_frame", "decode_frame",
]
