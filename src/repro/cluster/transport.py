"""Framed asyncio transports, plus the deterministic fault injector.

:class:`Transport` is the thin production wrapper around an asyncio
stream pair: framed send/recv with a send lock (the worker's heartbeat
task and its shard replies share one connection) and idempotent close.

:class:`FaultyTransport` is the test harness's weapon: it wraps any
transport and applies a :class:`FaultSchedule` — **drop** a frame,
**delay** it, or **sever** the connection — at exact frame indices,
optionally counting only frames matching a predicate (e.g. only
``shard_result`` frames, so a schedule is insensitive to how many
heartbeats happened to fit in).  Schedules are plain data, so a
hypothesis strategy can draw arbitrary failure topologies and the run
is reproducible from the drawn values alone.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .protocol import read_frame, write_frame

__all__ = ["Transport", "Fault", "FaultSchedule", "FaultyTransport",
           "TransportClosed"]


class TransportClosed(ConnectionError):
    """The peer is gone (clean close, reset, or injected sever)."""


class Transport:
    """Framed, lock-serialized message transport over asyncio streams."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (locally initiated only)."""
        return self._closed

    @property
    def peername(self) -> Optional[Tuple]:
        """The peer's socket address, for diagnostics."""
        try:
            return self._writer.get_extra_info("peername")
        except Exception:  # pragma: no cover - transport variance
            return None

    async def send(self, message: dict) -> None:
        """Send one frame; raises :class:`TransportClosed` when gone."""
        if self._closed:
            raise TransportClosed("transport is closed")
        async with self._send_lock:
            try:
                await write_frame(self._writer, message)
            except (ConnectionError, OSError) as exc:
                raise TransportClosed(f"send failed: {exc}") from exc

    async def recv(self) -> dict:
        """Receive one frame; raises :class:`TransportClosed` at EOF."""
        try:
            return await read_frame(self._reader)
        except (asyncio.IncompleteReadError, ConnectionError,
                OSError) as exc:
            raise TransportClosed(f"connection closed: {exc}") from exc

    def close(self) -> None:
        """Close the underlying stream (idempotent, best-effort)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
        except Exception:  # pragma: no cover - already-dead transports
            pass

    async def wait_closed(self) -> None:
        """Await the stream teardown after :meth:`close`."""
        try:
            await self._writer.wait_closed()
        except Exception:  # pragma: no cover - already-dead transports
            pass


@dataclass(frozen=True)
class Fault:
    """One injected failure.

    Attributes:
        action: ``"drop"`` (frame silently discarded), ``"delay"``
            (frame held for :attr:`delay` seconds, then delivered — the
            late-result scenario), or ``"sever"`` (connection torn down
            mid-conversation — the dead-host scenario).
        delay: Seconds to hold a delayed frame.
    """

    action: str
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ("drop", "delay", "sever"):
            raise ValueError(f"unknown fault action {self.action!r}")


@dataclass
class FaultSchedule:
    """Frame-indexed faults for one transport, applied deterministically.

    Attributes:
        send: Fault per 0-based *matching outgoing* frame index.
        recv: Fault per 0-based *matching incoming* frame index.
        match: Counts (and faults) only frames this predicate accepts;
            non-matching frames pass through unfaulted and uncounted.
            Defaults to matching everything.
    """

    send: Dict[int, Fault] = field(default_factory=dict)
    recv: Dict[int, Fault] = field(default_factory=dict)
    match: Callable[[dict], bool] = field(default=lambda message: True)


class FaultyTransport:
    """A transport wrapper that injects a :class:`FaultSchedule`.

    Duck-types :class:`Transport`.  Severing closes the inner transport
    and raises :class:`TransportClosed`, exactly what the real failure
    produces, so neither endpoint can tell an injected fault from a
    genuine one — which is the point.
    """

    def __init__(self, inner: Transport, schedule: FaultSchedule) -> None:
        self._inner = inner
        self._schedule = schedule
        self._sent = 0
        self._received = 0

    @property
    def closed(self) -> bool:
        return self._inner.closed

    @property
    def peername(self):
        return self._inner.peername

    async def send(self, message: dict) -> None:
        if not self._schedule.match(message):
            await self._inner.send(message)
            return
        fault = self._schedule.send.get(self._sent)
        self._sent += 1
        if fault is None:
            await self._inner.send(message)
        elif fault.action == "drop":
            return
        elif fault.action == "delay":
            await asyncio.sleep(fault.delay)
            await self._inner.send(message)
        else:  # sever
            self._inner.close()
            raise TransportClosed("injected sever on send")

    async def recv(self) -> dict:
        while True:
            message = await self._inner.recv()
            if not self._schedule.match(message):
                return message
            fault = self._schedule.recv.get(self._received)
            self._received += 1
            if fault is None:
                return message
            if fault.action == "drop":
                continue
            if fault.action == "delay":
                await asyncio.sleep(fault.delay)
                return message
            self._inner.close()
            raise TransportClosed("injected sever on recv")

    def close(self) -> None:
        self._inner.close()

    async def wait_closed(self) -> None:
        await self._inner.wait_closed()
