"""Fault-tolerant cluster coordinator: ShardPlans across N hosts.

The multi-machine shard runner the ROADMAP promised: a
:class:`ClusterCoordinator` listens on localhost TCP, executor hosts
(:class:`~repro.cluster.worker.ClusterWorker`) register, and a
:class:`~repro.core.sharding.ShardPlan` — the shipping unit PR 3 built
— is executed across the fleet through the exact scatter/merge
contracts :class:`~repro.core.sharding.ProcessShardExecutor` pins.  The
outputs are element-wise/bit-identical to the single-process fast paths
under **any** failure topology; the fault-injection suite proves it.

Robustness model, in order of escalation:

1. **Per-RPC deadlines** — every dispatched shard must answer within
   ``rpc_timeout``; a silent worker does not stall the plan.
2. **Retry with capped exponential backoff + jitter**
   (:class:`~repro.cluster.retry.RetryPolicy`) — a timed-out shard is
   marked *stale* (a late result is discarded, never double-merged) and
   re-dispatched, preferring a different host; attempts are bounded.
3. **Liveness** — a severed connection is detected immediately, and a
   host that stops heartbeating past ``heartbeat_timeout`` is declared
   dead even if its socket lingers.
4. **Dead-host re-planning** — the orphaned work units of a dead
   worker are re-balanced across the *surviving* hosts with their
   original cost estimates (:meth:`ShardPlan.replan`); workers that
   join mid-plan are folded in on the next dispatch.
5. **Graceful degradation** — when the fleet empties, remaining units
   run locally in the coordinator (``local_fallback``), so a cluster
   job never produces less than the single-process path would.

Exactly-once merging is enforced at the work-unit level: a unit's keys
are merged into the output exactly once, no matter how many duplicate
executions its retries and delayed results produced.  Every run leaves
a :class:`ClusterRunReport` (``last_report``) recording merges per key,
re-plans, retries, and late discards — the observability surface the
property tests assert on.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import tempfile
import time
from collections import deque
from contextlib import suppress
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, Hashable,
                    List, Optional, Sequence, Set, Tuple, Union)

from ..core.batch import BatchResult, InferenceRequest
from ..core.fast_construct import build_leaf_graph_fast
from ..core.fast_inference import DEFAULT_DENSE_LIMIT, LeafBatchRunner
from ..core.inference import Recommendation
from ..core.model import GraphExModel
from ..core.serialization import (load_leaf_graphs, open_model,
                                  save_model)
from ..core.sharding import ShardPlan
from ..core.tokenize import DEFAULT_TOKENIZER, TokenCache, Tokenizer
from ..obs import MetricsRegistry, merge_snapshots, validate_snapshot
from .protocol import (PROTOCOL_VERSION, pack_curated_leaves,
                       pack_requests, pack_tokenizer,
                       unpack_recommendations, unpack_token_state)
from .retry import RetryPolicy
from .transport import Transport, TransportClosed

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..core.curation import CuratedKeyphrases
    from ..core.execution import CostModel
    from ..core.model import LeafGraph

__all__ = ["ClusterCoordinator", "ClusterError", "ClusterExecutionError",
           "ClusterRunReport"]

#: Bytes of artifact file streamed per ``artifact_chunk`` frame.
_STREAM_CHUNK = 1 << 20


class ClusterError(RuntimeError):
    """A cluster job could not complete (fleet/timeout/merge failure)."""


class ClusterExecutionError(ClusterError):
    """A shard raised on its worker; carries the worker traceback."""

    def __init__(self, message: str,
                 worker_traceback: Optional[str] = None) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback


class _WorkerDied(Exception):
    """Internal signal: the worker holding an assignment dropped."""


@dataclass
class ClusterRunReport:
    """What one cluster job did — the fault-tolerance audit trail.

    Attributes:
        kind: ``"inference"`` or ``"construction"``.
        n_units_planned: Work units in the initial plan.
        n_workers_at_start: Live hosts when the plan was cut.
        n_replans: Dead-host events that re-balanced orphaned keys.
        n_retries: Per-shard deadline expiries that re-dispatched.
        n_late_discarded: Results that arrived after their assignment
            was superseded and were discarded instead of double-merged.
        n_local_units: Units the coordinator ran itself (fleet empty).
        workers_used: Hosts that contributed at least one dispatch.
        merge_counts: Times each work-unit key was merged — the
            exactly-once invariant is ``all(v == 1)``.
        orphaned_keys: Key groups that were orphaned by a dead host and
            re-planned.
        fleet_metrics: The merged fleet metrics snapshot at job end —
            the job's registry folded with the latest heartbeat
            snapshot of every worker seen (see
            :meth:`ClusterCoordinator.fleet_snapshot`).
    """

    kind: str
    n_units_planned: int
    n_workers_at_start: int
    n_replans: int = 0
    n_retries: int = 0
    n_late_discarded: int = 0
    n_local_units: int = 0
    workers_used: List[str] = field(default_factory=list)
    merge_counts: Dict[Hashable, int] = field(default_factory=dict)
    orphaned_keys: List[List[Hashable]] = field(default_factory=list)
    fleet_metrics: Optional[dict] = None

    def as_dict(self) -> dict:
        """JSON-ready summary (bench artifacts embed this)."""
        return {
            "kind": self.kind,
            "n_units_planned": self.n_units_planned,
            "n_workers_at_start": self.n_workers_at_start,
            "n_replans": self.n_replans,
            "n_retries": self.n_retries,
            "n_late_discarded": self.n_late_discarded,
            "n_local_units": self.n_local_units,
            "workers_used": list(self.workers_used),
            "exactly_once": all(count == 1
                                for count in self.merge_counts.values()),
            "fleet_metrics": self.fleet_metrics,
        }


class _Unit:
    """One schedulable work unit: a tuple of plan keys + retry count."""

    __slots__ = ("keys", "attempts")

    def __init__(self, keys: Tuple[Hashable, ...]) -> None:
        self.keys = tuple(keys)
        self.attempts = 0


@dataclass
class _Assignment:
    unit: _Unit
    future: "asyncio.Future[dict]"
    stale: bool = False


class _WorkerHandle:
    """Coordinator-side state of one registered host."""

    __slots__ = ("name", "transport", "alive", "busy", "last_seen",
                 "current_assignment", "artifacts")

    def __init__(self, name: str, transport) -> None:
        self.name = name
        self.transport = transport
        self.alive = True
        self.busy = False
        self.last_seen = time.monotonic()
        self.current_assignment: Optional[int] = None
        self.artifacts: Set[str] = set()


class ClusterCoordinator:
    """Executes ShardPlans across registered executor hosts.

    Args:
        host, port: Listening address; port 0 picks a free port
            (read it back from :attr:`port` after :meth:`start`).
        retry: Backoff policy for timed-out shard RPCs; the default is
            4 attempts with 50ms → 2s capped exponential jittered
            delays.
        rpc_timeout: Per-shard (and per-deploy) response deadline in
            seconds.
        heartbeat_timeout: Declare a host dead after this many seconds
            without any frame from it; ``None`` relies on
            connection-close detection alone.
        local_fallback: When the fleet is empty, run remaining units in
            the coordinator process instead of failing the job.
        metrics: The coordinator's own
            :class:`~repro.obs.MetricsRegistry` (a fresh one by
            default).  Worker heartbeats carry registry snapshots that
            are stashed latest-per-worker and folded together with this
            registry by :meth:`fleet_snapshot` — replace-then-merge, so
            a worker's cumulative counters are never double-counted no
            matter how many heartbeats it sent.

    One job (:meth:`run_inference` / :meth:`run_construction`) runs at
    a time; concurrent calls queue on an internal lock.  Use as an
    async context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 retry: Optional[RetryPolicy] = None,
                 rpc_timeout: float = 30.0,
                 heartbeat_timeout: Optional[float] = None,
                 local_fallback: bool = True,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._host = host
        self._port = port
        self._retry = retry if retry is not None else RetryPolicy()
        self._rpc_timeout = rpc_timeout
        self._heartbeat_timeout = heartbeat_timeout
        self._local_fallback = local_fallback
        self._workers: Dict[str, _WorkerHandle] = {}
        self._idle: Deque[_WorkerHandle] = deque()
        self._assignments: Dict[int, _Assignment] = {}
        self._assignment_counter = itertools.count()
        self._rpc_counter = itertools.count()
        self._rpc_waiters: Dict[int, "asyncio.Future[dict]"] = {}
        self._artifact_sources: Dict[str, Path] = {}
        self._artifact_counter = itertools.count()
        self._model_cache: Dict[str, GraphExModel] = {}
        self._model_spool: Optional[Path] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._monitor_task: Optional[asyncio.Task] = None
        self._state_changed: Optional[asyncio.Event] = None
        self._job_lock: Optional[asyncio.Lock] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._active_report: Optional[ClusterRunReport] = None
        self._closing = False
        #: Report of the most recently finished job.
        self.last_report: Optional[ClusterRunReport] = None
        #: The coordinator's own registry (scheduler-side counters).
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        #: Latest validated heartbeat snapshot per worker name.  A
        #: worker's registry is cumulative, so only its newest snapshot
        #: counts — replacement here is what makes the fleet view
        #: exactly-once.
        self._worker_metrics: Dict[str, dict] = {}
        self._active_metrics: Optional[MetricsRegistry] = None

    @property
    def _job_metrics(self) -> MetricsRegistry:
        """The running job's registry (a ClusterExecutor passes its
        own), else the coordinator's."""
        return self._active_metrics if self._active_metrics is not None \
            else self.metrics

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the server; returns the (host, port) workers dial."""
        self._loop = asyncio.get_running_loop()
        self._state_changed = asyncio.Event()
        self._job_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port)
        self._port = self._server.sockets[0].getsockname()[1]
        if self._heartbeat_timeout is not None:
            self._monitor_task = asyncio.ensure_future(
                self._monitor_heartbeats())
        return self._host, self._port

    async def stop(self, drain: bool = True) -> None:
        """Shut the fleet down.

        With ``drain`` (default) the running job — if any — finishes
        first: its in-flight shards are merged and its result returned
        to its caller before any worker is told to go.  New jobs are
        rejected from the moment stop is called.
        """
        import shutil

        self._closing = True
        if drain and self._job_lock is not None:
            async with self._job_lock:
                pass
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            with suppress(asyncio.CancelledError):
                await self._monitor_task
        for worker in list(self._workers.values()):
            with suppress(TransportClosed, OSError):
                await asyncio.wait_for(
                    worker.transport.send({"type": "shutdown"}),
                    timeout=1.0)
            worker.alive = False
            worker.transport.close()
        self._workers.clear()
        self._idle.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain the per-connection reader tasks: the transport closes
        # above EOF their reads, so they exit on their own — cancelling
        # them would trip asyncio.streams' connection_made callback
        # (task.exception() on a cancelled task logs).  Cancel only a
        # straggler that somehow outlives the grace period.
        if self._conn_tasks:
            _done, pending = await asyncio.wait(set(self._conn_tasks),
                                                timeout=2.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        if self._model_spool is not None:
            # Spool teardown is filesystem work; off-loop so stop()
            # cannot stall a loop shared with other servers
            # (async-no-blocking).
            spool = self._model_spool
            await asyncio.get_event_loop().run_in_executor(
                None, lambda: shutil.rmtree(spool, ignore_errors=True))

    async def __aenter__(self) -> "ClusterCoordinator":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        return self._port

    @property
    def host(self) -> str:
        return self._host

    @property
    def loop(self) -> Optional[asyncio.AbstractEventLoop]:
        """The event loop the coordinator runs on (set by :meth:`start`).

        :class:`~repro.core.execution.ClusterExecutor` submits its
        synchronous calls here from other threads.
        """
        return self._loop

    def n_live(self) -> int:
        """Currently registered live hosts."""
        return sum(1 for worker in self._workers.values() if worker.alive)

    def worker_names(self) -> List[str]:
        """Names of the live hosts, registration order."""
        return [worker.name for worker in self._workers.values()
                if worker.alive]

    def fleet_snapshot(self) -> dict:
        """One merged metrics view of the whole fleet.

        Folds the coordinator's own registry with the **latest**
        heartbeat snapshot of every worker seen so far (dead workers
        included — their last reading still happened).  Because worker
        registries are cumulative and only the newest snapshot per
        worker is kept, merging here is exactly-once: the result's
        counters equal what one shared registry would have recorded.
        """
        return merge_snapshots(
            [self.metrics.snapshot()]
            + [snapshot for _name, snapshot in
               sorted(self._worker_metrics.items())])

    async def wait_for_workers(self, n: int,
                               timeout: float = 30.0) -> None:
        """Block until ``n`` hosts are registered (or raise)."""
        deadline = time.monotonic() + timeout
        while self.n_live() < n:
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"only {self.n_live()} of {n} workers registered "
                    f"within {timeout}s")
            await asyncio.sleep(0.02)

    # -- connection handling ------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        transport = Transport(reader, writer)
        try:
            hello = await asyncio.wait_for(transport.recv(), timeout=30.0)
        except (TransportClosed, asyncio.TimeoutError):
            transport.close()
            return
        if hello.get("type") != "register":
            await self._reject(transport,
                               f"expected register frame, got "
                               f"{hello.get('type')!r}")
            return
        if hello.get("protocol") != PROTOCOL_VERSION:
            await self._reject(transport,
                               f"protocol {hello.get('protocol')!r} != "
                               f"coordinator protocol {PROTOCOL_VERSION}")
            return
        if self._closing:
            await self._reject(transport, "coordinator is stopping")
            return
        name = str(hello.get("name"))
        existing = self._workers.get(name)
        if existing is not None and existing.alive:
            # Duplicate registration: the live holder keeps the name —
            # a reconnecting host must drop its old link first (which
            # marks it dead and frees the name).
            await self._reject(transport,
                               f"worker name {name!r} is already "
                               f"registered and alive")
            return
        worker = _WorkerHandle(name, transport)
        self._workers[name] = worker
        with suppress(TransportClosed):
            await transport.send({"type": "registered",
                                  "coordinator": f"{self._host}:"
                                                 f"{self._port}"})
        self._release_worker(worker)
        try:
            while True:
                frame = await transport.recv()
                worker.last_seen = time.monotonic()
                if not self._route_frame(worker, frame):
                    break
        except TransportClosed:
            pass
        finally:
            self._mark_dead(worker, "connection closed")

    async def _reject(self, transport, reason: str) -> None:
        with suppress(TransportClosed):
            await transport.send({"type": "error", "reason": reason})
        transport.close()
        await transport.wait_closed()

    def _stash_worker_metrics(self, worker: _WorkerHandle,
                              frame: dict) -> None:
        """Keep the newest registry snapshot a worker frame carried.

        Heartbeats and shard results both ride one; a worker registry
        is cumulative, so replacing (never folding) the stashed
        snapshot is what keeps :meth:`fleet_snapshot` exactly-once.
        Late/stale results still count — their snapshot is still the
        newest reading from that host.
        """
        snapshot = frame.get("metrics")
        if snapshot is None:
            return
        try:
            validate_snapshot(snapshot)
        except ValueError:
            # A malformed snapshot must not kill the link (the worker
            # is otherwise healthy) — count and drop it.
            self.metrics.inc("coordinator.metrics.rejected_snapshots")
        else:
            self._worker_metrics[worker.name] = snapshot

    def _route_frame(self, worker: _WorkerHandle, frame: dict) -> bool:
        """Route one incoming frame; returns False to drop the link."""
        kind = frame.get("type")
        self._stash_worker_metrics(worker, frame)
        if kind == "heartbeat":
            return True
        if kind == "bye":
            return False
        request_id = frame.get("request_id")
        if request_id is not None:
            waiter = self._rpc_waiters.get(request_id)
            if waiter is not None and not waiter.done():
                waiter.set_result(frame)
            return True
        assignment_id = frame.get("assignment")
        if assignment_id is not None:
            entry = self._assignments.get(assignment_id)
            if entry is None or entry.stale or entry.future.done():
                # The late-result rule: this shard was re-assigned (or
                # the job moved on) — merging it now would double-count
                # its keys, so it is discarded, not double-merged.
                if self._active_report is not None:
                    self._active_report.n_late_discarded += 1
                    self._job_metrics.inc("cluster.units.late_discarded")
                return True
            entry.future.set_result(frame)
        return True

    def _mark_dead(self, worker: _WorkerHandle, reason: str) -> None:
        if not worker.alive:
            return
        worker.alive = False
        worker.transport.close()
        if self._workers.get(worker.name) is worker:
            del self._workers[worker.name]
        assignment_id = worker.current_assignment
        if assignment_id is not None:
            entry = self._assignments.get(assignment_id)
            if entry is not None and not entry.future.done():
                entry.future.set_exception(
                    _WorkerDied(f"{worker.name}: {reason}"))
        if self._state_changed is not None:
            self._state_changed.set()

    async def _monitor_heartbeats(self) -> None:
        interval = max(0.01, self._heartbeat_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for worker in list(self._workers.values()):
                if worker.alive and \
                        now - worker.last_seen > self._heartbeat_timeout:
                    self._mark_dead(
                        worker,
                        f"no heartbeat for {self._heartbeat_timeout}s")

    # -- worker pool --------------------------------------------------------

    def _acquire_idle(self) -> Optional[_WorkerHandle]:
        while self._idle:
            worker = self._idle.popleft()
            if worker.alive and not worker.busy:
                worker.busy = True
                return worker
        return None

    def _release_worker(self, worker: _WorkerHandle) -> None:
        if worker.alive and not self._closing:
            worker.busy = False
            self._idle.append(worker)
        if self._state_changed is not None:
            self._state_changed.set()

    # -- RPC plumbing -------------------------------------------------------

    async def _request(self, worker: _WorkerHandle, message: dict,
                       timeout: Optional[float] = None) -> dict:
        request_id = next(self._rpc_counter)
        future: "asyncio.Future[dict]" = \
            asyncio.get_event_loop().create_future()
        self._rpc_waiters[request_id] = future
        try:
            await worker.transport.send({**message,
                                         "request_id": request_id})
            return await asyncio.wait_for(
                future, timeout if timeout is not None
                else self._rpc_timeout)
        finally:
            self._rpc_waiters.pop(request_id, None)

    def _register_artifact(self, directory: Path) -> str:
        for name, path in self._artifact_sources.items():
            if path == directory:
                return name
        name = f"artifact-{next(self._artifact_counter)}"
        self._artifact_sources[name] = directory
        return name

    async def _push_artifact(self, worker: _WorkerHandle,
                             name: str) -> None:
        """Stream one artifact directory to a worker's spool, chunked."""
        directory = self._artifact_sources[name]
        request_id = next(self._rpc_counter)
        future: "asyncio.Future[dict]" = \
            asyncio.get_event_loop().create_future()
        self._rpc_waiters[request_id] = future
        try:
            await worker.transport.send({"type": "artifact_begin",
                                         "name": name,
                                         "request_id": request_id})
            for file in sorted(directory.iterdir()):
                if not file.is_file():
                    continue
                await worker.transport.send({"type": "artifact_file",
                                             "filename": file.name})
                # Chunk reads run off-loop: one cold page on a slow
                # disk would otherwise freeze every other worker's
                # stream and heartbeat (async-no-blocking).
                loop = asyncio.get_event_loop()
                fh = await loop.run_in_executor(None, open, file, "rb")
                try:
                    while True:
                        chunk = await loop.run_in_executor(
                            None, fh.read, _STREAM_CHUNK)
                        if not chunk:
                            break
                        await worker.transport.send({
                            "type": "artifact_chunk",
                            "data": base64.b64encode(chunk).decode(
                                "ascii")})
                finally:
                    fh.close()
                await worker.transport.send({"type": "artifact_file_end"})
            await worker.transport.send({"type": "artifact_end",
                                         "name": name})
            reply = await asyncio.wait_for(
                future, max(self._rpc_timeout, 30.0))
        finally:
            self._rpc_waiters.pop(request_id, None)
        if reply.get("type") != "artifact_received":
            raise ClusterError(
                f"streaming artifact {name!r} to {worker.name} failed: "
                f"{reply.get('traceback', reply)}")
        worker.artifacts.add(name)

    # -- model hand-off -----------------------------------------------------

    async def _materialize(self, source: Union[GraphExModel, str, Path]
                           ) -> Tuple[Path, GraphExModel]:
        """Resolve a model source to (artifact path, opened model).

        A path opens (mmap for format 3, memoized); an in-memory model
        is persisted once to the coordinator's spool as a format-3
        artifact and the *mapped* open is used locally too — workers
        and coordinator then share one physical model, the PR 6
        zero-copy plane doing the distribution.
        """
        loop = asyncio.get_event_loop()
        if isinstance(source, GraphExModel):
            if self._model_spool is None:
                # mkdtemp off-loop (async-no-blocking); re-check after
                # the await — a concurrent submit may have won the race
                # while we were in the executor.
                spool = Path(await loop.run_in_executor(
                    None, lambda: tempfile.mkdtemp(
                        prefix="graphex-coordinator-")))
                if self._model_spool is None:
                    self._model_spool = spool
                else:
                    await loop.run_in_executor(
                        None, lambda: shutil.rmtree(
                            spool, ignore_errors=True))
            path = self._model_spool / \
                f"model-{next(self._artifact_counter)}"
            await loop.run_in_executor(
                None, lambda: save_model(source, path, format_version=3))
        else:
            path = Path(source)
        key = str(path)
        model = self._model_cache.get(key)
        if model is None:
            # The mmap open touches disk; off-loop like save_model
            # above.  setdefault so a concurrent open of the same key
            # keeps one canonical mapping.
            opened = await loop.run_in_executor(None, open_model, key)
            model = self._model_cache.setdefault(key, opened)
        return path, model

    async def _model_ref(self, path: Path, distribute: str) -> dict:
        if distribute == "path":
            return {"model_path": str(path)}
        if distribute == "stream":
            return {"model_artifact": self._register_artifact(path)}
        raise ValueError(
            f"unknown distribute mode {distribute!r}; expected 'path' "
            f"(shared filesystem) or 'stream' (spool over the wire)")

    # -- the scheduler ------------------------------------------------------

    async def _execute_units(
            self, kind: str, plan: ShardPlan, units: List[_Unit],
            make_message: Callable[[_Unit, int], dict],
            handle_result: Callable[[_Unit, dict], None],
            run_local_unit: Callable[[_Unit], None],
            report: ClusterRunReport) -> None:
        """Drive every unit to exactly-once completion (see module doc)."""
        pending: Deque[_Unit] = deque(units)
        running: Set[asyncio.Task] = set()
        fatal: List[BaseException] = []

        def fail(exc: BaseException) -> None:
            if not fatal:
                fatal.append(exc)
            self._state_changed.set()

        while True:
            if fatal:
                break
            self._state_changed.clear()
            while pending:
                worker = self._acquire_idle()
                if worker is None:
                    break
                unit = pending.popleft()
                task = asyncio.ensure_future(self._run_unit(
                    kind, worker, unit, plan, pending, make_message,
                    handle_result, report, fail))
                running.add(task)
                task.add_done_callback(running.discard)
            if not pending and not running:
                break
            if pending and not running and self.n_live() == 0:
                if not self._local_fallback:
                    fail(ClusterError(
                        f"no live workers remain for {kind} and local "
                        f"fallback is disabled"))
                    break
                # The fleet has emptied: degrade gracefully to local
                # execution — same scatter/merge, same output.
                while pending:
                    unit = pending.popleft()
                    run_local_unit(unit)
                    for key in unit.keys:
                        report.merge_counts[key] = \
                            report.merge_counts.get(key, 0) + 1
                    report.n_local_units += 1
                    self._job_metrics.inc("cluster.units.local",
                                          kind=kind)
                    self._job_metrics.inc("cluster.units.merged",
                                          kind=kind)
                continue
            waiter = asyncio.ensure_future(self._state_changed.wait())
            await asyncio.wait({waiter, *running},
                               return_when=asyncio.FIRST_COMPLETED)
            waiter.cancel()
            with suppress(asyncio.CancelledError):
                await waiter
        if fatal:
            for task in running:
                task.cancel()
            if running:
                await asyncio.gather(*running, return_exceptions=True)
            raise fatal[0]

    async def _run_unit(
            self, kind: str, worker: _WorkerHandle, unit: _Unit,
            plan: ShardPlan, pending: Deque[_Unit],
            make_message: Callable[[_Unit, int], dict],
            handle_result: Callable[[_Unit, dict], None],
            report: ClusterRunReport,
            fail: Callable[[BaseException], None]) -> None:
        try:
            assignment_id = next(self._assignment_counter)
            entry = _Assignment(
                unit=unit,
                future=asyncio.get_event_loop().create_future())
            self._assignments[assignment_id] = entry
            worker.current_assignment = assignment_id
            if worker.name not in report.workers_used:
                report.workers_used.append(worker.name)
            try:
                message = make_message(unit, assignment_id)
                try:
                    if "model_artifact" in message and \
                            message["model_artifact"] not in \
                            worker.artifacts:
                        # Stream-distributed model: a worker that joined
                        # after the job started gets the artifact now.
                        await self._push_artifact(
                            worker, message["model_artifact"])
                    await worker.transport.send(message)
                except (TransportClosed, asyncio.TimeoutError):
                    self._mark_dead(worker, "send failed")
                    self._replan_orphans(unit, plan, pending, report)
                    return
                try:
                    reply = await asyncio.wait_for(entry.future,
                                                   self._rpc_timeout)
                except asyncio.TimeoutError:
                    # Deadline expired: fence the assignment (a late
                    # result will be discarded), back off, re-dispatch.
                    # The worker goes back to the *end* of the idle
                    # queue, so the retry prefers a different host.
                    entry.stale = True
                    unit.attempts += 1
                    report.n_retries += 1
                    self._job_metrics.inc("cluster.retries", kind=kind)
                    worker.current_assignment = None
                    self._release_worker(worker)
                    if unit.attempts >= self._retry.max_attempts:
                        fail(ClusterError(
                            f"{kind} shard {list(unit.keys)!r} timed "
                            f"out on all {unit.attempts} attempts "
                            f"(rpc_timeout={self._rpc_timeout}s)"))
                        return
                    await asyncio.sleep(
                        self._retry.delay_for(unit.attempts - 1))
                    pending.append(unit)
                    self._state_changed.set()
                    return
                except _WorkerDied:
                    self._replan_orphans(unit, plan, pending, report)
                    return
            finally:
                worker.current_assignment = None
                self._assignments.pop(assignment_id, None)
            if reply.get("type") == "shard_error":
                self._release_worker(worker)
                fail(ClusterExecutionError(
                    f"{kind} shard {list(unit.keys)!r} raised on worker "
                    f"{worker.name}; original worker traceback:\n"
                    f"{reply.get('traceback', '<missing>')}",
                    worker_traceback=reply.get("traceback")))
                return
            try:
                handle_result(unit, reply)
            except Exception as exc:
                self._release_worker(worker)
                fail(ClusterError(
                    f"merging {kind} shard {list(unit.keys)!r} from "
                    f"{worker.name} failed: {exc!r}"))
                return
            for key in unit.keys:
                report.merge_counts[key] = \
                    report.merge_counts.get(key, 0) + 1
            self._job_metrics.inc("cluster.units.merged", kind=kind)
            self._release_worker(worker)
        except Exception as exc:  # never lose the scheduler to a bug
            fail(exc)
        finally:
            self._state_changed.set()

    def _replan_orphans(self, unit: _Unit, plan: ShardPlan,
                        pending: Deque[_Unit],
                        report: ClusterRunReport) -> None:
        """Dead-host path: re-balance the orphaned keys over survivors."""
        report.n_replans += 1
        report.orphaned_keys.append(list(unit.keys))
        self._job_metrics.inc("cluster.replans", kind=report.kind)
        n_live = self.n_live()
        if len(unit.keys) > 1 and n_live > 1:
            replanned = plan.replan(unit.keys, n_live)
            pending.extend(_Unit(shard) for shard in replanned.shards)
        else:
            pending.append(_Unit(unit.keys))
        self._state_changed.set()

    # -- jobs ---------------------------------------------------------------

    async def run_inference(
            self, model_source: Union[GraphExModel, str, Path],
            requests: Sequence[InferenceRequest], *, k: int = 10,
            hard_limit: Optional[int] = None,
            dense_limit: int = DEFAULT_DENSE_LIMIT,
            distribute: str = "path",
            cost_model: Optional["CostModel"] = None,
            metrics: Optional[MetricsRegistry] = None) -> BatchResult:
        """Infer a batch across the fleet.

        Args:
            model_source: A format-3 artifact directory (the normal
                hand-off: workers mmap-open it), any older serialized
                model directory, or an in-memory model (persisted to a
                spool artifact first).
            requests: ``(item_id, title, leaf_id)`` triples.
            k, hard_limit, dense_limit: As in ``batch_recommend``.
            distribute: ``"path"`` sends the artifact path (localhost /
                shared filesystem); ``"stream"`` spools the artifact to
                each worker over the connection first.
            cost_model: Optional observed-rate
                :class:`~repro.core.execution.CostModel`: its
                observations re-cost the plan (same groups, better
                balance), and each completed unit's wall-clock seconds
                are recorded back into it.
            metrics: Registry for this job's counters and unit timings
                (a :class:`~repro.core.execution.ClusterExecutor`
                passes its own); the coordinator's registry by default.

        Returns:
            Item id → ranked recommendations, element-wise identical to
            the single-process fast path (last-request-wins duplicate
            semantics included) for any fleet size and failure
            topology.
        """
        async with self._job_lock:
            if self._closing:
                raise ClusterError("coordinator is stopping")
            requests = list(requests)
            path, model = await self._materialize(model_source)
            # The local runner validates configuration up front and
            # serves the empty-fleet fallback.
            runner = LeafBatchRunner(model, k=k, hard_limit=hard_limit,
                                     dense_limit=dense_limit)
            plan, groups = ShardPlan.for_inference(
                model, requests, max(1, self.n_live()),
                cost_model=cost_model)
            report = ClusterRunReport(
                kind="inference", n_units_planned=plan.n_shards,
                n_workers_at_start=self.n_live())
            model_ref = await self._model_ref(path, distribute)
            results: List[List[Recommendation]] = [[] for _ in requests]
            started: Dict[_Unit, float] = {}
            job_metrics = metrics if metrics is not None else self.metrics

            def indices_of(unit: _Unit) -> List[int]:
                return [index for key in unit.keys
                        for index in groups[key]]

            def observe_unit(unit: _Unit, elapsed: float) -> None:
                # Units are timed whole (assignment to merged result);
                # the elapsed seconds spread over the unit's groups pro
                # rata by request count — the attribution the worker's
                # single reply allows.  The same reading feeds the
                # registry and the cost model.
                job_metrics.observe("cluster.unit.seconds", elapsed,
                                    kind="inference")
                if cost_model is None:
                    return
                sizes = [(key, len(groups[key])) for key in unit.keys]
                total = sum(size for _key, size in sizes)
                for key, size in sizes:
                    cost_model.observe_inference(
                        key, elapsed * size / total if total else 0.0,
                        size)

            def make_message(unit: _Unit, assignment_id: int) -> dict:
                started[unit] = time.monotonic()
                return {"type": "run_shard", "kind": "inference",
                        "assignment": assignment_id, **model_ref,
                        "requests": pack_requests(
                            [requests[index]
                             for index in indices_of(unit)]),
                        "k": k, "hard_limit": hard_limit,
                        "dense_limit": dense_limit}

            def handle_result(unit: _Unit, reply: dict) -> None:
                indices = indices_of(unit)
                rows = reply["results"]
                if len(rows) != len(indices):
                    raise ClusterError(
                        f"shard returned {len(rows)} results for "
                        f"{len(indices)} requests")
                for index, packed in zip(indices, rows):
                    results[index] = unpack_recommendations(packed)
                # Fenced merge path: exactly once per request, so this
                # counter equals the single-process request total (the
                # CI fleet-equality assertion).
                job_metrics.inc("cluster.requests.merged", len(indices))
                if unit in started:
                    observe_unit(unit, time.monotonic() - started[unit])

            def run_local_unit(unit: _Unit) -> None:
                indices = indices_of(unit)
                start = time.monotonic()
                for index, recs in zip(indices, runner.run_indexed(
                        [requests[index] for index in indices])):
                    results[index] = recs
                job_metrics.inc("cluster.requests.merged", len(indices))
                observe_unit(unit, time.monotonic() - start)

            self._active_report = report
            self._active_metrics = job_metrics
            try:
                await self._execute_units(
                    "inference", plan,
                    [_Unit(shard) for shard in plan.shards],
                    make_message, handle_result, run_local_unit, report)
            finally:
                self._active_report = None
                self._active_metrics = None
                try:
                    report.fleet_metrics = merge_snapshots(
                        [job_metrics.snapshot()]
                        + [snapshot for _name, snapshot in
                           sorted(self._worker_metrics.items())])
                except ValueError:
                    # A job registry with custom buckets cannot fold
                    # with the workers' default-bucket snapshots; the
                    # job view alone is still a valid snapshot.
                    report.fleet_metrics = job_metrics.snapshot()
                self.last_report = report
            out: BatchResult = {}
            for index, (item_id, _title, _leaf_id) in \
                    enumerate(requests):
                out[item_id] = results[index]
            return out

    async def run_construction(
            self, curated: "CuratedKeyphrases",
            tokenizer: Tokenizer = DEFAULT_TOKENIZER, *,
            cost_model: Optional["CostModel"] = None,
            metrics: Optional[MetricsRegistry] = None
            ) -> Tuple[Dict[int, "LeafGraph"], TokenCache]:
        """Build every non-empty leaf graph across the fleet.

        Same contract as
        :meth:`~repro.core.sharding.ProcessShardExecutor.run_construction`:
        workers persist their shard's graphs as format-3 leaf bundles
        in their spool and the coordinator mmap-opens them (localhost /
        shared filesystem — the bundle never crosses the wire as a
        pickle); per-shard token-cache states merge into the returned
        cache in ascending-smallest-leaf-id order, which is
        deterministic for a given completion set (and the built graphs
        are insensitive to pool id order by the pinned bit-identity
        contract either way).

        A tokenizer that is not wire-representable (anything but a
        plain ``SpaceTokenizer``) cannot promise identical semantics on
        remote hosts, so the whole job runs through the local fast
        builder instead.

        With a ``cost_model``, observed per-leaf build rates re-cost
        the plan (same leaves, better balance) and each completed
        unit's wall-clock seconds are recorded back into it.
        """
        from ..core.fast_construct import fast_construct_leaf_graphs

        async with self._job_lock:
            if self._closing:
                raise ClusterError("coordinator is stopping")
            try:
                tokenizer_spec = pack_tokenizer(tokenizer)
            except ValueError:
                return fast_construct_leaf_graphs(curated, tokenizer)
            items = [(leaf_id, leaf)
                     for leaf_id, leaf in curated.leaves.items()
                     if len(leaf) > 0]
            cache = TokenCache(tokenizer)
            report = ClusterRunReport(
                kind="construction", n_units_planned=0,
                n_workers_at_start=self.n_live())
            if not items:
                self.last_report = report
                return {}, cache
            plan = ShardPlan.for_construction(
                curated, max(1, self.n_live()), cost_model=cost_model)
            report.n_units_planned = plan.n_shards
            by_id = dict(items)
            built: Dict[int, "LeafGraph"] = {}
            states: List[Tuple[int, Any]] = []
            started: Dict[_Unit, float] = {}
            job_metrics = metrics if metrics is not None else self.metrics

            def observe_unit(unit: _Unit, elapsed: float) -> None:
                # Whole-unit timing spread over its leaves pro rata by
                # the char-count proxy (the worker reply is per unit,
                # not per leaf).
                job_metrics.observe("cluster.unit.seconds", elapsed,
                                    kind="construction")
                if cost_model is None:
                    return
                sizes = [(key, sum(map(len, by_id[key].texts)) + 1)
                         for key in unit.keys]
                total = sum(size for _key, size in sizes)
                for key, size in sizes:
                    cost_model.observe_construction(
                        key, elapsed * size / total if total else 0.0,
                        size)

            def make_message(unit: _Unit, assignment_id: int) -> dict:
                started[unit] = time.monotonic()
                return {"type": "run_shard", "kind": "construction",
                        "assignment": assignment_id,
                        "tokenizer": tokenizer_spec,
                        "leaves": pack_curated_leaves(
                            [by_id[key] for key in unit.keys])}

            def handle_result(unit: _Unit, reply: dict) -> None:
                for graph in load_leaf_graphs(reply["bundle_path"],
                                              mmap=True):
                    built[graph.leaf_id] = graph
                states.append((min(unit.keys), unpack_token_state(
                    reply["token_state"])))
                job_metrics.inc("cluster.leaves.merged", len(unit.keys))
                if unit in started:
                    observe_unit(unit, time.monotonic() - started[unit])

            def run_local_unit(unit: _Unit) -> None:
                local_cache = TokenCache(tokenizer)
                start = time.monotonic()
                for key in unit.keys:
                    built[key] = build_leaf_graph_fast(by_id[key],
                                                       local_cache)
                states.append((min(unit.keys),
                               local_cache.export_state()))
                job_metrics.inc("cluster.leaves.merged", len(unit.keys))
                observe_unit(unit, time.monotonic() - start)

            self._active_report = report
            self._active_metrics = job_metrics
            try:
                await self._execute_units(
                    "construction", plan,
                    [_Unit(shard) for shard in plan.shards],
                    make_message, handle_result, run_local_unit, report)
            finally:
                self._active_report = None
                self._active_metrics = None
                try:
                    report.fleet_metrics = merge_snapshots(
                        [job_metrics.snapshot()]
                        + [snapshot for _name, snapshot in
                           sorted(self._worker_metrics.items())])
                except ValueError:
                    # A job registry with custom buckets cannot fold
                    # with the workers' default-bucket snapshots; the
                    # job view alone is still a valid snapshot.
                    report.fleet_metrics = job_metrics.snapshot()
                self.last_report = report
            for _first_key, state in sorted(states,
                                            key=lambda entry: entry[0]):
                cache.absorb_state(state)
            return ({leaf_id: built[leaf_id]
                     for leaf_id, _leaf in items}, cache)

    # -- deployment ---------------------------------------------------------

    async def deploy_artifact(self, directory: Union[str, Path], *,
                              generation: Optional[int] = None,
                              push: bool = False,
                              timeout: Optional[float] = None) -> int:
        """Pre-deploy a model artifact to every live host.

        The daily-refresh hand-off: the orchestrator persists today's
        model as a format-3 artifact and calls this so every executor
        host opens (and caches) it before the first shard of the day
        arrives.  With ``push`` the artifact is streamed into each
        worker's spool first (no shared filesystem assumed).

        A host that fails or times out is marked dead (the next job
        plans around it) rather than failing the deploy.

        Returns:
            The number of hosts that acknowledged the deployment.
        """
        directory = Path(directory)
        deployed = 0
        for worker in [w for w in self._workers.values() if w.alive]:
            try:
                if push:
                    name = self._register_artifact(directory)
                    if name not in worker.artifacts:
                        await self._push_artifact(worker, name)
                    reply = await self._request(
                        worker, {"type": "deploy_model",
                                 "model_artifact": name,
                                 "generation": generation}, timeout)
                else:
                    reply = await self._request(
                        worker, {"type": "deploy_model",
                                 "model_path": str(directory),
                                 "generation": generation}, timeout)
            except (TransportClosed, asyncio.TimeoutError, OSError):
                self._mark_dead(worker, "deploy failed")
                continue
            except ClusterError:
                continue
            if reply.get("type") == "deployed":
                deployed += 1
        return deployed
