"""Cluster executor host: registers, receives shards, returns results.

A :class:`ClusterWorker` is one "machine" of the fleet.  It dials the
coordinator over localhost TCP, registers under a unique name, then
serves assignments sequentially from its connection:

* **Inference shards** — the worker opens the named model artifact
  (zero-copy ``mmap`` for format-3 directories, via
  :func:`repro.core.serialization.open_model`, memoized per path) and
  runs the shard through a per-configuration
  :class:`~repro.core.fast_inference.LeafBatchRunner`, returning
  per-request results in shard order — exactly the
  ``run_indexed``/scatter contract :class:`ProcessShardExecutor` pins.
* **Construction shards** — curated leaves arrive on the wire, are
  built with a private :class:`~repro.core.tokenize.TokenCache`, and
  land on disk as a format-3 leaf bundle under the worker's spool dir;
  the reply carries the bundle path (the coordinator mmap-opens it)
  plus the cache state for the parent-side merge.
* **Artifact streaming** — a coordinator without a shared filesystem
  streams the model artifact in chunked frames; the worker spools it
  locally and serves it by artifact name, mmap-opened.

A worker-side exception never kills the worker: it is caught and
returned as a ``shard_error`` frame carrying the full traceback (the
cluster analogue of :class:`repro.core.sharding.ShardWorkerError`).
Heartbeats flow from a separate task over the same (send-locked)
connection, so a long shard does not read as a dead host.

Fault injection: ``transport_wrapper`` wraps the connection (tests pass
a :class:`~repro.cluster.transport.FaultyTransport` factory), and
``die_after_assignments=N`` is the kill switch — the worker completes
``N`` assignments, then drops the connection cold (``hard_exit=True``
additionally kills the process) upon receiving the next one, exactly a
host crash mid-plan.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import os
import tempfile
import traceback
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..core.fast_construct import build_leaf_graph_fast
from ..core.fast_inference import DEFAULT_DENSE_LIMIT, LeafBatchRunner
from ..core.model import GraphExModel
from ..core.serialization import open_model, save_leaf_graphs
from ..core.tokenize import TokenCache
from ..obs import MetricsRegistry
from .protocol import (PROTOCOL_VERSION, pack_metrics_snapshot,
                       pack_recommendations, pack_token_state,
                       unpack_curated_leaves, unpack_requests,
                       unpack_tokenizer)
from .transport import Transport, TransportClosed

__all__ = ["ClusterWorker", "WorkerKilled"]


class WorkerKilled(Exception):
    """The kill switch fired: the worker dropped off mid-plan."""


class ClusterWorker:
    """One executor host of the cluster (see module docstring).

    Args:
        host, port: The coordinator's listening address.
        name: Registration name; must be unique among live workers
            (default: ``worker-<pid>``).
        spool_dir: Where streamed artifacts and built leaf bundles
            land; a private temp dir (cleaned on exit) by default.
        heartbeat_interval: Seconds between heartbeat frames; ``None``
            disables them (connection-close detection still works).
        transport_wrapper: Optional wrapper applied to the connection —
            the fault-injection hook.
        die_after_assignments: Kill switch — complete this many
            assignments, then sever on the next one.  ``None`` never
            dies.
        hard_exit: With the kill switch, also ``os._exit(1)`` — the
            subprocess-worker crash used by the bench/CI smoke.
        metrics: This host's :class:`~repro.obs.MetricsRegistry` (a
            fresh one by default).  Its snapshot rides every heartbeat
            *and* every shard result frame, so the coordinator's fleet
            view is current the moment the last shard merges — never
            pickle, always the versioned snapshot JSON.
    """

    def __init__(self, host: str, port: int, *,
                 name: Optional[str] = None,
                 spool_dir: Optional[str] = None,
                 heartbeat_interval: Optional[float] = None,
                 transport_wrapper: Optional[
                     Callable[[Transport], object]] = None,
                 die_after_assignments: Optional[int] = None,
                 hard_exit: bool = False,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._host = host
        self._port = port
        self.name = name or f"worker-{os.getpid()}"
        self._own_spool = spool_dir is None
        self._spool = Path(spool_dir) if spool_dir is not None else None
        self._heartbeat_interval = heartbeat_interval
        self._transport_wrapper = transport_wrapper
        self._die_after = die_after_assignments
        self._hard_exit = hard_exit
        self._transport = None
        self._models: Dict[str, GraphExModel] = {}
        self._artifacts: Dict[str, Path] = {}
        self._runners: Dict[Tuple, LeafBatchRunner] = {}
        #: Assignments completed (results sent) — the kill-switch clock
        #: and the thing tests assert on.
        self.n_completed = 0
        #: Executed-work telemetry (counts *executions*, which can
        #: exceed the coordinator's exactly-once merged counters under
        #: retries — that asymmetry is itself the retry signal).
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()

    async def run(self) -> None:
        """Serve until the coordinator shuts us down or the link dies."""
        import shutil

        loop = asyncio.get_event_loop()
        # Spool setup is filesystem work; keep it off the loop so a
        # worker embedded in a busy host process (tests run many on
        # one loop) never stalls its peers (async-no-blocking).
        if self._spool is None:
            self._spool = Path(await loop.run_in_executor(
                None, lambda: tempfile.mkdtemp(
                    prefix=f"graphex-{self.name}-")))
        spool = self._spool
        await loop.run_in_executor(
            None, lambda: spool.mkdir(parents=True, exist_ok=True))
        reader, writer = await asyncio.open_connection(self._host,
                                                       self._port)
        transport = Transport(reader, writer)
        if self._transport_wrapper is not None:
            transport = self._transport_wrapper(transport)
        self._transport = transport
        heartbeat_task = None
        try:
            await transport.send({"type": "register", "name": self.name,
                                  "protocol": PROTOCOL_VERSION,
                                  "pid": os.getpid()})
            reply = await transport.recv()
            if reply.get("type") != "registered":
                raise ConnectionError(
                    f"registration rejected: "
                    f"{reply.get('reason', reply)}")
            if self._heartbeat_interval is not None:
                heartbeat_task = asyncio.ensure_future(
                    self._heartbeat_loop())
            while True:
                try:
                    message = await transport.recv()
                except TransportClosed:
                    return
                if not await self._handle(message):
                    return
        except WorkerKilled:
            if self._hard_exit:  # pragma: no cover - subprocess only
                os._exit(1)
            raise
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            transport.close()
            await transport.wait_closed()
            if self._own_spool:
                # Bundles already handed over were mmap-opened by the
                # coordinator; POSIX keeps mapped pages readable after
                # the unlink.
                # lint: waive async-no-blocking: teardown after the transport is closed; an await in this finally would be skipped under task cancellation and leak the spool
                shutil.rmtree(self._spool, ignore_errors=True)

    async def _heartbeat_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self._heartbeat_interval)
                await self._transport.send({
                    "type": "heartbeat", "name": self.name,
                    "metrics": pack_metrics_snapshot(
                        self.metrics.snapshot())})
        except (TransportClosed, asyncio.CancelledError):
            pass

    async def _handle(self, message: dict) -> bool:
        """Dispatch one frame; returns False to stop serving."""
        kind = message.get("type")
        if kind == "run_shard":
            await self._handle_shard(message)
        elif kind == "deploy_model":
            await self._handle_deploy(message)
        elif kind == "artifact_begin":
            await self._handle_artifact(message)
        elif kind == "ping":
            await self._transport.send({
                "type": "pong", "request_id": message.get("request_id")})
        elif kind == "shutdown":
            await self._transport.send({"type": "bye", "name": self.name})
            return False
        else:
            await self._transport.send({
                "type": "error",
                "reason": f"unknown message type {kind!r}"})
        return True

    # -- shard execution ----------------------------------------------------

    async def _handle_shard(self, message: dict) -> None:
        if self._die_after is not None \
                and self.n_completed >= self._die_after:
            # The kill switch: drop off mid-plan without a word, like a
            # crashed host.  The coordinator finds out from the closed
            # connection (or a missed heartbeat) and re-plans.
            self._transport.close()
            raise WorkerKilled(
                f"{self.name} killed after {self.n_completed} "
                f"assignments")
        assignment = message.get("assignment")
        try:
            # Compute off the event loop so heartbeats keep flowing
            # while a long shard runs — a busy host is not a dead host.
            loop = asyncio.get_event_loop()
            if message.get("kind") == "inference":
                reply = await loop.run_in_executor(
                    None, self._run_inference_shard, message)
            elif message.get("kind") == "construction":
                reply = await loop.run_in_executor(
                    None, self._run_construction_shard, message)
            else:
                raise ValueError(
                    f"unknown shard kind {message.get('kind')!r}")
        except Exception:
            await self._transport.send({
                "type": "shard_error", "assignment": assignment,
                "worker": self.name,
                "traceback": traceback.format_exc()})
            return
        # The registry snapshot rides the result frame itself: the
        # coordinator stashes it while routing, so the fleet view
        # already covers this shard when the job's last unit merges —
        # no waiting on the next heartbeat tick.
        reply.update({"type": "shard_result", "assignment": assignment,
                      "worker": self.name,
                      "metrics": pack_metrics_snapshot(
                          self.metrics.snapshot())})
        await self._transport.send(reply)
        self.n_completed += 1

    def _model_for(self, message: dict) -> GraphExModel:
        if "model_artifact" in message:
            name = message["model_artifact"]
            if name not in self._artifacts:
                raise FileNotFoundError(
                    f"artifact {name!r} was never streamed to "
                    f"{self.name}")
            path = str(self._artifacts[name])
        else:
            path = message["model_path"]
        model = self._models.get(path)
        if model is None:
            model = open_model(path)
            self._models[path] = model
        return model

    def _run_inference_shard(self, message: dict) -> dict:
        model = self._model_for(message)
        key = (id(model), message.get("k", 10),
               message.get("hard_limit"),
               message.get("dense_limit", DEFAULT_DENSE_LIMIT))
        runner = self._runners.get(key)
        if runner is None:
            runner = LeafBatchRunner(
                model, k=key[1], hard_limit=key[2], dense_limit=key[3])
            self._runners[key] = runner
        requests = unpack_requests(message["requests"])
        with self.metrics.timer("worker.shard.seconds",
                                kind="inference"):
            results = runner.run_indexed(requests)
        self.metrics.inc("worker.shards", kind="inference")
        self.metrics.inc("worker.requests", len(requests))
        return {"results": [pack_recommendations(recs)
                            for recs in results]}

    def _run_construction_shard(self, message: dict) -> dict:
        tokenizer = unpack_tokenizer(message["tokenizer"])
        leaves = unpack_curated_leaves(message["leaves"])
        cache = TokenCache(tokenizer)
        with self.metrics.timer("worker.shard.seconds",
                                kind="construction"):
            graphs = [build_leaf_graph_fast(leaf, cache)
                      for leaf in leaves]
        self.metrics.inc("worker.shards", kind="construction")
        self.metrics.inc("worker.leaves", len(leaves))
        bundle = self._spool / "bundles" / \
            f"assignment-{message.get('assignment')}"
        try:
            save_leaf_graphs(graphs, bundle)
        except Exception:
            import shutil
            shutil.rmtree(bundle, ignore_errors=True)
            raise
        return {"bundle_path": str(bundle),
                "token_state": pack_token_state(cache.export_state())}

    # -- model distribution -------------------------------------------------

    async def _handle_deploy(self, message: dict) -> None:
        try:
            # Opening a model mmaps files; off-loop so heartbeats keep
            # flowing while a large deploy materializes
            # (async-no-blocking).  Safe off-thread: the recv loop
            # handles one frame at a time, so _models is not raced.
            model = await asyncio.get_event_loop().run_in_executor(
                None, self._model_for, message)
        except Exception:
            await self._transport.send({
                "type": "shard_error",
                "request_id": message.get("request_id"),
                "worker": self.name, "traceback": traceback.format_exc()})
            return
        await self._transport.send({
            "type": "deployed", "request_id": message.get("request_id"),
            "worker": self.name,
            "generation": message.get("generation"),
            "n_leaves": model.n_leaves})

    async def _handle_artifact(self, message: dict) -> None:
        """Receive a streamed artifact into the spool dir, frame by frame.

        Protocol: ``artifact_begin {name}`` · per file ``artifact_file
        {filename}`` + ``artifact_chunk {data}``\\* + ``artifact_file_end``
        · ``artifact_end`` → ``artifact_received`` ack.
        """
        name = message["name"]
        root = self._spool / "artifacts" / name
        # Every filesystem touch in this stream handler runs off-loop:
        # artifact streaming happens while shards execute, and a slow
        # disk here would freeze heartbeats too (async-no-blocking).
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(
            None, lambda: root.mkdir(parents=True, exist_ok=True))
        current = None
        try:
            while True:
                frame = await self._transport.recv()
                kind = frame.get("type")
                if kind == "artifact_file":
                    filename = os.path.basename(frame["filename"])
                    current = await loop.run_in_executor(
                        None, open, root / filename, "wb")
                elif kind == "artifact_chunk":
                    data = base64.b64decode(frame["data"])
                    await loop.run_in_executor(None, current.write,
                                               data)
                elif kind == "artifact_file_end":
                    current.close()
                    current = None
                elif kind == "artifact_end":
                    break
                else:
                    raise ValueError(
                        f"unexpected frame {kind!r} inside artifact "
                        f"stream")
        except (ValueError, OSError, KeyError, binascii.Error):
            if current is not None:
                current.close()
            import shutil
            await loop.run_in_executor(
                None, lambda: shutil.rmtree(root, ignore_errors=True))
            await self._transport.send({
                "type": "shard_error",
                "request_id": message.get("request_id"),
                "worker": self.name, "traceback": traceback.format_exc()})
            return
        self._artifacts[name] = root
        await self._transport.send({
            "type": "artifact_received",
            "request_id": message.get("request_id"),
            "worker": self.name, "name": name, "path": str(root)})
