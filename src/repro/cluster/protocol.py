"""Length-prefixed JSON frames and wire codecs for the cluster runner.

Every message between coordinator and worker is one *frame*: a 4-byte
big-endian payload length followed by a UTF-8 JSON object.  JSON keeps
the protocol inspectable and version-tolerant; exactness is preserved
because everything that crosses the wire is either a string, an int, or
a Python ``float`` — and ``json`` serializes floats via ``repr``, which
round-trips every finite IEEE-754 double bit-exactly.  That is what
lets the cluster path promise *bit-identical* outputs: a
:class:`~repro.core.inference.Recommendation` decoded from a frame
compares equal, field for field, to one produced in-process.

The codecs below are the only places wire shapes are defined; both
endpoints import them, so they cannot drift apart.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.batch import InferenceRequest
from ..core.curation import CuratedLeaf
from ..core.inference import Recommendation
from ..core.tokenize import SpaceTokenizer, Tokenizer

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "FrameError",
    "encode_frame", "decode_frame", "read_frame", "write_frame",
    "pack_recommendations", "unpack_recommendations",
    "pack_requests", "unpack_requests",
    "pack_curated_leaves", "unpack_curated_leaves",
    "pack_tokenizer", "unpack_tokenizer",
    "pack_token_state", "unpack_token_state",
    "pack_metrics_snapshot", "unpack_metrics_snapshot",
]

#: Bumped on any incompatible wire change; registration carries it and
#: the coordinator rejects mismatches up front.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame's JSON payload.  Large transfers (model
#: artifacts) are chunked below this; a peer announcing a bigger frame
#: is malformed or hostile and the connection is dropped.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(RuntimeError):
    """A malformed frame (bad length, bad JSON, or not an object)."""


def encode_frame(message: dict) -> bytes:
    """Serialize one message to its on-wire bytes."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit; chunk large transfers")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Parse a frame payload back into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}")
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict:
    """Read one frame; raises ``IncompleteReadError`` on a closed peer."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"peer announced a {length}-byte frame (limit "
            f"{MAX_FRAME_BYTES})")
    return decode_frame(await reader.readexactly(length))


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one frame and drain the transport buffer."""
    writer.write(encode_frame(message))
    await writer.drain()


# ---------------------------------------------------------------------------
# Payload codecs


def pack_recommendations(recommendations: Sequence[Recommendation]
                         ) -> List[list]:
    """Recommendations as JSON rows (field order = NamedTuple order)."""
    return [[r.text, float(r.score), int(r.search_count),
             int(r.recall_count), int(r.common)]
            for r in recommendations]


def unpack_recommendations(rows: Sequence[Sequence]
                           ) -> List[Recommendation]:
    """Inverse of :func:`pack_recommendations` (bit-exact floats)."""
    return [Recommendation(text, score, search, recall, common)
            for text, score, search, recall, common in rows]


def pack_requests(requests: Sequence[InferenceRequest]) -> List[list]:
    """``(item_id, title, leaf_id)`` triples as JSON rows."""
    return [[item_id, title, leaf_id]
            for item_id, title, leaf_id in requests]


def unpack_requests(rows: Sequence[Sequence]) -> List[InferenceRequest]:
    """Inverse of :func:`pack_requests`."""
    return [(item_id, title, leaf_id)
            for item_id, title, leaf_id in rows]


def pack_curated_leaves(leaves: Sequence[CuratedLeaf]) -> List[dict]:
    """Curated leaves as JSON objects (the construction-shard input)."""
    return [{"leaf_id": leaf.leaf_id, "texts": list(leaf.texts),
             "search_counts": list(leaf.search_counts),
             "recall_counts": list(leaf.recall_counts)}
            for leaf in leaves]


def unpack_curated_leaves(rows: Sequence[dict]) -> List[CuratedLeaf]:
    """Inverse of :func:`pack_curated_leaves`."""
    return [CuratedLeaf(leaf_id=row["leaf_id"],
                        texts=list(row["texts"]),
                        search_counts=list(row["search_counts"]),
                        recall_counts=list(row["recall_counts"]))
            for row in rows]


def pack_tokenizer(tokenizer: Tokenizer) -> dict:
    """A :class:`SpaceTokenizer`'s full configuration as JSON.

    Only plain ``SpaceTokenizer`` instances are wire-representable —
    construction semantics must be *identical* on every host, and an
    arbitrary callable cannot make that guarantee over JSON.  Custom
    tokenizers run cluster construction via the local fallback instead.
    """
    if type(tokenizer) is not SpaceTokenizer:
        raise ValueError(
            f"only SpaceTokenizer ships over the wire (its semantics "
            f"are reproducible from configuration); got "
            f"{type(tokenizer).__name__}")
    return {"stem": tokenizer.stems,
            "stopwords": sorted(tokenizer.stopwords)}


def unpack_tokenizer(spec: dict) -> SpaceTokenizer:
    """Inverse of :func:`pack_tokenizer`."""
    return SpaceTokenizer(stem=bool(spec["stem"]),
                          drop_stopwords=tuple(spec["stopwords"]))


def pack_token_state(state: Tuple[List[str], Dict[str, Tuple[int, ...]],
                                  Optional[Dict[str, int]]]) -> list:
    """A ``TokenCache.export_state`` snapshot as JSON (tuples → lists)."""
    tokens, text_ids, raw_ids = state
    return [list(tokens),
            {text: list(ids) for text, ids in text_ids.items()},
            raw_ids if raw_ids is None else dict(raw_ids)]


def unpack_token_state(payload: Sequence
                       ) -> Tuple[List[str], Dict[str, Tuple[int, ...]],
                                  Optional[Dict[str, int]]]:
    """Inverse of :func:`pack_token_state` (lists → tuples)."""
    tokens, text_ids, raw_ids = payload
    return (list(tokens),
            {text: tuple(ids) for text, ids in text_ids.items()},
            None if raw_ids is None else dict(raw_ids))


def pack_metrics_snapshot(snapshot: dict) -> dict:
    """A :meth:`repro.obs.MetricsRegistry.snapshot` for the wire.

    Snapshots are already JSON-safe (that is their contract: integer
    counters/ticks, float gauges — never pickle), so packing is just
    the schema check; an invalid registry state must fail on the
    sender, not poison the coordinator's fleet view.
    """
    from ..obs import validate_snapshot

    return dict(validate_snapshot(snapshot))


def unpack_metrics_snapshot(payload: dict) -> dict:
    """Inverse of :func:`pack_metrics_snapshot` — the same schema
    check on the receiving side (the coordinator also re-validates
    before stashing, counting rejects instead of raising)."""
    from ..obs import validate_snapshot

    return dict(validate_snapshot(payload))
