"""Capped exponential backoff with deterministic jitter.

One retry policy serves every layer that talks to something flaky: the
cluster coordinator's per-shard RPCs (timeouts, severed connections),
the daily refresh orchestrator's construct/load steps, and any caller
that wants the same semantics.  The policy is a frozen value object —
attempt counting lives with the caller or in :meth:`call` /
:meth:`call_async`, never in the policy — so one instance can be shared
across concurrent dispatches.

Jitter is drawn from a private ``random.Random``: seeded policies
produce the exact same delay sequence every run, which the
fault-injection tests rely on, while unseeded policies still de-
synchronize a fleet of retriers (the reason jitter exists at all).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import (Any, Awaitable, Callable, Iterator, Optional, Tuple,
                    Type)

__all__ = ["RetryPolicy", "RetriesExhausted"]


class RetriesExhausted(RuntimeError):
    """Every attempt a :class:`RetryPolicy` allows has failed.

    Chained from the last underlying failure (``raise ... from exc``),
    so the original error is the ``__cause__``; :attr:`attempts` records
    how many times the callable ran.
    """

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter.

    Attempt ``i`` (0-based) that fails and still has retries left sleeps
    ``min(max_delay, base_delay * multiplier**i)``, scaled down by up to
    ``jitter`` (a fraction in ``[0, 1)``): the jittered delay lands in
    ``[capped * (1 - jitter), capped]``, so the cap is a true upper
    bound and jitter only ever *spreads* retriers apart, never piles
    them later.

    Attributes:
        max_attempts: Total attempts, including the first (>= 1).
        base_delay: Seconds before the first retry, pre-jitter.
        max_delay: Upper bound any single delay is capped to.
        multiplier: Exponential growth factor between retries.
        jitter: Fraction of each delay randomized away (0 disables).
        seed: Seed for the jitter stream; ``None`` draws a fresh
            unpredictable stream per policy instance.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False, compare=False,
                                default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter < 1:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter}")
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def delay_for(self, attempt: int) -> float:
        """Jittered sleep after failed 0-based ``attempt``.

        Consumes one draw from the policy's jitter stream; with a
        ``seed`` the sequence of calls is exactly reproducible.
        """
        capped = min(self.max_delay,
                     self.base_delay * self.multiplier ** attempt)
        if self.jitter == 0:
            return capped
        return capped * (1 - self.jitter * self._rng.random())

    def delays(self) -> Iterator[float]:
        """The ``max_attempts - 1`` jittered delays, in order."""
        for attempt in range(self.max_attempts - 1):
            yield self.delay_for(attempt)

    def call(self, fn: Callable[[], Any], *,
             retry_on: Tuple[Type[BaseException], ...] = (Exception,),
             sleep: Callable[[float], None] = time.sleep,
             on_retry: Optional[Callable[[int, BaseException, float],
                                         None]] = None) -> Any:
        """Run ``fn`` under this policy, synchronously.

        Args:
            fn: Zero-argument callable to attempt.
            retry_on: Exception types considered transient; anything
                else propagates immediately.
            sleep: Injectable sleeper (tests pass a recorder).
            on_retry: Called as ``(attempt, exc, delay)`` before each
                backoff sleep — the hook refresh reports count retries
                through.

        Raises:
            RetriesExhausted: When the last allowed attempt fails; the
                final failure is the ``__cause__``.
        """
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on as exc:
                if attempt + 1 >= self.max_attempts:
                    raise RetriesExhausted(
                        f"{fn!r} failed on all {self.max_attempts} "
                        f"attempts; last error: {exc!r}",
                        attempts=self.max_attempts) from exc
                delay = self.delay_for(attempt)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    async def call_async(
            self, fn: Callable[[], Awaitable[Any]], *,
            retry_on: Tuple[Type[BaseException], ...] = (Exception,),
            on_retry: Optional[Callable[[int, BaseException, float],
                                        None]] = None) -> Any:
        """:meth:`call` for coroutines; backoff via ``asyncio.sleep``."""
        for attempt in range(self.max_attempts):
            try:
                return await fn()
            except retry_on as exc:
                if attempt + 1 >= self.max_attempts:
                    raise RetriesExhausted(
                        f"{fn!r} failed on all {self.max_attempts} "
                        f"attempts; last error: {exc!r}",
                        attempts=self.max_attempts) from exc
                delay = self.delay_for(attempt)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                await asyncio.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover
