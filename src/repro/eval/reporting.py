"""Plain-text table rendering for the benchmark harnesses.

Every table/figure bench prints its reproduction through these helpers so
outputs are uniform and diffable against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, float_digits: int = 3) -> str:
    """Render one cell: floats get fixed digits, everything else str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None,
                 float_digits: int = 3) -> str:
    """Fixed-width aligned table with a header rule.

    Args:
        headers: Column names.
        rows: Row cells (str/int/float/bool).
        title: Optional title printed above the table.
        float_digits: Decimal places for float cells.

    Returns:
        The rendered multi-line string (no trailing newline).
    """
    str_rows: List[List[str]] = [
        [format_cell(cell, float_digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def render_markdown(headers: Sequence[str],
                    rows: Iterable[Sequence[Cell]],
                    float_digits: int = 3) -> str:
    """GitHub-flavoured markdown table."""
    str_rows = [[format_cell(cell, float_digits) for cell in row]
                for row in rows]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(row) + " |" for row in str_rows)
    return "\n".join(lines)


def render_bar_chart(labels: Sequence[str], values: Sequence[float],
                     title: Optional[str] = None, width: int = 50,
                     unit: str = "") -> str:
    """ASCII horizontal bar chart (for the figure benches).

    Args:
        labels: Bar labels.
        values: Non-negative bar values.
        title: Optional chart title.
        width: Maximum bar width in characters.
        unit: Unit suffix printed after each value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    peak = max(values) if values else 0.0
    label_width = max((len(label) for label in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar_len = int(round(width * value / peak)) if peak > 0 else 0
        lines.append(f"{label.ljust(label_width)}  "
                     f"{'#' * bar_len} {value:.3g}{unit}")
    return "\n".join(lines)
