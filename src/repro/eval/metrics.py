"""Evaluation metrics of Section IV-C.

Within-model proportions::

    RP = # relevant predictions / # total predictions
    HP = # head predictions / # total predictions

Cross-model ratios (counts, not proportions — they reward volume)::

    RRR = # relevant model1 predictions / # relevant model2 predictions
    RHR = # head model1 predictions / # head model2 predictions

plus click-based precision/recall used only in Table V (with RE as the
ground truth) to show *why* traditional metrics mislead here.

A relevant prediction is *head* when its test-window search count exceeds
the category's 90th-percentile threshold (:class:`HeadClassifier`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple


class HeadClassifier:
    """Head/tail split at a search-count percentile (default P90).

    Args:
        search_counts: Test-window search count per unique keyphrase text
            (aggregated across leaves of the category).
        percentile: Percentile above which a keyphrase is *head*;
            the paper uses 90 ("ensuring 10% exceed this limit").
    """

    def __init__(self, search_counts: Mapping[str, int],
                 percentile: float = 90.0) -> None:
        self._counts = dict(search_counts)
        values = sorted(self._counts.values())
        if values:
            rank = (percentile / 100.0) * (len(values) - 1)
            lower = int(rank)
            upper = min(lower + 1, len(values) - 1)
            frac = rank - lower
            self._threshold = (values[lower] * (1.0 - frac)
                               + values[upper] * frac)
        else:
            self._threshold = float("inf")

    @property
    def threshold(self) -> float:
        """The search-count cut-off for head keyphrases."""
        return self._threshold

    def is_head(self, keyphrase: str) -> bool:
        """True when the keyphrase's search count exceeds the threshold."""
        return self._counts.get(keyphrase, 0) > self._threshold

    def search_count(self, keyphrase: str) -> int:
        """Test-window search count (0 for unseen keyphrases)."""
        return self._counts.get(keyphrase, 0)


@dataclass
class JudgedPredictions:
    """Judged predictions of one model over a test set.

    Attributes:
        model: Model display name.
        n_items: Number of test items evaluated.
        relevant_head: Total relevant head predictions.
        relevant_tail: Total relevant tail predictions.
        irrelevant: Total irrelevant predictions.
        per_item: item_id → list of (keyphrase, relevant, head) triples.
    """

    model: str
    n_items: int = 0
    relevant_head: int = 0
    relevant_tail: int = 0
    irrelevant: int = 0
    per_item: Dict[int, List[Tuple[str, bool, bool]]] = field(
        default_factory=dict)

    @property
    def total(self) -> int:
        """Total predictions across all items."""
        return self.relevant_head + self.relevant_tail + self.irrelevant

    @property
    def relevant(self) -> int:
        """Total relevant predictions (head + tail)."""
        return self.relevant_head + self.relevant_tail

    @property
    def rp(self) -> float:
        """Relevant Proportion."""
        return self.relevant / self.total if self.total else 0.0

    @property
    def hp(self) -> float:
        """Head Proportion (relevant head / total)."""
        return self.relevant_head / self.total if self.total else 0.0

    def averages_per_item(self) -> Dict[str, float]:
        """Figure 4 series: avg relevant-head / relevant-tail / irrelevant
        predictions per item."""
        n = self.n_items or 1
        return {
            "relevant_head": self.relevant_head / n,
            "relevant_tail": self.relevant_tail / n,
            "irrelevant": self.irrelevant / n,
        }


def judge_model_predictions(
    model_name: str,
    predictions: Mapping[int, Sequence[str]],
    titles: Mapping[int, str],
    judge,
    head: HeadClassifier,
) -> JudgedPredictions:
    """Judge every prediction of one model.

    Args:
        model_name: Display name.
        predictions: item_id → predicted keyphrase texts.
        titles: item_id → title (for the judge).
        judge: A :class:`~repro.eval.judge.RelevanceJudge`.
        head: Head/tail classifier for the category.

    Returns:
        Aggregated :class:`JudgedPredictions`.
    """
    out = JudgedPredictions(model=model_name, n_items=len(predictions))
    for item_id, texts in predictions.items():
        title = titles[item_id]
        verdicts = judge.judge_batch(item_id, title, list(texts))
        triples: List[Tuple[str, bool, bool]] = []
        for text, relevant in zip(texts, verdicts):
            is_head = relevant and head.is_head(text)
            if relevant and is_head:
                out.relevant_head += 1
            elif relevant:
                out.relevant_tail += 1
            else:
                out.irrelevant += 1
            triples.append((text, relevant, is_head))
        out.per_item[item_id] = triples
    return out


def relative_relevant_ratio(model1: JudgedPredictions,
                            model2: JudgedPredictions) -> float:
    """RRR — relevant-count ratio of model1 over model2 (paper: model2 =
    GraphEx)."""
    return model1.relevant / model2.relevant if model2.relevant else 0.0


def relative_head_ratio(model1: JudgedPredictions,
                        model2: JudgedPredictions) -> float:
    """RHR — head-count ratio of model1 over model2."""
    return (model1.relevant_head / model2.relevant_head
            if model2.relevant_head else 0.0)


def precision_recall(predictions: Mapping[int, Sequence[str]],
                     ground_truth: Mapping[int, Iterable[str]]
                     ) -> Tuple[float, float]:
    """Micro-averaged precision/recall against click ground truths.

    Items absent from ``ground_truth`` contribute predictions (hurting
    precision) but no recall mass, mirroring evaluation against the
    sparse click data (Table V uses RE's associations as the truth).

    Returns:
        ``(precision, recall)``.
    """
    tp = 0
    n_pred = 0
    n_truth = 0
    for item_id, texts in predictions.items():
        truths = set(ground_truth.get(item_id, ()))
        preds = set(texts)
        tp += len(preds & truths)
        n_pred += len(preds)
        n_truth += len(truths)
    precision = tp / n_pred if n_pred else 0.0
    recall = tp / n_truth if n_truth else 0.0
    return precision, recall
