"""End-to-end experiment harness (paper Section IV).

Reproduces the paper's pipeline on the synthetic substrate:

1. Generate the catalog and query universe (CAT 1/2/3 profiles).
2. Simulate a six-month training window and a disjoint 15-day test window
   of buyer activity ("This removes any bias that models have based on
   their training data", Section IV-B).
3. Curate keyphrases and construct GraphEx; train the five baselines on
   the click data.
4. Sample test items, collect ≤40 predictions per model per item.
5. Judge relevance, split head/tail at the category's P90 search count,
   compute every metric in Tables III-V and Figure 4.

Everything is cached on the :class:`Experiment` so all benches can share
one simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..baselines import (
    FastTextLike,
    Graphite,
    KeyphraseRecommender,
    Prediction,
    RulesEngine,
    SLEmb,
    SLQuery,
    TrainingData,
)
from ..core.curation import CurationConfig, curate
from ..core.model import GraphExModel
from ..core.tokenize import DEFAULT_TOKENIZER, Tokenizer
from ..data.catalog import Item
from ..data.generator import DEFAULT_PROFILE, Dataset, DatasetProfile, generate_dataset
from ..search.logs import SearchLog
from ..search.sessions import SessionSimulator
from .judge import OracleJudge, RelevanceJudge
from .metrics import (
    HeadClassifier,
    JudgedPredictions,
    judge_model_predictions,
)


class GraphExRecommender(KeyphraseRecommender):
    """Adapter exposing :class:`GraphExModel` through the shared interface.

    Production GraphEx generates "a predetermined number of keyphrases
    (10-20)" per item (Section III-F): candidate groups are pruned at
    ``k`` and the ranked output is capped at ``2 * k``, so the threshold
    group may spill past ``k`` but never floods the budget.
    """

    name = "GraphEx"

    def __init__(self, model: GraphExModel, k: int = 10) -> None:
        self._model = model
        self._k = k

    @property
    def model(self) -> GraphExModel:
        """The wrapped GraphEx model."""
        return self._model

    def recommend(self, item_id: int, title: str, leaf_id: int,
                  k: int = 20) -> List[Prediction]:
        recs = self._model.recommend(
            title, leaf_id, k=self._k, hard_limit=min(k, 2 * self._k))
        return [Prediction(text=r.text, score=r.score) for r in recs]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one experiment run.

    The search-count curation thresholds are scaled to simulation volume:
    the paper's "once per day over six months" (180) maps to a much
    smaller absolute count here, preserving the head/tail semantics.
    """

    profile: DatasetProfile = DEFAULT_PROFILE
    n_train_events: int = 400_000
    n_test_events: int = 40_000
    curation: CurationConfig = field(default_factory=lambda: CurationConfig(
        min_search_count=12, min_keyphrases=300, floor_search_count=2))
    test_items_per_meta: Mapping[str, int] = field(
        default_factory=lambda: {"CAT_1": 300, "CAT_2": 150, "CAT_3": 80})
    prediction_limit: int = 40
    graphex_k: int = 10
    seed: int = 43


class Experiment:
    """One fully-simulated reproduction run over all meta categories."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        self._prepared = False
        self.dataset: Optional[Dataset] = None
        self.train_log: Optional[SearchLog] = None
        self.test_log: Optional[SearchLog] = None
        self._judge: Optional[RelevanceJudge] = None
        self._training_data: Dict[str, TrainingData] = {}
        self._head: Dict[str, HeadClassifier] = {}
        self._test_items: Dict[str, List[Item]] = {}
        self._models: Dict[str, Dict[str, KeyphraseRecommender]] = {}
        self._predictions: Dict[str, Dict[str, Dict[int, List[str]]]] = {}
        self._judged: Dict[str, Dict[str, JudgedPredictions]] = {}

    # ------------------------------------------------------------------
    # Stage 1: simulation
    # ------------------------------------------------------------------
    def prepare(self) -> "Experiment":
        """Generate data and simulate the train/test windows (idempotent)."""
        if self._prepared:
            return self
        cfg = self.config
        self.dataset = generate_dataset(cfg.profile)
        simulator = SessionSimulator(
            self.dataset.catalog, self.dataset.queries, seed=cfg.seed)
        self.train_log = simulator.run(
            cfg.n_train_events, day_start=1, day_end=180, rounds=4)
        self.test_log = simulator.run(
            cfg.n_test_events, day_start=181, day_end=195, rounds=1)
        self._judge = OracleJudge(self.dataset.catalog)
        self._prepared = True
        return self

    @property
    def judge(self) -> RelevanceJudge:
        """The oracle relevance judge for this run."""
        self.prepare()
        return self._judge

    def _leaf_ids_of(self, meta: str) -> List[int]:
        return [leaf.leaf_id
                for leaf in self.dataset.catalog.tree.leaves_of(meta)]

    # ------------------------------------------------------------------
    # Stage 2: per-meta training inputs
    # ------------------------------------------------------------------
    def training_data(self, meta: str) -> TrainingData:
        """Click-based training data for one meta category (cached)."""
        self.prepare()
        cached = self._training_data.get(meta)
        if cached is not None:
            return cached
        leaf_ids = set(self._leaf_ids_of(meta))
        items = [(it.item_id, it.title, it.leaf_id)
                 for it in self.dataset.catalog.items_in_meta(meta)]
        item_ids = {item_id for item_id, _t, _l in items}
        click_pairs = {
            item_id: queries
            for item_id, queries in self.train_log.item_query_pairs().items()
            if item_id in item_ids
        }
        query_leaf = {
            text: leaf_id
            for (leaf_id, text) in self.train_log.search_counts
            if leaf_id in leaf_ids
        }
        data = TrainingData(items=items, click_pairs=click_pairs,
                            query_leaf=query_leaf)
        self._training_data[meta] = data
        return data

    def keyphrase_stats(self, meta: str):
        """Training-window keyphrase stats restricted to one meta."""
        self.prepare()
        leaf_ids = set(self._leaf_ids_of(meta))
        return [stat for stat in self.train_log.keyphrase_stats()
                if stat.leaf_id in leaf_ids]

    def head_classifier(self, meta: str) -> HeadClassifier:
        """P90 head/tail classifier from *test-window* search counts."""
        self.prepare()
        cached = self._head.get(meta)
        if cached is not None:
            return cached
        leaf_ids = set(self._leaf_ids_of(meta))
        counts: Dict[str, int] = {}
        for (leaf_id, text), count in self.test_log.search_counts.items():
            if leaf_id in leaf_ids:
                counts[text] = counts.get(text, 0) + count
        classifier = HeadClassifier(counts)
        self._head[meta] = classifier
        return classifier

    def test_items(self, meta: str) -> List[Item]:
        """Deterministic test-item sample for one meta category.

        Sampling is weighted by product search demand: the paper samples
        from *actively listed* items, and active listings skew toward
        products buyers actually search for.
        """
        self.prepare()
        cached = self._test_items.get(meta)
        if cached is not None:
            return cached
        catalog = self.dataset.catalog
        items = catalog.items_in_meta(meta)
        n = min(self.config.test_items_per_meta.get(meta, 100), len(items))
        demand: Dict[int, float] = {}
        for query in self.dataset.queries:
            demand[query.origin_product_id] = (
                demand.get(query.origin_product_id, 0.0) + query.weight)
        weights = np.array(
            [demand.get(catalog.item(it.item_id).product_id, 0.0) + 1e-9
             for it in items])
        rng = np.random.default_rng(self.config.seed + 1000)
        picked = rng.choice(len(items), size=n, replace=False,
                            p=weights / weights.sum())
        sample = [items[i] for i in sorted(picked)]
        self._test_items[meta] = sample
        return sample

    # ------------------------------------------------------------------
    # Stage 3: models
    # ------------------------------------------------------------------
    def build_graphex(self, meta: str, alignment: str = "lta",
                      curation: Optional[CurationConfig] = None,
                      tokenizer: Tokenizer = DEFAULT_TOKENIZER
                      ) -> GraphExRecommender:
        """Curate and construct a GraphEx model for one meta category."""
        self.prepare()
        curated = curate(self.keyphrase_stats(meta),
                         curation or self.config.curation)
        model = GraphExModel.construct(
            curated, tokenizer=tokenizer, alignment=alignment)
        return GraphExRecommender(model, k=self.config.graphex_k)

    def models(self, meta: str) -> Dict[str, KeyphraseRecommender]:
        """All six recommenders for one meta category (cached)."""
        self.prepare()
        cached = self._models.get(meta)
        if cached is not None:
            return cached
        data = self.training_data(meta)
        built: Dict[str, KeyphraseRecommender] = {
            "GraphEx": self.build_graphex(meta),
            "RE": RulesEngine(self.train_log),
            "SL-query": SLQuery(data),
            "SL-emb": SLEmb(data),
            "fastText": FastTextLike(data),
            "Graphite": Graphite(data),
        }
        self._models[meta] = built
        return built

    # ------------------------------------------------------------------
    # Stage 4: predictions + judging
    # ------------------------------------------------------------------
    def predictions(self, meta: str) -> Dict[str, Dict[int, List[str]]]:
        """model name → item_id → ≤limit predicted texts (cached)."""
        cached = self._predictions.get(meta)
        if cached is not None:
            return cached
        models = self.models(meta)
        items = self.test_items(meta)
        limit = self.config.prediction_limit
        out: Dict[str, Dict[int, List[str]]] = {}
        for name, model in models.items():
            per_item: Dict[int, List[str]] = {}
            for item in items:
                preds = model.recommend(
                    item.item_id, item.title, item.leaf_id, k=limit)
                per_item[item.item_id] = [p.text for p in preds]
            out[name] = per_item
        self._predictions[meta] = out
        return out

    def judged(self, meta: str) -> Dict[str, JudgedPredictions]:
        """model name → judged predictions (cached)."""
        cached = self._judged.get(meta)
        if cached is not None:
            return cached
        titles = {item.item_id: item.title for item in self.test_items(meta)}
        head = self.head_classifier(meta)
        out = {
            name: judge_model_predictions(
                name, preds, titles, self.judge, head)
            for name, preds in self.predictions(meta).items()
        }
        self._judged[meta] = out
        return out

    def rules_engine(self, meta: str) -> RulesEngine:
        """The RE model (Table V ground-truth source)."""
        return self.models(meta)["RE"]

    @property
    def metas(self) -> List[str]:
        """Meta categories in this experiment."""
        self.prepare()
        return self.dataset.metas
