"""Bias-aware evaluation framework (paper Section IV-C).

Relevance judging (oracle / lexical / LLM-prompt), the RP/HP/RRR/RHR
metric family, exclusive diversity, click-based precision/recall, and the
end-to-end :class:`Experiment` harness shared by every bench.
"""

from .diversity import diversity_ratios, exclusive_relevant_head_counts
from .harness import Experiment, ExperimentConfig, GraphExRecommender
from .judge import (
    CallableJudge,
    LexicalJudge,
    MixtralPromptBuilder,
    OracleJudge,
    RelevanceJudge,
)
from .metrics import (
    HeadClassifier,
    JudgedPredictions,
    judge_model_predictions,
    precision_recall,
    relative_head_ratio,
    relative_relevant_ratio,
)
from .reporting import render_bar_chart, render_markdown, render_table

__all__ = [
    "diversity_ratios",
    "exclusive_relevant_head_counts",
    "Experiment",
    "ExperimentConfig",
    "GraphExRecommender",
    "CallableJudge",
    "LexicalJudge",
    "MixtralPromptBuilder",
    "OracleJudge",
    "RelevanceJudge",
    "HeadClassifier",
    "JudgedPredictions",
    "judge_model_predictions",
    "precision_recall",
    "relative_head_ratio",
    "relative_relevant_ratio",
    "render_bar_chart",
    "render_markdown",
    "render_table",
]
