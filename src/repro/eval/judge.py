"""Relevance judges (the paper's AI-evaluation stage, Section IV-C).

The paper prompts Mixtral-8x7B per (title, keyphrase) pair for a yes/no
relevance judgment, benchmarked at >90% agreement with human judges.  We
provide:

* :class:`OracleJudge` — exact judgments from the synthetic generator's
  ground truth (the recommended judge; see DESIGN.md substitutions).
* :class:`LexicalJudge` — a ground-truth-free heuristic (token containment
  with stemming) for judging arbitrary text pairs.
* :class:`MixtralPromptBuilder` — emits the paper's *exact* prompt and
  parses yes/no responses, so a real LLM can be dropped in where one is
  available.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from ..core.tokenize import STEMMING_TOKENIZER, Tokenizer
from ..data.catalog import Catalog
from ..data.queries import QUERY_STOPWORDS
from ..data.relevance import oracle_relevant


class RelevanceJudge(abc.ABC):
    """Decides whether a keyphrase is relevant to an item."""

    @abc.abstractmethod
    def is_relevant(self, item_id: int, title: str, keyphrase: str) -> bool:
        """True when the keyphrase is a sound CPC target for the item."""

    def judge_batch(self, item_id: int, title: str,
                    keyphrases: Sequence[str]) -> List[bool]:
        """Vector form of :meth:`is_relevant` (one item, many keyphrases)."""
        return [self.is_relevant(item_id, title, phrase)
                for phrase in keyphrases]


class OracleJudge(RelevanceJudge):
    """Exact judge backed by the generator's latent products.

    A keyphrase is relevant iff every content token is true of the item's
    underlying product — the same rule that drives the click simulator, so
    evaluation and world model agree.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def is_relevant(self, item_id: int, title: str, keyphrase: str) -> bool:
        product = self._catalog.product_of_item(item_id)
        return oracle_relevant(product, keyphrase.split())


class LexicalJudge(RelevanceJudge):
    """Heuristic judge: stemmed-token containment in the title.

    Relevant when at least ``min_coverage`` of the keyphrase's content
    tokens appear in the title (after stemming).  Needs no ground truth,
    so it can evaluate real-world data; it is stricter than the oracle
    because titles omit some true attributes.
    """

    def __init__(self, min_coverage: float = 1.0,
                 tokenizer: Tokenizer = STEMMING_TOKENIZER) -> None:
        if not 0.0 < min_coverage <= 1.0:
            raise ValueError("min_coverage must be in (0, 1]")
        self._min_coverage = min_coverage
        self._tokenizer = tokenizer

    def is_relevant(self, item_id: int, title: str, keyphrase: str) -> bool:
        phrase_tokens = [t for t in self._tokenizer(keyphrase)
                         if t not in QUERY_STOPWORDS]
        if not phrase_tokens:
            return False
        title_tokens = set(self._tokenizer(title))
        covered = sum(1 for t in phrase_tokens if t in title_tokens)
        return covered / len(phrase_tokens) >= self._min_coverage


_PROMPT_TEMPLATE = (
    "Below is an instruction that describes a task. Write a response that "
    "appropriately completes the request.\n\n"
    "### Instruction:\n"
    "Given an item with title: \"{title}\", determine whether the "
    "keyphrase: \"{keyphrase}\", is relevant for cpc targeting or not by "
    "giving ONLY yes or no answer:\n\n"
    "### Response:"
)


class MixtralPromptBuilder:
    """Builds the paper's exact judging prompt and parses responses.

    No LLM ships with this repository; this class exists so the evaluation
    framework can be pointed at a real endpoint (Mixtral, GPT-4, ...)
    without changing any harness code.
    """

    def build(self, title: str, keyphrase: str) -> str:
        """The prompt string for one (title, keyphrase) pair."""
        return _PROMPT_TEMPLATE.format(title=title, keyphrase=keyphrase)

    def build_batch(self, title: str,
                    keyphrases: Sequence[str]) -> List[str]:
        """Prompts for one item and many keyphrases."""
        return [self.build(title, phrase) for phrase in keyphrases]

    @staticmethod
    def parse_response(response: str) -> bool:
        """Parse a yes/no LLM response; leading whitespace tolerated.

        Raises:
            ValueError: If the response contains neither yes nor no.
        """
        text = response.strip().lower()
        if text.startswith("yes"):
            return True
        if text.startswith("no"):
            return False
        raise ValueError(f"unparseable judge response: {response!r}")


class CallableJudge(RelevanceJudge):
    """Adapter turning any ``(title, keyphrase) -> bool`` callable into a
    judge — e.g. a network client wrapping a real Mixtral endpoint."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def is_relevant(self, item_id: int, title: str, keyphrase: str) -> bool:
        return bool(self._fn(title, keyphrase))
