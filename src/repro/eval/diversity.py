"""Exclusive-diversity metric (paper Section IV-D2, Table IV, Figure 5).

In a multi-source recommendation system only keyphrases *unique to a
model* — present in no other retrieval source for the same item — create
incremental impact.  The metric: per item, count each model's relevant
head keyphrases that no other model recommended; average over items.
Table IV reports GraphEx's average divided by each other model's.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from .metrics import JudgedPredictions


def exclusive_relevant_head_counts(
    judged: Mapping[str, JudgedPredictions],
) -> Dict[str, float]:
    """Average per-item count of *exclusive* relevant head keyphrases.

    Args:
        judged: model name → judged predictions (all over the same items).

    Returns:
        model name → average exclusive relevant-head keyphrases per item.
    """
    model_names = list(judged)
    item_ids: Set[int] = set()
    for result in judged.values():
        item_ids.update(result.per_item)

    totals = {name: 0 for name in model_names}
    for item_id in item_ids:
        # All keyphrases any model predicted for this item, by model.
        predicted_by: Dict[str, Set[str]] = {
            name: {text for text, _rel, _head
                   in judged[name].per_item.get(item_id, [])}
            for name in model_names
        }
        for name in model_names:
            others: Set[str] = set()
            for other in model_names:
                if other != name:
                    others |= predicted_by[other]
            for text, relevant, head in judged[name].per_item.get(item_id, []):
                if relevant and head and text not in others:
                    totals[name] += 1

    n_items = len(item_ids) or 1
    return {name: totals[name] / n_items for name in model_names}


def diversity_ratios(judged: Mapping[str, JudgedPredictions],
                     reference: str = "GraphEx") -> Dict[str, float]:
    """Table IV: reference model's exclusive count over each other model's.

    Values above 1 mean the reference contributes more unique relevant
    head keyphrases than the compared model.

    Raises:
        KeyError: If ``reference`` is not among the judged models.
    """
    counts = exclusive_relevant_head_counts(judged)
    ref = counts[reference]
    out: Dict[str, float] = {}
    for name, value in counts.items():
        if name == reference:
            continue
        out[name] = ref / value if value else float("inf")
    return out
