"""Asyncio multi-stream NRT serving front (Figure 7 at production scale).

The paper's NRT branch is "triggered by the event of new item creation
or revision, behind a Flink processing window".  :class:`NRTService`
models one such window synchronously; this module puts an asyncio front
in front of *many* of them, so one process drives many NRT streams —
one per marketplace site, meta category, or ingest partition — the way
a Flink job multiplexes keyed windows over one task slot.

Per stream, the front provides what the synchronous service cannot:

* **Bounded ingestion queues.**  ``await submit(...)`` applies
  backpressure when a stream's queue is full instead of buffering
  without limit.
* **Wall-clock window timers.**  :meth:`NRTService.submit` closes
  windows on *event time* only — a quiet window waits for the next
  event to observe that its time is up.  The front arms a wall-clock
  timer whenever a window opens and flushes it when the timer fires,
  so the last events of a burst are served without waiting for the
  next burst.
* **Micro-batch execution off the event loop.**  Window flushes run in
  an executor (thread pool by default), keeping the loop free to
  ingest other streams; the micro-batch itself still goes through the
  existing engines (``engine``/``workers``/``parallel`` are forwarded
  to :class:`NRTService`, so thread- or process-parallel shard
  execution composes).
* **Concurrent KV write-through.**  Each stream writes through to its
  own :class:`KeyValueStore` (or a shared one — flushes against the
  same store are serialized with a per-store lock, the stand-in for a
  KV client's single connection).
* **Graceful shutdown.**  :meth:`stop` drains every queue and flushes
  every open window before returning — including events a racing
  submit managed to enqueue behind the shutdown sentinel.
* **Zero-downtime model hot-swap.**  :meth:`refresh_model` quiesces
  each stream in turn (under its store lock, off the event loop, so a
  flush in progress completes under the model that drained its window)
  and retargets it to a freshly constructed model — the paper's daily
  refresh — without dropping an event or interrupting reads.

Because the front drives unmodified :class:`NRTService` instances and
that service's crash-safe flush restores the window on failure, a
failing engine or enrich hook never loses events here either: the
front counts the failure and retries on the next timer tick or event.
Per-request inference output does not depend on batch composition (the
equivalence suites pin this), so the *served* result of a stream is
byte-identical to a synchronous :class:`NRTService` fed the same event
sequence, however the wall-clock timers happened to split the windows.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.model import GraphExModel
from ..core.serialization import open_model
from ..obs import MetricsRegistry
from .kvstore import KeyValueStore
from .nrt import ItemEvent, NRTService, WindowStats, next_generation

#: Sentinel queued by :meth:`AsyncNRTFront.stop` to end a consumer.
_CLOSE = object()


@dataclass
class StreamStats:
    """Observability snapshot of one stream.

    ``n_flush_failures`` counts *retryable* mid-flush failures (the
    crash-safe service kept every event); ``n_dropped`` counts events
    an exception rejected before they were buffered — the only way the
    front ever loses an event, and always a malformed one.
    ``n_pending`` is a point-in-time queue+buffer depth; a snapshot
    taken while :meth:`AsyncNRTFront.stop` is draining may transiently
    count the queued shutdown sentinel as one extra pending event.
    ``n_queue_hwm`` is the ingestion queue's high-water mark — the
    deepest the queue ever got, recorded at enqueue time, so
    saturation *between* two stats polls is visible even though
    ``n_pending`` at both polls reads near zero.
    """

    name: str
    n_submitted: int
    n_pending: int
    n_windows: int
    n_inferred: int
    n_deleted: int
    n_flush_failures: int
    n_dropped: int
    n_queue_hwm: int = 0


class _Stream:
    """Internal per-stream state: service + queue + consumer task."""

    def __init__(self, name: str, service: NRTService,
                 queue: "asyncio.Queue", lock: threading.Lock) -> None:
        self.name = name
        self.service = service
        self.queue = queue
        self.lock = lock
        self.task: Optional["asyncio.Task"] = None
        self.opened_wall: Optional[float] = None
        self.n_submitted = 0
        self.n_flush_failures = 0
        self.n_dropped = 0
        self.queue_hwm = 0


class AsyncNRTFront:
    """Multiplexes many named NRT streams over one asyncio event loop.

    Args:
        model: The serving GraphEx model, shared by every stream.
        window_size: Per-stream count bound, as in :class:`NRTService`.
        window_seconds: Per-stream *event-time* bound forwarded to
            :class:`NRTService`.
        wall_clock_seconds: Wall-clock bound for the front's own window
            timers (defaults to ``window_seconds``): an open window
            flushes this many real seconds after it opened even if no
            further event arrives.
        max_pending: Bound of each stream's ingestion queue;
            :meth:`submit` awaits (backpressure) while a queue is full.
        k, hard_limit, enrich, engine, workers, parallel: Forwarded to
            each stream's :class:`NRTService`.
        executor: Where each stream's window micro-batch shards run —
            an :class:`repro.core.execution.Executor` instance or
            spelling (``"serial"``, ``"thread"`` (default),
            ``"process"``, ``"cluster"``), forwarded to every stream's
            :class:`NRTService`.  For back compatibility a
            ``concurrent.futures.Executor`` is still accepted here and
            treated as ``flush_executor``.
        flush_executor: Optional ``concurrent.futures`` executor for
            window flush hand-off.  Defaults to a private thread pool
            sized to the stream count (processes make no sense here —
            the service mutates its own buffer); pass a wider pool to
            overlap more concurrent flushes.
        metrics: A :class:`repro.obs.MetricsRegistry` shared by the
            front and every stream's :class:`NRTService` (and its
            executor), so one snapshot covers the whole front.  A
            fresh private one is created by default — queue-depth
            high-water marks and staleness gauges are recorded without
            any wiring.

    Usage::

        front = AsyncNRTFront(model, window_size=64)
        front.add_stream("site-us")
        front.add_stream("site-de")
        async with front:                      # start ... stop
            await front.submit("site-us", event)
        front.serve("site-us", item_id)        # after (or during) a run
    """

    def __init__(self, model: GraphExModel, *,
                 window_size: int = 32, window_seconds: float = 1.0,
                 wall_clock_seconds: Optional[float] = None,
                 max_pending: int = 256,
                 k: int = 20, hard_limit: int = 40,
                 enrich: Optional[Callable[[ItemEvent], str]] = None,
                 engine: str = "fast", workers: int = 1,
                 parallel: Optional[str] = None,
                 executor=None,
                 flush_executor: Optional[Executor] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        if wall_clock_seconds is not None and wall_clock_seconds <= 0:
            raise ValueError("wall_clock_seconds must be > 0, got "
                             f"{wall_clock_seconds}")
        if isinstance(executor, Executor):
            # Legacy call shape: `executor=` used to be the flush pool
            # (a concurrent.futures.Executor).  Shard executors are
            # repro.core.execution.Executor instances or strings — the
            # two hierarchies are disjoint, so the meaning is
            # unambiguous.
            if flush_executor is not None:
                raise ValueError(
                    "got two flush pools: a concurrent.futures.Executor "
                    "as executor= (legacy spelling) and flush_executor=; "
                    "pass only flush_executor=")
            flush_executor = executor
            executor = None
        self._model = model
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._service_kwargs = dict(
            window_size=window_size, window_seconds=window_seconds,
            k=k, hard_limit=hard_limit, enrich=enrich, engine=engine,
            workers=workers, parallel=parallel, executor=executor)
        self._wall_clock_seconds = (
            window_seconds if wall_clock_seconds is None
            else wall_clock_seconds)
        self._max_pending = max_pending
        self._executor = flush_executor
        self._owns_executor = flush_executor is None
        self._streams: Dict[str, _Stream] = {}
        self._store_locks: Dict[int, threading.Lock] = {}
        self._generation = 0
        self._started = False
        self._closing = False
        # Constructing a probe service now surfaces bad engine/executor
        # combinations at front construction, not at first add_stream.
        NRTService(model, KeyValueStore(), **self._service_kwargs)

    # ------------------------------------------------------------------
    # Stream management

    def add_stream(self, name: str,
                   store: Optional[KeyValueStore] = None) -> KeyValueStore:
        """Register a named stream; returns its KV store.

        Streams may share a ``store`` (their flushes then serialize on a
        per-store lock); by default each stream gets a private one.  May
        be called before or after :meth:`start` — a stream added to a
        running front starts consuming immediately.
        """
        if name in self._streams:
            raise ValueError(f"stream {name!r} already exists")
        if self._closing:
            raise RuntimeError("front is stopping")
        store = store if store is not None else KeyValueStore()
        # The stream serializes its service calls on the store's own
        # transaction lock, so flushes sharing a store serialize not
        # just with each other but with ANY writer holding it — e.g. a
        # daily full load refreshing the same store from another
        # thread.  (Duck-typed stores without a lock fall back to a
        # per-front one, which still serializes the front's own
        # streams.)
        lock = getattr(store, "lock", None)
        if lock is None:
            lock = self._store_locks.setdefault(id(store),
                                                threading.Lock())
        service = NRTService(self._model, store, metrics=self.metrics,
                             stream=name, **self._service_kwargs)
        if self._generation:
            # A stream added after a hot-swap starts on the refreshed
            # model already (self._model tracks it); align its window
            # generation stamps with the rest of the front.
            service.refresh_model(self._model, self._generation)
        stream = _Stream(name, service,
                         asyncio.Queue(maxsize=self._max_pending), lock)
        self._streams[name] = stream
        if self._started:
            stream.task = asyncio.get_running_loop().create_task(
                self._consume(stream))
        return store

    @property
    def stream_names(self) -> List[str]:
        """Registered stream names, in registration order."""
        return list(self._streams)

    def _stream(self, name: str) -> _Stream:
        try:
            return self._streams[name]
        except KeyError:
            raise KeyError(f"unknown stream {name!r}") from None

    # ------------------------------------------------------------------
    # Lifecycle

    async def start(self) -> None:
        """Spawn the consumer task of every registered stream."""
        if self._started:
            raise RuntimeError("front already started")
        self._started = True
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=max(2, len(self._streams) or 2),
                thread_name_prefix="nrt-flush")
        loop = asyncio.get_running_loop()
        for stream in self._streams.values():
            stream.task = loop.create_task(self._consume(stream))

    async def stop(self) -> None:
        """Graceful shutdown: drain every queue, flush every open
        window, then release the executor.  Idempotent."""
        if not self._started or self._closing:
            return
        self._closing = True
        for stream in self._streams.values():
            await stream.queue.put(_CLOSE)
        await asyncio.gather(*(s.task for s in self._streams.values()
                               if s.task is not None))
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None   # a restarted front gets a fresh pool
        self._started = False
        self._closing = False

    async def __aenter__(self) -> "AsyncNRTFront":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Ingestion and reads

    async def submit(self, name: str, event: ItemEvent) -> None:
        """Enqueue one event onto a stream (awaits when the stream's
        queue is full — the backpressure point)."""
        if self._closing:
            raise RuntimeError("front is stopping")
        if not self._started:
            raise RuntimeError("front not started")
        stream = self._stream(name)
        await stream.queue.put(event)
        stream.n_submitted += 1
        # High-water mark at ENQUEUE time: stats() polls only see the
        # depth of the moment, so a burst fully drained between two
        # polls would otherwise be invisible.  The gauge's max tracks
        # the same mark in registry snapshots.
        depth = stream.queue.qsize()
        if depth > stream.queue_hwm:
            stream.queue_hwm = depth
        self.metrics.inc("front.submitted", stream=name)
        self.metrics.gauge("front.queue.depth", float(depth), stream=name)

    async def join(self) -> None:
        """Block until every queued event has been *consumed* (pulled
        off its queue and submitted to its stream's service).  Events
        may still sit in open window buffers afterwards — pair with
        :meth:`flush_all` (or :meth:`stop`) to force them out."""
        await asyncio.gather(*(s.queue.join()
                               for s in self._streams.values()))

    async def flush_stream(self, name: str) -> None:
        """Flush one stream's open window now (off the event loop)."""
        await self._flush(self._stream(name))

    async def flush_all(self) -> None:
        """Flush every stream's open window concurrently."""
        await asyncio.gather(*(self._flush(s)
                               for s in self._streams.values()))

    @property
    def model_generation(self) -> int:
        """How many model refreshes this front has seen (0 = the
        construction-time model)."""
        return self._generation

    async def refresh_model(self, model: Union[GraphExModel, str, Path],
                            generation: Optional[int] = None) -> int:
        """Zero-downtime hot-swap: retarget every stream to ``model``.

        The daily loop's serving edge: a freshly constructed model is
        swapped into a *running* front without dropping an event or
        interrupting reads.  ``model`` may also be an artifact
        directory path — it is opened *once* here (zero-copy mmap for a
        format-3 artifact, via
        :func:`repro.core.serialization.open_model`) and every stream
        is retargeted at the same mapped instance, so the whole front
        shares one physical copy and the swap is a remap, not N
        reloads.  The new model is validated against the
        front's engine/parallel configuration first, so an incompatible
        model leaves every stream serving the old one.  Then each
        stream is quiesced in turn — its store lock is taken *off the
        event loop* (in the executor, so a flush in progress completes
        first and ingestion on other streams keeps flowing) — and its
        service swapped at that window boundary.  A window drained
        before the swap finishes under the old model; every window
        drained after it (including events already buffered) is
        inferred under the new one, stamped with the new generation in
        its :class:`~repro.serving.nrt.WindowStats`.

        Streams added after the swap start on the new model.  May be
        called before :meth:`start` (the swap is then immediate) or
        mid-run; returns the front's model generation after the swap.
        """
        if self._closing:
            raise RuntimeError("front is stopping")
        loop = asyncio.get_running_loop()
        # open_model on an artifact path is filesystem work (the v3
        # mmap open); off-loop so a slow disk cannot stall every
        # stream's windows mid-swap (async-no-blocking).  For an
        # already-opened model it is a passthrough.
        model = await loop.run_in_executor(None, open_model, model)
        # Probe once up front, exactly like __init__: a bad
        # model/engine pairing must fail before ANY stream is swapped.
        NRTService(model, KeyValueStore(), **self._service_kwargs)
        self._model = model
        self._generation = next_generation(self._generation, generation)
        if self._started:
            for stream in list(self._streams.values()):
                executor = self._executor
                if executor is not None and not self._closing:
                    try:
                        await loop.run_in_executor(
                            executor, self._locked, stream,
                            stream.service.refresh_model, model,
                            self._generation)
                        continue
                    except RuntimeError:
                        # stop() won the race and shut the executor
                        # down between hand-offs; fall through.
                        pass
                # The executor is gone mid-swap: finish the remaining
                # quiesces inline so the front never ends half-swapped
                # (the lock still serializes against draining flushes;
                # blocking the loop is bounded — we are shutting down).
                self._locked(stream, stream.service.refresh_model,
                             model, self._generation)
        else:
            for stream in self._streams.values():
                stream.service.refresh_model(model, self._generation)
        return self._generation

    def serve(self, name: str, item_id: int) -> List[str]:
        """Seller-facing read: current keyphrases on one stream."""
        return self._stream(name).service.serve(item_id)

    def processed_windows(self, name: str) -> List[WindowStats]:
        """Every window one stream has processed — including which
        model generation served each (hot-swap observability)."""
        return self._stream(name).service.processed_windows

    def stats(self, name: str) -> StreamStats:
        """Observability snapshot of one stream."""
        stream = self._stream(name)
        windows = stream.service.processed_windows
        # A stats poll is a natural observation point: refresh the
        # stream's staleness gauge so a registry snapshot taken right
        # after reflects staleness as of now, not the last window.
        stream.service.record_staleness()
        return StreamStats(
            name=name,
            n_submitted=stream.n_submitted,
            n_pending=(stream.queue.qsize()
                       + stream.service.pending_events),
            n_windows=len(windows),
            n_inferred=sum(w.n_inferred for w in windows),
            n_deleted=sum(w.n_deleted for w in windows),
            n_flush_failures=stream.n_flush_failures,
            n_dropped=stream.n_dropped,
            n_queue_hwm=stream.queue_hwm)

    def all_stats(self) -> List[StreamStats]:
        """Snapshots of every stream, in registration order."""
        return [self.stats(name) for name in self._streams]

    # ------------------------------------------------------------------
    # Internals

    def _locked(self, stream: _Stream, fn, *args):
        """Run a service call under the stream's store lock (executed in
        the executor; the lock serializes flushes that share a store)."""
        with stream.lock:
            return fn(*args)

    def _submit_batch(self, stream: _Stream,
                      events: List[ItemEvent]) -> Tuple[int, int]:
        """Submit a drained batch to the service (in the executor).

        Returns ``(flush_failures, dropped)``.  A flush failure is
        benign: the crash-safe submit kept the event buffered, and a
        retry (timer, next batch, shutdown) replays it.  ``dropped``
        counts events an exception rejected *before* they reached the
        buffer (e.g. a malformed timestamp breaking the window
        arithmetic) — those are genuinely gone and are surfaced in
        :class:`StreamStats` rather than miscounted as retryable."""
        failures = dropped = 0
        with stream.lock:
            for event in events:
                try:
                    stream.service.submit(event)
                except Exception:
                    # Public retention signal (identity-exact — see
                    # NRTService.event_retained): the crash-safe submit
                    # kept the event for replay, or it died before
                    # buffering and is genuinely gone.
                    if stream.service.event_retained(event):
                        failures += 1
                    else:
                        dropped += 1
        return failures, dropped

    async def _flush(self, stream: _Stream) -> None:
        """One flush attempt off the loop; failures are counted, never
        raised — the crash-safe service retains the events for retry."""
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(
                self._executor, self._locked, stream,
                stream.service.flush)
        except Exception:
            stream.n_flush_failures += 1
            self.metrics.inc("front.flush.failures", stream=stream.name)
            # Back the timer off one full window before retrying.
            stream.opened_wall = loop.time()
        else:
            stream.opened_wall = None

    async def _consume(self, stream: _Stream) -> None:
        """Per-stream consumer: serializes the stream's service calls,
        arming a wall-clock timer whenever a window is open.

        Every event already sitting in the queue rides along in ONE
        executor hand-off (the submit loop runs off the event loop), so
        a fast producer costs one thread round-trip per *batch*, not
        per event."""
        loop = asyncio.get_running_loop()
        closing = False
        while not closing:
            timeout = None
            if stream.opened_wall is not None:
                timeout = max(0.0, self._wall_clock_seconds
                              - (loop.time() - stream.opened_wall))
            try:
                if timeout is None:
                    event = await stream.queue.get()
                else:
                    event = await asyncio.wait_for(stream.queue.get(),
                                                   timeout)
            except asyncio.TimeoutError:
                # The wall-clock window expired with no event in sight:
                # this is exactly the flush the event-time-only service
                # cannot perform on its own.
                await self._flush(stream)
                continue
            if event is _CLOSE:
                stream.queue.task_done()
                break
            batch = [event]
            while True:              # drain whatever is already queued
                try:
                    queued = stream.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if queued is _CLOSE:
                    closing = True
                    break
                batch.append(queued)
            windows_before = len(stream.service.processed_windows)
            failures, dropped = await loop.run_in_executor(
                self._executor, self._submit_batch, stream, batch)
            stream.n_flush_failures += failures
            stream.n_dropped += dropped
            for _ in range(len(batch) + (1 if closing else 0)):
                stream.queue.task_done()
            if stream.service.pending_events:
                # The timer measures from window open: (re)arm it when
                # no window was open, or when the batch closed windows
                # and its leftover events opened a fresh one (keeping
                # the old start would fire the new window's timer
                # prematurely).
                closed_any = (len(stream.service.processed_windows)
                              > windows_before)
                if closed_any or stream.opened_wall is None:
                    stream.opened_wall = loop.time()
            else:
                stream.opened_wall = None
        # Shutdown.  A submit that passed the _closing check can still
        # land its event *behind* the _CLOSE sentinel: with the queue
        # full the producer parks inside queue.put(), a get() on this
        # side frees one slot and wakes it, and if stop() slips the
        # sentinel into that slot first the racing event arrives after
        # _CLOSE.  Breaking at the sentinel alone would strand (and
        # silently lose) such events, so drain the queue until it stays
        # empty across a loop tick — each drained slot wakes at most
        # one parked producer, whose put lands within the next tick.
        while True:
            leftovers: List[ItemEvent] = []
            while True:
                try:
                    queued = stream.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if queued is _CLOSE:
                    stream.queue.task_done()
                    continue
                leftovers.append(queued)
            if not leftovers:
                await asyncio.sleep(0)   # let a just-woken producer land
                if stream.queue.empty():
                    break
                continue
            failures, dropped = await loop.run_in_executor(
                self._executor, self._submit_batch, stream, leftovers)
            stream.n_flush_failures += failures
            stream.n_dropped += dropped
            for _ in leftovers:
                stream.queue.task_done()
        # Flush whatever is still buffered.  One attempt per remaining
        # failure budget would be arbitrary — retry while the flush
        # keeps failing *and* making the failure visible, bounded to
        # avoid spinning on a permanently broken hook.
        for _ in range(3):
            if not stream.service.pending_events:
                break
            before = stream.n_flush_failures
            await self._flush(stream)
            if stream.n_flush_failures == before:
                break
