"""NuKV-like versioned key-value store.

Production GraphEx writes batch predictions into NuKV, "a Key-Value store
accessed via eBay's inference API, subsequently serving sellers on the
platform" (Section IV-H).  This in-process stand-in keeps the same
contract: versioned bulk loads, point reads, and atomic swap of the
serving version so a batch refresh never serves a half-written table.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Dict, Generic, Iterator, List, Mapping, Optional, TypeVar

V = TypeVar("V")


def transaction_lock(store):
    """``store.lock``, or a no-op context manager for duck-typed stores
    that predate it.  Writers use this instead of touching ``.lock``
    directly, so a lock-less store degrades to the old single-writer
    contract rather than raising mid-transaction (where e.g. an NRT
    flush has already drained its window buffer)."""
    lock = getattr(store, "lock", None)
    return lock if lock is not None else nullcontext()


class KeyValueStore(Generic[V]):
    """Versioned KV store with atomic version promotion.

    Writers stage data into a new version with :meth:`bulk_load` /
    :meth:`put`, then :meth:`promote` it; readers always see the promoted
    version.  Old versions are retained until :meth:`prune`.

    :attr:`lock` is the store's *transaction* lock (reentrant): every
    writer whose correctness spans multiple calls — stage, fill,
    promote — must hold it for the whole transaction, the stand-in for
    a KV client's single connection.  The serving-layer writers
    (:class:`~repro.serving.nrt.NRTService` flushes, the batch
    pipeline's loads, the async front's per-stream executor hand-offs)
    all do, so e.g. a daily ``full_load`` running in one thread cannot
    interleave with an NRT window flush on the same store in another:
    without that, two concurrent :meth:`create_version` calls could be
    handed the same id, and a flush seeded by :meth:`copy_from_serving`
    *before* a full load's promote could re-promote yesterday's table
    over it afterwards.  Point reads stay lock-free (:meth:`get`
    already tolerates racing promote+prune).
    """

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self._versions: Dict[int, Dict[int, V]] = {}
        self._serving_version: Optional[int] = None
        self._next_version = 1
        self._open_staging: set = set()

    def create_version(self) -> int:
        """Open a new staging version and return its id.

        The version stays *open* — exempt from :meth:`prune` — until it
        is either :meth:`promote`\\ d or :meth:`abandon`\\ ed, so a slow
        writer can never have its staging table pruned out from under a
        later :meth:`put`.
        """
        version = self._next_version
        self._next_version += 1
        self._versions[version] = {}
        self._open_staging.add(version)
        return version

    def put(self, version: int, key: int, value: V) -> None:
        """Write one record into a staging version.

        Raises:
            KeyError: If the version does not exist.
            ValueError: If the version is already serving (immutable).
        """
        if version == self._serving_version:
            raise ValueError("cannot write to the serving version")
        self._versions[version][key] = value

    def bulk_load(self, version: int, records: Mapping[int, V]) -> None:
        """Write many records into a staging version."""
        if version == self._serving_version:
            raise ValueError("cannot write to the serving version")
        self._versions[version].update(records)

    def copy_from_serving(self, version: int) -> None:
        """Seed a staging version with the current serving data
        (the daily-differential merge starts from yesterday's table).

        When nothing is serving yet the seed is empty, but the target
        ``version`` is validated either way: an unknown version is a
        caller bug and raises exactly as :meth:`put` does (it used to be
        a silent no-op whenever no version was serving).

        Raises:
            KeyError: If the version does not exist.
            ValueError: If the version is already serving (seeding the
                live table with itself is a write to the serving
                version).
        """
        if version == self._serving_version:
            raise ValueError("cannot write to the serving version")
        if version not in self._versions:
            raise KeyError(f"unknown version {version}")
        if self._serving_version is not None:
            self._versions[version].update(
                self._versions[self._serving_version])

    def promote(self, version: int) -> None:
        """Atomically make a staged version the serving one.

        Raises:
            KeyError: If the version does not exist.
        """
        if version not in self._versions:
            raise KeyError(f"unknown version {version}")
        self._serving_version = version
        self._open_staging.discard(version)

    def abandon(self, version: int) -> None:
        """Discard a staging version whose writer failed mid-load.

        Closes the version's prune exemption and drops its data, so a
        crashed writer (an NRT flush whose engine raised, a batch load
        that aborted) does not leak an unpromotable table forever.

        Raises:
            KeyError: If the version does not exist.
            ValueError: If the version is already serving (abandoning
                the live table would break every reader).
        """
        if version == self._serving_version:
            raise ValueError("cannot abandon the serving version")
        if version not in self._versions:
            raise KeyError(f"unknown version {version}")
        del self._versions[version]
        self._open_staging.discard(version)

    def get(self, key: int) -> Optional[V]:
        """Point read from the serving version (None when absent or no
        version is serving)."""
        if self._serving_version is None:
            return None
        # .get on the outer dict: a reader racing a concurrent
        # promote+prune (the async front reads while flushes write
        # through from executor threads) may observe a version id whose
        # table was just pruned; that read resolves to "absent", not a
        # crash.
        return self._versions.get(self._serving_version, {}).get(key)

    def delete(self, version: int, key: int) -> None:
        """Remove one record from a staging version.

        A no-op when the *key* is absent (deleting an already-deleted
        item is fine), but an unknown *version* is a caller bug and
        raises, exactly as :meth:`put` does.

        Raises:
            KeyError: If the version does not exist.
            ValueError: If the version is already serving (immutable).
        """
        if version == self._serving_version:
            raise ValueError("cannot write to the serving version")
        self._versions[version].pop(key, None)

    @property
    def serving_version(self) -> Optional[int]:
        """The promoted version id, or None before the first promotion."""
        return self._serving_version

    @property
    def versions(self) -> List[int]:
        """All retained version ids."""
        return sorted(self._versions)

    def size(self, version: Optional[int] = None) -> int:
        """Record count of a version (default: serving; 0 when none)."""
        version = self._serving_version if version is None else version
        if version is None or version not in self._versions:
            return 0
        return len(self._versions[version])

    def keys(self, version: Optional[int] = None) -> Iterator[int]:
        """Keys of a version (default: serving)."""
        version = self._serving_version if version is None else version
        if version is None or version not in self._versions:
            return iter(())
        return iter(self._versions[version])

    def prune(self, keep_latest: int = 2) -> None:
        """Drop all but the newest ``keep_latest`` versions.

        The serving version is always kept, and so is every *open*
        staging version (created but not yet promoted or abandoned):
        pruning a table a writer still holds would make its later
        :meth:`put` raise ``KeyError`` on a version id it was handed in
        good faith.  Writers that fail must :meth:`abandon` their
        version so this exemption does not leak tables forever.

        ``keep_latest=0`` keeps *only* those exemptions — "retain no
        history" (a ``[-0:]`` slice used to make it silently keep
        everything).

        Raises:
            ValueError: If ``keep_latest`` is negative.
        """
        if keep_latest < 0:
            raise ValueError(
                f"keep_latest must be >= 0, got {keep_latest}")
        keep = (set(sorted(self._versions)[-keep_latest:])
                if keep_latest else set())
        if self._serving_version is not None:
            keep.add(self._serving_version)
        keep.update(self._open_staging)
        self._versions = {v: data for v, data in self._versions.items()
                          if v in keep}
