"""Near-real-time (NRT) inference service (Figure 7, right branch).

"NRT serves items on an urgent basis, such as items newly created or
revised by sellers ... triggered by the event of new item creation or
revision, behind a Flink processing window and feature enrichment."

We model the Flink window as a count/time-bounded micro-batch buffer:
events accumulate until the window closes, then the whole window is
inferred as one batch — through the vectorized leaf-batched engine by
default (``engine="reference"`` selects the scalar cross-check path) —
and written through to the KV store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch import (batch_recommend, validate_hard_limit,
                          validate_model_for_engine)
from ..core.model import GraphExModel
from ..core.serialization import open_model
from ..obs import MetricsRegistry
from .kvstore import KeyValueStore, transaction_lock


class ItemEventKind(Enum):
    """Seller actions that trigger NRT inference."""

    CREATED = "created"
    REVISED = "revised"
    DELETED = "deleted"


@dataclass(frozen=True)
class ItemEvent:
    """One item lifecycle event entering the NRT stream."""

    kind: ItemEventKind
    item_id: int
    title: str
    leaf_id: int
    timestamp: float


def next_generation(current: int, explicit: Optional[int]) -> int:
    """The swap-generation rule shared by every ``refresh_model``
    across the serving stack: adopt an orchestrator's explicit number,
    else increment the local one — never going backwards.  A target's
    generation is strictly increasing across swaps, so one number can
    never name two different models on the same target (an explicit
    number at or below the local history is bumped past it instead)."""
    return current + 1 if explicit is None else max(current + 1, explicit)


@dataclass
class WindowStats:
    """Outcome of one processed window.

    ``model_generation`` records which model refresh served the window
    (0 = the construction-time model), so observers of a hot-swapped
    service can see exactly which model version produced a given
    window's predictions.
    """

    n_events: int
    n_inferred: int
    n_deleted: int
    model_generation: int = 0


class NRTService:
    """Event-driven near-real-time inference behind a processing window.

    Args:
        model: The serving GraphEx model.
        store: KV store shared with the batch pipeline.
        window_size: Close the window after this many events.
        window_seconds: ... or after this much event time has elapsed.
        k: Target predictions per item.
        hard_limit: Strict per-item cap.
        enrich: Optional feature-enrichment hook applied to each event
            before inference (returns a possibly rewritten title).
        engine: Inference engine for the window micro-batch — ``"fast"``
            (vectorized leaf-batched, default) or ``"reference"``.
        workers: Worker count for the window micro-batch (ignored when
            ``executor`` is an instance — it carries its own).
        parallel: Legacy spelling of ``executor`` (``"thread"`` /
            ``"process"``); pass one or the other, not both.
        executor: Where the fast engine's leaf-group shards run — an
            :class:`repro.core.execution.Executor` instance or spelling
            (``"serial"``, ``"thread"`` (default), ``"process"``,
            ``"cluster"``); identical output for every substrate (see
            :func:`repro.core.batch.batch_recommend`).  Resolved once
            here, so shard timings accumulate in one
            :class:`~repro.core.execution.CostModel` across windows.
        metrics: A :class:`repro.obs.MetricsRegistry` to record the
            service's counters, window-latency histogram, and model
            staleness gauge into (a fresh private one by default).
            The registry is also handed to the resolved executor when
            one is built here, so shard timings land in the same
            snapshot.  Instrumentation is observation only — it never
            changes what a window serves.
        stream: Label stamped on every metric this service records
            (the async front names each stream; a standalone service
            defaults to ``"default"``).
    """

    def __init__(self, model: GraphExModel, store: KeyValueStore,
                 window_size: int = 32, window_seconds: float = 1.0,
                 k: int = 20, hard_limit: int = 40,
                 enrich: Optional[Callable[[ItemEvent], str]] = None,
                 engine: str = "fast", workers: int = 1,
                 parallel: Optional[str] = None,
                 executor=None,
                 metrics: Optional[MetricsRegistry] = None,
                 stream: str = "default") -> None:
        from ..core.execution import resolve_executor

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stream_label = stream
        # Fail here, not mid-flush where the window's events would
        # already be drained and lost.
        self._executor = resolve_executor(executor, parallel=parallel,
                                          workers=workers, engine=engine,
                                          metrics=self.metrics)
        validate_model_for_engine(model, engine,
                                  executor=self._executor)
        validate_hard_limit(hard_limit)
        self.model = model
        self._store = store
        self._window_size = window_size
        self._window_seconds = window_seconds
        self._k = k
        self._hard_limit = hard_limit
        self._enrich = enrich
        self._engine = engine
        self._workers = workers
        self._generation = 0
        self._buffer: List[ItemEvent] = []
        self._window_opened_at: Optional[float] = None
        self._processed_windows: List[WindowStats] = []
        # Monotonic load stamp behind the staleness gauge: how long the
        # currently served model has been in place (reset on every
        # hot-swap).  Monotonic, never wall clock — a clock step must
        # not fake a refresh or an outage.
        self._model_loaded_at = time.monotonic()

    @property
    def pending_events(self) -> int:
        """Events buffered in the open window."""
        return len(self._buffer)

    @property
    def model_generation(self) -> int:
        """How many model refreshes this service has seen (0 = the
        construction-time model).  Every :class:`WindowStats` carries
        the generation that served it."""
        return self._generation

    @property
    def model_staleness_seconds(self) -> float:
        """Age of the currently served model: monotonic seconds since
        construction or the last :meth:`refresh_model`.  The value the
        ``nrt.staleness_seconds`` gauge tracks — its max is the worst
        staleness the service reached between refreshes."""
        return time.monotonic() - self._model_loaded_at

    def record_staleness(self) -> float:
        """Record the staleness gauge now and return the reading.

        Flush and refresh record it on their own; pollers (the async
        front's stats, a metrics dump on a quiet service) call this so
        a snapshot reflects staleness *as of the read*, not as of the
        last window."""
        staleness = self.model_staleness_seconds
        self.metrics.gauge("nrt.staleness_seconds", staleness,
                           stream=self._stream_label)
        return staleness

    def refresh_model(self, model: Union[GraphExModel, str, Path],
                      generation: Optional[int] = None) -> int:
        """Hot-swap in a newly constructed model (the daily refresh).

        ``model`` may be an in-memory :class:`GraphExModel` or an
        *artifact directory path*: a path is opened through
        :func:`repro.core.serialization.open_model`, so a format-3
        artifact maps zero-copy and the swap is a remap — N services on
        one host pointed at the same artifact share one physical copy.

        The swap takes effect at the next *window boundary*: a window
        already drained by an in-progress :meth:`flush` finishes under
        the model it was drained with (flush snapshots the model at
        drain time), and every window drained afterwards — including
        events already buffered in the open window — is inferred under
        the new model.

        The new model is validated against the configured
        engine/executor combination *before* the swap, so an
        incompatible model leaves the service serving the old one.

        Args:
            model: The replacement model, or the directory of a saved
                one (opened mmap when it is a format-3 artifact).
            generation: Explicit generation number to adopt (an
                orchestrator numbering refreshes across many services);
                defaults to the current generation + 1, and is never
                allowed to go backwards — see :func:`next_generation`.

        Returns:
            The service's model generation after the swap.
        """
        model = open_model(model)
        validate_model_for_engine(model, self._engine,
                                  executor=self._executor)
        self._generation = next_generation(self._generation, generation)
        self.model = model
        self._model_loaded_at = time.monotonic()
        self.metrics.inc("nrt.refreshes", stream=self._stream_label)
        self.record_staleness()
        return self._generation

    def event_retained(self, event: ItemEvent) -> bool:
        """Whether *this exact* event object sits in the open window
        buffer — the public retention signal for drivers whose
        :meth:`submit` raised.

        Identity, not equality: a duplicate *equal* event elsewhere in
        the buffer cannot alias, and the answer stays exact however
        many windows a failing submit flushed before it raised (a
        buffered-count comparison cannot tell "stale window flushed,
        then the incoming event's own flush failed and restored it"
        from a genuine pre-buffer death).  A retained event is replayed
        by a later flush; anything else died before buffering and is
        genuinely gone.
        """
        return any(buffered is event for buffered in self._buffer)

    @property
    def processed_windows(self) -> List[WindowStats]:
        """Stats of every window processed so far."""
        return list(self._processed_windows)

    def submit(self, event: ItemEvent) -> Optional[WindowStats]:
        """Feed one event; returns window stats when a window closes.

        The window closes when it reaches ``window_size`` events or when
        the incoming event's timestamp is more than ``window_seconds``
        after the window opened.  When the event arrives after
        ``window_seconds`` has elapsed, the stale window flushes first
        and the event opens a new one — and the size bound is
        re-checked on that new window, so with ``window_size <= 1`` the
        event never sits buffered until the next arrival (both windows
        may close in one submit; the latest stats are returned, and
        every closed window is recorded in :attr:`processed_windows`).

        Window closure here is *event-time* only: a bound of
        ``window_seconds`` is judged against event timestamps, so a
        stale window flushes only when a later event arrives to observe
        it.  The wall-clock timer that closes a quiet window without a
        subsequent event lives in the asyncio front
        (:class:`repro.serving.async_front.AsyncNRTFront`), which drives
        this service per stream.

        Crash safety: if a flush triggered by this submit fails, the
        incoming event is *not* lost — it joins the restored window
        buffer before the exception propagates, so a later retry
        (:meth:`flush` or the next submit) replays every event.
        """
        self.metrics.inc("nrt.events", stream=self._stream_label)
        # Compute before mutating: a malformed timestamp must die here
        # WITHOUT adopting itself as the window-open time, or it would
        # poison the arithmetic for every later well-formed event.
        opened_at = (event.timestamp if self._window_opened_at is None
                     else self._window_opened_at)
        time_up = event.timestamp - opened_at >= self._window_seconds
        self._window_opened_at = opened_at
        closed: Optional[WindowStats] = None
        if time_up and self._buffer:
            try:
                closed = self.flush()
            except Exception:
                # The failed flush restored the stale window; the
                # incoming event joins it rather than vanishing with the
                # exception.  Window composition differs from a clean
                # run, but per-request output is batch-independent, so
                # the served result after a successful retry does not.
                self._buffer.append(event)
                raise
            self._window_opened_at = event.timestamp
        self._buffer.append(event)
        # Gauge, not counter: its max is the deepest the open window
        # ever got — visible even after the window flushes.
        self.metrics.gauge("nrt.window.depth", float(len(self._buffer)),
                           stream=self._stream_label)
        if len(self._buffer) >= self._window_size:
            closed = self.flush() or closed
        return closed

    def flush(self) -> Optional[WindowStats]:
        """Process the open window immediately (no-op when empty).

        Crash safety: on *any* failure — an enrich hook raising, the
        engine failing mid-batch, a store write erroring — the drained
        events are restored to the front of the buffer, the window-open
        timestamp is reinstated, and the staged KV version is abandoned
        (see :meth:`KeyValueStore.abandon`) before the exception
        propagates.  No event is ever lost and no unpromotable staging
        table leaks; a later flush simply retries the whole window.
        """
        if not self._buffer:
            return None
        flush_started = time.perf_counter()
        events, self._buffer = self._buffer, []
        opened_at, self._window_opened_at = self._window_opened_at, None
        # Snapshot at drain time: a concurrent refresh_model (the async
        # front swaps from another thread, serialized by its store lock)
        # must never retarget a window mid-flush — a window drained
        # under one model finishes under it, and its stats record that
        # model's generation.
        model, generation = self.model, self._generation

        # The whole stage→fill→promote transaction holds the store's
        # (reentrant) lock, so a concurrent writer on a shared store —
        # a daily full load running in another thread — can never
        # interleave with this window and re-promote a stale table.
        with transaction_lock(self._store):
            version = self._store.create_version()
            try:
                # Last event per item wins inside a window (a create
                # followed by a revise must serve the revised title).
                latest: Dict[int, ItemEvent] = {}
                for event in events:
                    latest[event.item_id] = event

                self._store.copy_from_serving(version)
                n_deleted = 0
                requests = []
                for event in latest.values():
                    if event.kind is ItemEventKind.DELETED:
                        self._store.delete(version, event.item_id)
                        n_deleted += 1
                        continue
                    title = self._enrich(event) if self._enrich \
                        else event.title
                    requests.append((event.item_id, title, event.leaf_id))
                # The whole window is one micro-batch through the
                # configured engine — the Flink-window analogue of the
                # paper's NRT branch.
                results = batch_recommend(
                    model, requests, k=self._k,
                    hard_limit=self._hard_limit, engine=self._engine,
                    workers=self._workers, executor=self._executor)
                n_inferred = len(requests)
                for item_id, _title, _leaf_id in requests:
                    self._store.put(version, item_id,
                                    [r.text for r in results[item_id]])
            except Exception:
                self._store.abandon(version)
                self._buffer[:0] = events
                self._window_opened_at = opened_at
                self.metrics.inc("nrt.flush.failures",
                                 stream=self._stream_label)
                raise
            self._store.promote(version)
            self._store.prune()
        # Served windows only: the histogram's count equals the
        # ``nrt.windows`` counter, and failed attempts are counted
        # separately above rather than polluting the latency profile.
        self.metrics.observe("nrt.window.flush_seconds",
                             time.perf_counter() - flush_started,
                             stream=self._stream_label)
        self.metrics.inc("nrt.windows", stream=self._stream_label)
        self.metrics.inc("nrt.inferred", n_inferred,
                         stream=self._stream_label)
        self.metrics.inc("nrt.deleted", n_deleted,
                         stream=self._stream_label)
        self.record_staleness()
        stats = WindowStats(n_events=len(events), n_inferred=n_inferred,
                            n_deleted=n_deleted,
                            model_generation=generation)
        self._processed_windows.append(stats)
        return stats

    def serve(self, item_id: int) -> List[str]:
        """Seller-facing read: current keyphrases for an item."""
        return list(self._store.get(item_id) or [])
