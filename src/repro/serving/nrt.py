"""Near-real-time (NRT) inference service (Figure 7, right branch).

"NRT serves items on an urgent basis, such as items newly created or
revised by sellers ... triggered by the event of new item creation or
revision, behind a Flink processing window and feature enrichment."

We model the Flink window as a count/time-bounded micro-batch buffer:
events accumulate until the window closes, then the whole window is
inferred as one batch — through the vectorized leaf-batched engine by
default (``engine="reference"`` selects the scalar cross-check path) —
and written through to the KV store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.batch import (batch_recommend, validate_hard_limit,
                          validate_model_for_engine)
from ..core.model import GraphExModel
from .kvstore import KeyValueStore


class ItemEventKind(Enum):
    """Seller actions that trigger NRT inference."""

    CREATED = "created"
    REVISED = "revised"
    DELETED = "deleted"


@dataclass(frozen=True)
class ItemEvent:
    """One item lifecycle event entering the NRT stream."""

    kind: ItemEventKind
    item_id: int
    title: str
    leaf_id: int
    timestamp: float


@dataclass
class WindowStats:
    """Outcome of one processed window."""

    n_events: int
    n_inferred: int
    n_deleted: int


class NRTService:
    """Event-driven near-real-time inference behind a processing window.

    Args:
        model: The serving GraphEx model.
        store: KV store shared with the batch pipeline.
        window_size: Close the window after this many events.
        window_seconds: ... or after this much event time has elapsed.
        k: Target predictions per item.
        hard_limit: Strict per-item cap.
        enrich: Optional feature-enrichment hook applied to each event
            before inference (returns a possibly rewritten title).
        engine: Inference engine for the window micro-batch — ``"fast"``
            (vectorized leaf-batched, default) or ``"reference"``.
        workers: Worker count for the window micro-batch (threads or
            processes, per ``parallel``).
        parallel: ``"thread"`` (default) or ``"process"`` — where the
            fast engine's leaf-group shards run (identical output; see
            :func:`repro.core.batch.batch_recommend`).
    """

    def __init__(self, model: GraphExModel, store: KeyValueStore,
                 window_size: int = 32, window_seconds: float = 1.0,
                 k: int = 20, hard_limit: int = 40,
                 enrich: Optional[Callable[[ItemEvent], str]] = None,
                 engine: str = "fast", workers: int = 1,
                 parallel: str = "thread") -> None:
        # Fail here, not mid-flush where the window's events would
        # already be drained and lost.
        validate_model_for_engine(model, engine, parallel)
        validate_hard_limit(hard_limit)
        self.model = model
        self._store = store
        self._window_size = window_size
        self._window_seconds = window_seconds
        self._k = k
        self._hard_limit = hard_limit
        self._enrich = enrich
        self._engine = engine
        self._workers = workers
        self._parallel = parallel
        self._buffer: List[ItemEvent] = []
        self._window_opened_at: Optional[float] = None
        self._processed_windows: List[WindowStats] = []

    @property
    def pending_events(self) -> int:
        """Events buffered in the open window."""
        return len(self._buffer)

    @property
    def processed_windows(self) -> List[WindowStats]:
        """Stats of every window processed so far."""
        return list(self._processed_windows)

    def submit(self, event: ItemEvent) -> Optional[WindowStats]:
        """Feed one event; returns window stats when a window closes.

        The window closes when it reaches ``window_size`` events or when
        the incoming event's timestamp is more than ``window_seconds``
        after the window opened.  When the event arrives after
        ``window_seconds`` has elapsed, the stale window flushes first
        and the event opens a new one — and the size bound is
        re-checked on that new window, so with ``window_size <= 1`` the
        event never sits buffered until the next arrival (both windows
        may close in one submit; the latest stats are returned, and
        every closed window is recorded in :attr:`processed_windows`).

        Window closure here is *event-time* only: a bound of
        ``window_seconds`` is judged against event timestamps, so a
        stale window flushes only when a later event arrives to observe
        it.  The wall-clock timer that closes a quiet window without a
        subsequent event lives in the asyncio front
        (:class:`repro.serving.async_front.AsyncNRTFront`), which drives
        this service per stream.

        Crash safety: if a flush triggered by this submit fails, the
        incoming event is *not* lost — it joins the restored window
        buffer before the exception propagates, so a later retry
        (:meth:`flush` or the next submit) replays every event.
        """
        if self._window_opened_at is None:
            self._window_opened_at = event.timestamp
        time_up = (event.timestamp - self._window_opened_at
                   >= self._window_seconds)
        closed: Optional[WindowStats] = None
        if time_up and self._buffer:
            try:
                closed = self.flush()
            except Exception:
                # The failed flush restored the stale window; the
                # incoming event joins it rather than vanishing with the
                # exception.  Window composition differs from a clean
                # run, but per-request output is batch-independent, so
                # the served result after a successful retry does not.
                self._buffer.append(event)
                raise
            self._window_opened_at = event.timestamp
        self._buffer.append(event)
        if len(self._buffer) >= self._window_size:
            closed = self.flush() or closed
        return closed

    def flush(self) -> Optional[WindowStats]:
        """Process the open window immediately (no-op when empty).

        Crash safety: on *any* failure — an enrich hook raising, the
        engine failing mid-batch, a store write erroring — the drained
        events are restored to the front of the buffer, the window-open
        timestamp is reinstated, and the staged KV version is abandoned
        (see :meth:`KeyValueStore.abandon`) before the exception
        propagates.  No event is ever lost and no unpromotable staging
        table leaks; a later flush simply retries the whole window.
        """
        if not self._buffer:
            return None
        events, self._buffer = self._buffer, []
        opened_at, self._window_opened_at = self._window_opened_at, None

        version = self._store.create_version()
        try:
            # Last event per item wins inside a window (a create followed
            # by a revise must serve the revised title).
            latest: Dict[int, ItemEvent] = {}
            for event in events:
                latest[event.item_id] = event

            self._store.copy_from_serving(version)
            n_deleted = 0
            requests = []
            for event in latest.values():
                if event.kind is ItemEventKind.DELETED:
                    self._store.delete(version, event.item_id)
                    n_deleted += 1
                    continue
                title = self._enrich(event) if self._enrich else event.title
                requests.append((event.item_id, title, event.leaf_id))
            # The whole window is one micro-batch through the configured
            # engine — the Flink-window analogue of the paper's NRT
            # branch.
            results = batch_recommend(
                self.model, requests, k=self._k,
                hard_limit=self._hard_limit, engine=self._engine,
                workers=self._workers, parallel=self._parallel)
            n_inferred = len(requests)
            for item_id, _title, _leaf_id in requests:
                self._store.put(version, item_id,
                                [r.text for r in results[item_id]])
        except Exception:
            self._store.abandon(version)
            self._buffer[:0] = events
            self._window_opened_at = opened_at
            raise
        self._store.promote(version)
        self._store.prune()
        stats = WindowStats(n_events=len(events), n_inferred=n_inferred,
                            n_deleted=n_deleted)
        self._processed_windows.append(stats)
        return stats

    def serve(self, item_id: int) -> List[str]:
        """Seller-facing read: current keyphrases for an item."""
        return list(self._store.get(item_id) or [])
