"""Production serving architecture (paper Figure 7): batch + NRT + KV,
plus the asyncio front that multiplexes many NRT streams."""

from .async_front import AsyncNRTFront, StreamStats
from .batch_pipeline import BatchPipeline, BatchRunReport
from .kvstore import KeyValueStore
from .nrt import ItemEvent, ItemEventKind, NRTService, WindowStats

__all__ = [
    "AsyncNRTFront",
    "BatchPipeline",
    "BatchRunReport",
    "KeyValueStore",
    "ItemEvent",
    "ItemEventKind",
    "NRTService",
    "StreamStats",
    "WindowStats",
]
