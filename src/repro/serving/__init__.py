"""Production serving architecture (paper Figure 7): batch + NRT + KV,
the asyncio front that multiplexes many NRT streams, and the daily
refresh orchestrator that hot-swaps fresh models into all of them."""

from .async_front import AsyncNRTFront, StreamStats
from .batch_pipeline import BatchPipeline, BatchRunReport
from .kvstore import KeyValueStore
from .nrt import ItemEvent, ItemEventKind, NRTService, WindowStats
from .refresh import DailyRefreshOrchestrator, RefreshReport

__all__ = [
    "AsyncNRTFront",
    "BatchPipeline",
    "BatchRunReport",
    "DailyRefreshOrchestrator",
    "KeyValueStore",
    "ItemEvent",
    "ItemEventKind",
    "NRTService",
    "RefreshReport",
    "StreamStats",
    "WindowStats",
]
