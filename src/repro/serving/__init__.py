"""Production serving architecture (paper Figure 7): batch + NRT + KV."""

from .batch_pipeline import BatchPipeline, BatchRunReport
from .kvstore import KeyValueStore
from .nrt import ItemEvent, ItemEventKind, NRTService, WindowStats

__all__ = [
    "BatchPipeline",
    "BatchRunReport",
    "KeyValueStore",
    "ItemEvent",
    "ItemEventKind",
    "NRTService",
    "WindowStats",
]
