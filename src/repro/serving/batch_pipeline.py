"""Batch inference pipeline: full load + daily differential (Figure 7).

"The batch inference is done in two parts: 1) for all items in eBay, and
2) daily differential, i.e. the difference of all new items
created/revised and then merged with the old existing items."  The merged
output lands in the KV store via an atomic version promotion, after which
the seller-facing API serves the fresh predictions.

Inference routes through :func:`repro.core.batch.batch_recommend`, which
defaults to the vectorized leaf-batched engine; pass ``engine="reference"``
to cross-check against the scalar path (identical output, slower).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..core.batch import (BatchResult, InferenceRequest, batch_recommend,
                          validate_hard_limit, validate_model_for_engine)
from ..core.model import GraphExModel
from ..core.serialization import open_model
from ..obs import MetricsRegistry
from .kvstore import KeyValueStore, transaction_lock
from .nrt import next_generation


@dataclass
class BatchRunReport:
    """What one pipeline run did."""

    version: int
    n_inferred: int
    n_served: int
    n_deleted: int = 0


class BatchPipeline:
    """Runs full and differential batch loads into a KV store.

    Args:
        model: The (daily-refreshed) GraphEx model.
        store: Destination KV store; predictions are served from it.
        k: Target predictions per item.
        hard_limit: Strict per-item cap written to the store.
        workers: Inference worker count (ignored when ``executor`` is
            an instance — it carries its own).
        engine: ``"fast"`` (vectorized leaf-batched runner, the default)
            or ``"reference"`` (scalar per-item loop); both produce
            identical output, so the fast path serves production loads
            and the reference path remains for cross-checking.
        parallel: Legacy spelling of ``executor`` (``"thread"`` /
            ``"process"``); pass one or the other, not both.
        executor: Where the fast engine's leaf-group shards run — an
            :class:`repro.core.execution.Executor` instance or spelling
            (``"serial"``, ``"thread"`` (default), ``"process"``,
            ``"cluster"``); identical output for every substrate (see
            :func:`repro.core.batch.batch_recommend`).  Resolved once
            here, so shard timings accumulate across loads.
        metrics: A :class:`repro.obs.MetricsRegistry` to record load
            counters and latency histograms into, shared with the
            executor resolved here (fresh private one by default).
    """

    def __init__(self, model: GraphExModel,
                 store: Optional[KeyValueStore] = None,
                 k: int = 20, hard_limit: int = 40,
                 workers: int = 1, engine: str = "fast",
                 parallel: Optional[str] = None,
                 executor=None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        from ..core.execution import resolve_executor

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._executor = resolve_executor(executor, parallel=parallel,
                                          workers=workers, engine=engine,
                                          metrics=self.metrics)
        validate_model_for_engine(model, engine,
                                  executor=self._executor)
        validate_hard_limit(hard_limit)
        self.model = model
        self.store: KeyValueStore = store if store is not None \
            else KeyValueStore()
        self._k = k
        self._hard_limit = hard_limit
        self._workers = workers
        self._engine = engine
        self._generation = 0

    def _infer(self, requests: Sequence[InferenceRequest]) -> BatchResult:
        return batch_recommend(
            self.model, requests, k=self._k,
            hard_limit=self._hard_limit, workers=self._workers,
            engine=self._engine, executor=self._executor)

    def _record_load(self, kind: str, started: float,
                     report: BatchRunReport) -> BatchRunReport:
        """Fold one promoted load into the registry (successes only —
        a failed load abandoned its version and raised)."""
        self.metrics.observe("batch.load_seconds",
                             time.perf_counter() - started, kind=kind)
        self.metrics.inc("batch.loads", kind=kind)
        self.metrics.inc("batch.inferred", report.n_inferred, kind=kind)
        if report.n_deleted:
            self.metrics.inc("batch.deleted", report.n_deleted, kind=kind)
        self.metrics.gauge("batch.served_items", float(report.n_served))
        return report

    def full_load(self, requests: Sequence[InferenceRequest]
                  ) -> BatchRunReport:
        """Part 1: infer every item and promote a fresh version.

        Inference runs *before* a version is staged, and a staging
        failure abandons the version (closing its prune exemption), so
        an aborted load never leaks a half-written table.  The
        stage→promote transaction holds the store's lock, so a load
        sharing its store with live NRT writers (the orchestrated daily
        refresh) serializes against their window flushes.
        """
        started = time.perf_counter()
        results = self._infer(requests)
        with transaction_lock(self.store):
            version = self.store.create_version()
            try:
                self.store.bulk_load(
                    version,
                    {item_id: [r.text for r in recs]
                     for item_id, recs in results.items()})
            except Exception:
                self.store.abandon(version)
                raise
            self.store.promote(version)
            # Retention is bounded like the differential path: without
            # this prune, a daily full refresh would retain every
            # historical table ever promoted.
            self.store.prune()
            n_served = self.store.size()
        return self._record_load("full", started, BatchRunReport(
            version=version, n_inferred=len(results),
            n_served=n_served))

    def daily_differential(self, changed: Sequence[InferenceRequest],
                           deleted_item_ids: Iterable[int] = ()
                           ) -> BatchRunReport:
        """Part 2: re-infer only changed items, merge with yesterday's
        table, promote atomically.  A staging failure abandons the
        version, like :meth:`full_load` (which also documents the store
        transaction lock both loads hold)."""
        started = time.perf_counter()
        results = self._infer(changed)
        with transaction_lock(self.store):
            version = self.store.create_version()
            n_deleted = 0
            try:
                self.store.copy_from_serving(version)
                for item_id in deleted_item_ids:
                    self.store.delete(version, item_id)
                    n_deleted += 1
                self.store.bulk_load(
                    version,
                    {item_id: [r.text for r in recs]
                     for item_id, recs in results.items()})
            except Exception:
                self.store.abandon(version)
                raise
            self.store.promote(version)
            self.store.prune()
            n_served = self.store.size()
        return self._record_load("differential", started, BatchRunReport(
            version=version, n_inferred=len(results),
            n_served=n_served, n_deleted=n_deleted))

    def serve(self, item_id: int) -> List[str]:
        """The seller-facing read path: keyphrases for one item."""
        return list(self.store.get(item_id) or [])

    @property
    def model_generation(self) -> int:
        """How many model refreshes this pipeline has seen (0 = the
        construction-time model)."""
        return self._generation

    def refresh_model(self, model: Union[GraphExModel, str, Path],
                      generation: Optional[int] = None) -> int:
        """Swap in a newly constructed model (the daily model refresh the
        paper's fast construction enables).

        ``model`` may be a :class:`GraphExModel` or an artifact
        directory (opened via
        :func:`repro.core.serialization.open_model` — zero-copy mmap
        for format-3 artifacts, so co-hosted pipelines handed the same
        path share one physical copy).  The new model is validated
        against the configured engine/executor combination first, so an
        incompatible model leaves the pipeline on the old one.
        ``generation`` lets an orchestrator number refreshes
        consistently across the whole serving stack (defaults to the
        current generation + 1); the pipeline's generation after the
        swap is returned.
        """
        model = open_model(model)
        validate_model_for_engine(model, self._engine,
                                  executor=self._executor)
        self._generation = next_generation(self._generation, generation)
        self.model = model
        return self._generation
