"""Batch inference pipeline: full load + daily differential (Figure 7).

"The batch inference is done in two parts: 1) for all items in eBay, and
2) daily differential, i.e. the difference of all new items
created/revised and then merged with the old existing items."  The merged
output lands in the KV store via an atomic version promotion, after which
the seller-facing API serves the fresh predictions.

Inference routes through :func:`repro.core.batch.batch_recommend`, which
defaults to the vectorized leaf-batched engine; pass ``engine="reference"``
to cross-check against the scalar path (identical output, slower).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.batch import (BatchResult, InferenceRequest, batch_recommend,
                          validate_hard_limit, validate_model_for_engine)
from ..core.model import GraphExModel
from .kvstore import KeyValueStore


@dataclass
class BatchRunReport:
    """What one pipeline run did."""

    version: int
    n_inferred: int
    n_served: int
    n_deleted: int = 0


class BatchPipeline:
    """Runs full and differential batch loads into a KV store.

    Args:
        model: The (daily-refreshed) GraphEx model.
        store: Destination KV store; predictions are served from it.
        k: Target predictions per item.
        hard_limit: Strict per-item cap written to the store.
        workers: Inference worker count (threads or processes, per
            ``parallel``).
        engine: ``"fast"`` (vectorized leaf-batched runner, the default)
            or ``"reference"`` (scalar per-item loop); both produce
            identical output, so the fast path serves production loads
            and the reference path remains for cross-checking.
        parallel: ``"thread"`` (default) or ``"process"`` — where the
            fast engine's leaf-group shards run (identical output; see
            :func:`repro.core.batch.batch_recommend`).
    """

    def __init__(self, model: GraphExModel,
                 store: Optional[KeyValueStore] = None,
                 k: int = 20, hard_limit: int = 40,
                 workers: int = 1, engine: str = "fast",
                 parallel: str = "thread") -> None:
        validate_model_for_engine(model, engine, parallel)
        validate_hard_limit(hard_limit)
        self.model = model
        self.store: KeyValueStore = store if store is not None \
            else KeyValueStore()
        self._k = k
        self._hard_limit = hard_limit
        self._workers = workers
        self._engine = engine
        self._parallel = parallel

    def _infer(self, requests: Sequence[InferenceRequest]) -> BatchResult:
        return batch_recommend(
            self.model, requests, k=self._k,
            hard_limit=self._hard_limit, workers=self._workers,
            engine=self._engine, parallel=self._parallel)

    def full_load(self, requests: Sequence[InferenceRequest]
                  ) -> BatchRunReport:
        """Part 1: infer every item and promote a fresh version.

        Inference runs *before* a version is staged, and a staging
        failure abandons the version (closing its prune exemption), so
        an aborted load never leaks a half-written table.
        """
        results = self._infer(requests)
        version = self.store.create_version()
        try:
            self.store.bulk_load(
                version,
                {item_id: [r.text for r in recs]
                 for item_id, recs in results.items()})
        except Exception:
            self.store.abandon(version)
            raise
        self.store.promote(version)
        # Retention is bounded like the differential path: without this
        # prune, a daily full refresh would retain every historical
        # table ever promoted.
        self.store.prune()
        return BatchRunReport(version=version, n_inferred=len(results),
                              n_served=self.store.size())

    def daily_differential(self, changed: Sequence[InferenceRequest],
                           deleted_item_ids: Iterable[int] = ()
                           ) -> BatchRunReport:
        """Part 2: re-infer only changed items, merge with yesterday's
        table, promote atomically.  A staging failure abandons the
        version, like :meth:`full_load`."""
        results = self._infer(changed)
        version = self.store.create_version()
        n_deleted = 0
        try:
            self.store.copy_from_serving(version)
            for item_id in deleted_item_ids:
                self.store.delete(version, item_id)
                n_deleted += 1
            self.store.bulk_load(
                version,
                {item_id: [r.text for r in recs]
                 for item_id, recs in results.items()})
        except Exception:
            self.store.abandon(version)
            raise
        self.store.promote(version)
        self.store.prune()
        return BatchRunReport(version=version, n_inferred=len(results),
                              n_served=self.store.size(),
                              n_deleted=n_deleted)

    def serve(self, item_id: int) -> List[str]:
        """The seller-facing read path: keyphrases for one item."""
        return list(self.store.get(item_id) or [])

    def refresh_model(self, model: GraphExModel) -> None:
        """Swap in a newly constructed model (the daily model refresh the
        paper's fast construction enables)."""
        validate_model_for_engine(model, self._engine, self._parallel)
        self.model = model
