"""Daily model-refresh orchestration (the paper's Figure 7 loop).

Fast construction exists precisely so a *fresh* model can be rebuilt and
put in front of sellers every day.  This module ties that loop together
end to end:

1. **Construct** a new model from today's curated keyphrases through the
   fast builder (seconds at paper scale, Section IV-G).
2. **Batch-load** it: :meth:`BatchPipeline.full_load` re-infers the
   catalog and atomically promotes the fresh KV table.
3. **Hot-swap** every registered NRT serving target —
   :class:`~repro.serving.nrt.NRTService` and
   :class:`~repro.serving.async_front.AsyncNRTFront` instances keep
   serving throughout; each is retargeted at a window boundary via its
   ``refresh_model``.

Every refresh is *generation-numbered*: the orchestrator stamps the same
generation into every swapped target, and each processed window records
the generation that served it
(:attr:`~repro.serving.nrt.WindowStats.model_generation`), so an
observer can tell exactly which day's model produced a given window.

The heavy steps (construction, batch inference) run in an executor, so
an asyncio front being refreshed keeps ingesting events while the new
model is built behind it — the zero-downtime property the daily loop
needs.
"""

from __future__ import annotations

import asyncio
import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Callable, List, Optional,
                    Sequence, Union)

from ..cluster.retry import RetriesExhausted, RetryPolicy
from ..core.batch import InferenceRequest
from ..core.curation import CuratedKeyphrases
from ..core.model import GraphExModel
from ..core.serialization import load_model, save_model
from ..obs import MetricsRegistry, Tracer
from .batch_pipeline import BatchPipeline

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from ..cluster.coordinator import ClusterCoordinator

__all__ = ["DailyRefreshOrchestrator", "RefreshReport"]


@dataclass
class RefreshReport:
    """What one orchestrated daily refresh did.

    The ``*_seconds`` fields are *views over the orchestrator's
    tracer*: each is the duration of the matching ``refresh.*`` span
    of this refresh (``construct_seconds`` folds the persist span in,
    as it always has), so the report, the exported trace, and the
    ``refresh.*_seconds`` histograms in the metrics registry can never
    disagree about where the time went.
    """

    generation: int
    n_leaves: int
    n_keyphrases: int
    n_inferred: int
    n_served: int
    n_targets: int
    construct_seconds: float
    load_seconds: float
    swap_seconds: float
    #: Directory of the persisted format-3 artifact this refresh
    #: deployed (``None`` when the orchestrator has no ``artifact_dir``
    #: and the model was handed off in memory instead).
    artifact_path: Optional[str] = None
    #: Transient construct/load failures that were retried away under
    #: the orchestrator's :class:`~repro.cluster.retry.RetryPolicy`.
    n_retries: int = 0
    #: Remote executor hosts the artifact was deployed to via the
    #: orchestrator's cluster coordinator (0 without one).
    n_remote_deployed: int = 0
    #: ``None`` on success; otherwise which step exhausted its retries
    #: and why.  A failed refresh returns a report instead of raising
    #: (only when a retry policy is configured), so the daily loop can
    #: record the miss and proceed to the next cycle.
    failure: Optional[str] = None
    #: Total shard-timing observations held by the orchestrator's
    #: executor :class:`~repro.core.execution.CostModel` after this
    #: refresh — the feedback loop's fuel gauge (0 when the executor
    #: records none, e.g. the first-ever refresh started cold).
    n_cost_observations: int = 0
    #: How much better yesterday's observed build rates balanced
    #: today's construction plan versus the char-count proxy (makespan
    #: ratio, >1 = observed plan wins; see
    #: :func:`~repro.core.execution.plan_rebalance_gain`).  ``None``
    #: when there were no prior observations or fewer than two shards.
    rebalance_gain: Optional[float] = None


class DailyRefreshOrchestrator:
    """Runs the daily construct → batch-load → hot-swap loop.

    Args:
        pipeline: The batch pipeline whose store serves the catalog; its
            model is refreshed and its :meth:`~BatchPipeline.full_load`
            re-run on every refresh.
        builder, workers, parallel: Forwarded to
            :meth:`GraphExModel.construct` (fast builder by default —
            the whole point of the daily loop).
        executor: Which execution substrate builds each day's model —
            an :class:`repro.core.execution.Executor` instance or
            spelling (``"serial"``, ``"thread"`` (default),
            ``"process"``, ``"cluster"``).  Resolved **once** and kept
            for the orchestrator's lifetime, so the per-leaf build
            timings each refresh records feed the *next* refresh's
            :class:`~repro.core.sharding.ShardPlan` — yesterday's
            observed hot spots re-balance today's shards, with the win
            stamped on :attr:`RefreshReport.rebalance_gain`.
        alignment: Ranking alignment for the constructed models.
        build_pooled: Also build the pooled fallback graph each day.
        artifact_dir: When set, every refresh persists its freshly
            constructed model as a format-3 artifact under
            ``artifact_dir/gen-<N>`` and deploys the *memory-mapped*
            open of that artifact: the pipeline and every registered
            target receive views over one physical copy, and the
            report's :attr:`RefreshReport.artifact_path` names the
            directory so other hosts/processes can open the same
            artifact themselves.  Unset (default) hands the in-memory
            model around as before.
        retry: When set, the construct and batch-load steps run under
            this :class:`~repro.cluster.retry.RetryPolicy` (capped
            backoff with jitter): a transient failure is retried, and a
            step that exhausts its attempts makes :meth:`refresh`
            *return* a :class:`RefreshReport` with
            :attr:`~RefreshReport.failure` set instead of raising — the
            daily loop records the miss and the next cycle proceeds.
            Unset (default), failures propagate as before.
        cluster: A started
            :class:`~repro.cluster.coordinator.ClusterCoordinator`;
            each refresh then deploys the day's artifact to every live
            executor host after the local stack is swapped (requires
            ``artifact_dir``, and :meth:`refresh` must run on the
            coordinator's event loop).
        metrics: A :class:`repro.obs.MetricsRegistry` for the
            orchestrator's refresh counters/histograms, shared with
            the construction executor it resolves (fresh private one
            by default).  Each refresh's construct → load → swap
            lifecycle is additionally traced as spans on
            :attr:`tracer`, and the report's timing fields are views
            over those spans.

    Usage::

        orchestrator = DailyRefreshOrchestrator(pipeline, workers=4)
        orchestrator.register(front)          # a live AsyncNRTFront
        report = await orchestrator.refresh(todays_curated, catalog)
        assert front.model_generation == report.generation
    """

    def __init__(self, pipeline: BatchPipeline, *,
                 builder: str = "fast", workers: int = 1,
                 parallel: Optional[str] = None,
                 executor=None, alignment: str = "lta",
                 build_pooled: bool = False,
                 artifact_dir: Optional[Union[str, Path]] = None,
                 retry: Optional[RetryPolicy] = None,
                 cluster: Optional["ClusterCoordinator"] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        from ..core.execution import resolve_executor

        if cluster is not None and artifact_dir is None:
            raise ValueError(
                "cluster deployment needs artifact_dir: remote hosts "
                "open the day's model by artifact, not by pickle")
        self.pipeline = pipeline
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer()
        self._builder = builder
        self._workers = workers
        # One executor for the orchestrator's lifetime: its CostModel
        # carries yesterday's observed build rates into today's plan.
        self._executor = resolve_executor(executor, parallel=parallel,
                                          workers=workers, engine=builder,
                                          metrics=self.metrics)
        self._alignment = alignment
        self._build_pooled = build_pooled
        self._artifact_dir = (None if artifact_dir is None
                              else Path(artifact_dir))
        self._retry = retry
        self._cluster = cluster
        self._targets: List[Any] = []
        self._generation = 0

    @property
    def generation(self) -> int:
        """Refresh generations *issued* so far (0 = none yet).  A
        refresh that failed midway still consumed its number — see
        :meth:`refresh` — so a generation never names two different
        models."""
        return self._generation

    @property
    def model(self) -> GraphExModel:
        """The model currently deployed everywhere (the pipeline's)."""
        return self.pipeline.model

    @property
    def executor(self):
        """The construction executor (same instance every refresh)."""
        return self._executor

    @property
    def cost_model(self):
        """The executor's accumulated shard-timing
        :class:`~repro.core.execution.CostModel`.  Persist it with
        ``to_json`` and seed a future orchestrator's executor with
        ``CostModel.from_json`` to carry observations across
        processes/days."""
        return self._executor.cost_model

    @property
    def targets(self) -> List[Any]:
        """Registered serving targets, in registration order."""
        return list(self._targets)

    def register(self, target: Any) -> Any:
        """Register an NRT serving target for hot-swap on each refresh.

        Anything exposing ``refresh_model(model, generation=...)`` works
        — :class:`~repro.serving.nrt.NRTService` (swapped inline) and
        :class:`~repro.serving.async_front.AsyncNRTFront` (awaited, so
        its streams quiesce off the event loop).  Returns the target for
        chaining.
        """
        if not callable(getattr(target, "refresh_model", None)):
            raise TypeError(
                f"{type(target).__name__} has no refresh_model(); "
                "cannot hot-swap it")
        self._targets.append(target)
        return target

    @staticmethod
    def _persist_and_map(model: GraphExModel,
                         directory: Path) -> GraphExModel:
        """Save ``model`` as a format-3 artifact and reopen it mapped.

        Runs in the executor.  The returned model's arrays are
        read-only views over the artifact file — the instance handed to
        the pipeline and every serving target, so one physical copy
        backs the whole deployment.
        """
        save_model(model, directory, format_version=3)
        return load_model(directory, mmap=True)

    async def refresh(self, curated: CuratedKeyphrases,
                      requests: Sequence[InferenceRequest]
                      ) -> RefreshReport:
        """Run one daily refresh: construct, batch-load, hot-swap.

        Construction and the full batch load run in an executor so a
        live asyncio front keeps ingesting while the new model is
        prepared — the store's transaction lock serializes the load
        against window flushes on a shared store, so a flush in flight
        can never re-promote a pre-refresh table over the fresh load.
        The new generation number is stamped into every swapped target.

        Deploy semantics: the refresh is a staged deploy, not a
        transaction.  Once construction succeeds its generation number
        is *burned* (never reused for a different model), and a failure
        in the batch load or a later target swap propagates with the
        earlier stages already deployed — the pipeline may be on the
        new model while some NRT targets still serve the old one.
        Serving stays consistent throughout (every table promotion is
        atomic); rerunning :meth:`refresh` converges the stack.  On the
        successful path there is likewise a bounded staleness window:
        an NRT flush landing between the batch promote and that
        stream's own swap still infers under the old model, so its
        items serve old-model keyphrases until their next seller event
        or the next day's refresh — the same eventual consistency the
        paper's daily loop accepts, observable per window through
        ``WindowStats.model_generation``.
        """
        loop = asyncio.get_running_loop()
        n_retries = 0

        def note_retry(attempt: int, exc: BaseException,
                       delay: float) -> None:
            nonlocal n_retries
            n_retries += 1

        def attempt(step: Callable[[], Any]) -> Callable[[], Any]:
            """Wrap a blocking step in the retry policy, if one is set."""
            if self._retry is None:
                return step
            return lambda: self._retry.call(step, on_retry=note_retry)

        from ..core.execution import plan_rebalance_gain

        # Yesterday's feedback, today's plan: quantify (before building)
        # how much better the executor's accumulated observed build
        # rates balance today's leaves than the char-count proxy would.
        # None on a cold start — the first refresh has no observations.
        proxy = [(leaf_id, sum(map(len, leaf.texts)) + 1)
                 for leaf_id, leaf in curated.leaves.items()
                 if len(leaf) > 0]
        rebalance_gain = plan_rebalance_gain(
            self._executor.cost_model, proxy,
            getattr(self._executor, "workers", 0), kind="construction")

        try:
            with self.tracer.span("refresh.construct",
                                  builder=self._builder) as construct_span:
                model = await loop.run_in_executor(
                    None, attempt(lambda: GraphExModel.construct(
                        curated, alignment=self._alignment,
                        build_pooled=self._build_pooled,
                        builder=self._builder, workers=self._workers,
                        executor=self._executor)))
        except RetriesExhausted as exc:
            # The step is dead for today; record the miss instead of
            # aborting the daily loop.  No generation was burned — the
            # next cycle's refresh starts clean.
            return self._finish(RefreshReport(
                generation=self._generation, n_leaves=0, n_keyphrases=0,
                n_inferred=0, n_served=0, n_targets=len(self._targets),
                construct_seconds=construct_span.duration_s,
                load_seconds=0.0, swap_seconds=0.0, n_retries=n_retries,
                failure=f"construct exhausted {exc.attempts} attempts: "
                        f"{exc.__cause__!r}",
                n_cost_observations=
                self._executor.cost_model.n_observations(),
                rebalance_gain=rebalance_gain))
        construct_seconds = construct_span.duration_s
        # Issue a number strictly above every deployment's local
        # history — a target may have been hot-swapped directly since
        # the last orchestrated refresh — so each adopts it verbatim
        # (next_generation never bumps past it) and every window stamp
        # maps back to exactly one RefreshReport.  Burned now: a
        # failure below leaves a gap rather than reusing the number
        # for a different day's model.
        generation = 1 + max(
            [self._generation, self.pipeline.model_generation]
            + [getattr(target, "model_generation", 0)
               for target in self._targets])
        self._generation = generation

        # Persist-then-remap: with an artifact_dir, the built model is
        # written out as a format-3 artifact (in the executor — the
        # front keeps ingesting) and the *mapped* open of that artifact
        # is what gets deployed, so the pipeline and every target share
        # one physical copy and the in-memory build is dropped.
        artifact_path: Optional[str] = None
        if self._artifact_dir is not None:
            artifact = self._artifact_dir / f"gen-{generation}"
            with self.tracer.span("refresh.persist",
                                  generation=generation) as persist_span:
                model = await loop.run_in_executor(
                    None, self._persist_and_map, model, artifact)
            artifact_path = str(artifact)
            # construct_seconds has always folded persist time in; the
            # trace keeps the two spans distinct.
            construct_seconds += persist_span.duration_s

        # Batch first: the fresh catalog-wide table must be promoted
        # before the NRT edge starts writing new-model windows on top.
        try:
            with self.tracer.span("refresh.load",
                                  generation=generation) as load_span:
                self.pipeline.refresh_model(model, generation=generation)
                request_list = list(requests)
                # full_load re-infers the whole catalog and promotes its
                # table atomically, so re-running a failed attempt is
                # safe.
                report = await loop.run_in_executor(
                    None,
                    attempt(lambda: self.pipeline.full_load(request_list)))
        except RetriesExhausted as exc:
            return self._finish(RefreshReport(
                generation=generation, n_leaves=model.n_leaves,
                n_keyphrases=model.n_keyphrases, n_inferred=0,
                n_served=0, n_targets=len(self._targets),
                construct_seconds=construct_seconds,
                load_seconds=load_span.duration_s,
                swap_seconds=0.0, artifact_path=artifact_path,
                n_retries=n_retries,
                failure=f"batch load exhausted {exc.attempts} "
                        f"attempts: {exc.__cause__!r}",
                n_cost_observations=
                self._executor.cost_model.n_observations(),
                rebalance_gain=rebalance_gain))
        load_seconds = load_span.duration_s

        with self.tracer.span("refresh.swap", generation=generation,
                              n_targets=len(self._targets)) as swap_span:
            for target in self._targets:
                result = target.refresh_model(model,
                                              generation=generation)
                if inspect.isawaitable(result):
                    await result
        swap_seconds = swap_span.duration_s

        # Remote plane last: every executor host of the cluster opens
        # (and caches) the day's artifact so the first cluster job of
        # the new generation starts warm.  A host that fails here is
        # marked dead and planned around, never a refresh failure.
        n_remote_deployed = 0
        if self._cluster is not None and artifact_path is not None:
            with self.tracer.span("refresh.deploy_remote",
                                  generation=generation):
                n_remote_deployed = await self._cluster.deploy_artifact(
                    artifact_path, generation=generation)

        return self._finish(RefreshReport(
            generation=generation,
            n_leaves=model.n_leaves,
            n_keyphrases=model.n_keyphrases,
            n_inferred=report.n_inferred,
            n_served=report.n_served,
            n_targets=len(self._targets),
            construct_seconds=construct_seconds,
            load_seconds=load_seconds,
            swap_seconds=swap_seconds,
            artifact_path=artifact_path,
            n_retries=n_retries,
            n_remote_deployed=n_remote_deployed,
            n_cost_observations=
            self._executor.cost_model.n_observations(),
            rebalance_gain=rebalance_gain))

    def _finish(self, report: RefreshReport) -> RefreshReport:
        """Fold one refresh's outcome into the metrics registry.

        Every :meth:`refresh` exit — success or recorded failure —
        passes through here, so the ``refresh.*`` series and the
        returned reports always agree."""
        metrics = self.metrics
        metrics.inc("refresh.runs")
        if report.failure is not None:
            metrics.inc("refresh.failures")
        if report.n_retries:
            metrics.inc("refresh.retries", report.n_retries)
        metrics.observe("refresh.construct_seconds",
                        report.construct_seconds)
        metrics.observe("refresh.load_seconds", report.load_seconds)
        metrics.observe("refresh.swap_seconds", report.swap_seconds)
        metrics.gauge("refresh.generation", float(report.generation))
        return report

    def refresh_sync(self, curated: CuratedKeyphrases,
                     requests: Sequence[InferenceRequest]
                     ) -> RefreshReport:
        """:meth:`refresh` for synchronous callers (no running loop).

        Only valid when no registered target needs a *live* event loop
        — i.e. every :class:`AsyncNRTFront` registered here is not
        currently running (a running front must be refreshed from its
        own loop via the async :meth:`refresh`).
        """
        return asyncio.run(self.refresh(curated, requests))
