"""Lightweight tracing: perf_counter spans with parent ids.

A :class:`Tracer` records nested spans — ``construct`` containing
``persist``, a cluster run containing per-unit RPCs — as intervals on
the monotonic ``time.perf_counter()`` clock, relative to the tracer's
own epoch.  There are deliberately no wall-clock timestamps in a span:
spans measure *durations and structure*, and this module sits inside
the repro-lint monotonic-clock scope.  Operator-facing timestamps
belong to report fields outside this package.

Spans nest per thread (a contextvar-free thread-local stack, since the
refresh orchestrator and the coordinator both drive spans from plain
threads), and :meth:`Tracer.export` emits the same
``schema_version``-stamped JSON shape the metrics snapshots use.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "TRACE_SCHEMA_VERSION"]

#: Version stamped into every trace export; bump on format changes.
TRACE_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One completed (or open) interval in a trace."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float               # seconds since the tracer's epoch
    duration_s: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "span_id": self.span_id,
                "parent_id": self.parent_id, "start_s": self.start_s,
                "duration_s": self.duration_s, "meta": dict(self.meta)}


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span", "_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._start = 0.0

    def __enter__(self) -> Span:
        self._start = time.perf_counter()
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, *exc_info) -> None:
        self.span.duration_s = time.perf_counter() - self._start
        if exc_type is not None:
            self.span.meta.setdefault("error", exc_type.__name__)
        self._tracer._pop(self.span)


class Tracer:
    """Collects spans; thread-safe, nesting tracked per thread."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 0
        self._stacks = threading.local()

    def span(self, name: str, **meta: Any) -> _SpanContext:
        """Open a span; nests under the thread's current span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = self._current()
        span = Span(name=name, span_id=span_id,
                    parent_id=parent.span_id if parent else None,
                    start_s=time.perf_counter() - self._epoch,
                    meta=dict(meta))
        return _SpanContext(self, span)

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def _current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._spans.append(span)

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Completed spans, oldest first (optionally one name only)."""
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [span for span in spans if span.name == name]
        return spans

    def duration(self, name: str) -> float:
        """Total seconds across all completed spans named ``name``."""
        return sum(span.duration_s for span in self.spans(name))

    def export(self) -> Dict[str, Any]:
        """JSON-safe trace: versioned, spans in completion order."""
        return {"schema_version": TRACE_SCHEMA_VERSION,
                "spans": [span.as_dict() for span in self.spans()]}

    def __repr__(self) -> str:
        with self._lock:
            return f"Tracer(n_spans={len(self._spans)})"
