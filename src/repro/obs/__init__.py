"""repro.obs — the unified telemetry plane.

One mergeable :class:`MetricsRegistry` (counters, gauges, fixed-bucket
histograms, monotonic timers) and one :class:`Tracer` (perf_counter
spans with parent ids), recorded into by every layer — engines,
executors, the serving fronts, the cluster fleet — and folded across
processes and hosts as versioned JSON snapshots, never pickle.

See docs/OBSERVABILITY.md for the metric catalog, the snapshot schema,
and the merge semantics this package guarantees.
"""

from .metrics import (DEFAULT_BUCKETS, SCHEMA_VERSION, TICKS_PER_SECOND,
                      MetricsRegistry, NullRegistry, dump_snapshot,
                      empty_snapshot, load_snapshot, merge_snapshots,
                      metric_key, validate_snapshot)
from .trace import TRACE_SCHEMA_VERSION, Span, Tracer

__all__ = ["SCHEMA_VERSION", "TRACE_SCHEMA_VERSION", "TICKS_PER_SECOND",
           "DEFAULT_BUCKETS", "MetricsRegistry", "NullRegistry",
           "Tracer", "Span", "metric_key", "validate_snapshot",
           "merge_snapshots", "empty_snapshot", "load_snapshot",
           "dump_snapshot"]
