"""Mergeable metrics: counters, gauges, histograms, monotonic timers.

The one telemetry substrate every layer records into.  A
:class:`MetricsRegistry` holds three metric families keyed by
``name{label=value,...}``:

* **counters** — monotonically increasing integers (events submitted,
  shards run, windows flushed).  Merged by integer addition.
* **gauges** — last-set readings with high/low water marks (queue
  depth, staleness seconds).  Merged by taking the extreme of each
  component: ``max`` of maxima, ``min`` of minima, ``max`` of current
  values — the conservative fleet-wide reading.
* **histograms** — fixed-bucket latency distributions whose sums are
  kept in **integer nanosecond ticks**, quantized once at record time.
  Merged by element-wise integer addition.

Merging is the load-bearing property: worker registries travel to the
coordinator as :meth:`snapshot` JSON over the existing cluster frames
(never pickle), and :meth:`merge_snapshot` must fold N of them into a
fleet view that equals a single shared registry.  That is why every
additive quantity is an integer — int addition is exact, associative,
and commutative, where float addition is none of the three — and why
gauges merge by ``max``/``min``, which are idempotent besides.  The
hypothesis suite in ``tests/test_obs.py`` pins all of it.

Timers read ``time.perf_counter()`` only.  This module is inside the
repro-lint monotonic-clock scope: a wall-clock read here is a lint
violation, not a style nit (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["SCHEMA_VERSION", "TICKS_PER_SECOND", "DEFAULT_BUCKETS",
           "MetricsRegistry", "NullRegistry", "metric_key",
           "validate_snapshot", "merge_snapshots", "empty_snapshot",
           "load_snapshot", "dump_snapshot"]

#: Version stamped into every snapshot; bump on wire-format changes.
SCHEMA_VERSION = 1

#: Histogram sums are integer nanoseconds: quantize once at record
#: time so merges are exact integer addition, never float folding.
TICKS_PER_SECOND = 1_000_000_000

#: Default histogram bucket upper bounds, in seconds (+inf implicit).
#: Decade-and-a-half steps from 10 us to 30 s cover everything from a
#: single leaf-group shard to a full daily construct.
DEFAULT_BUCKETS = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                   0.1, 0.3, 1.0, 3.0, 10.0, 30.0)


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted, stringified)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class _Timer:
    """Context manager recording a perf_counter interval on exit."""

    __slots__ = ("_registry", "_name", "_labels", "_start", "seconds")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: Mapping[str, Any]) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
        self._registry.observe(self._name, self.seconds, **self._labels)


class MetricsRegistry:
    """Thread-safe metric store with exact, associative merging.

    Args:
        buckets: Histogram upper bounds in seconds, strictly
            increasing; the ``+inf`` overflow bucket is implicit.
            Registries only merge when their bounds match.
    """

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram bounds must be non-empty and strictly "
                f"increasing, got {bounds!r}")
        self._bounds = bounds
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        # key -> [value, max, min]
        self._gauges: Dict[str, List[float]] = {}
        # key -> [bucket counts..., overflow] + [count, sum_ticks]
        self._hist_counts: Dict[str, List[int]] = {}
        self._hist_totals: Dict[str, List[int]] = {}

    # -- recording ---------------------------------------------------

    def inc(self, name: str, n: int = 1, **labels: Any) -> None:
        """Add ``n`` (an int) to a counter."""
        key = metric_key(name, labels)
        n = int(n)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + n

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge, folding the value into its water marks."""
        key = metric_key(name, labels)
        value = float(value)
        with self._lock:
            entry = self._gauges.get(key)
            if entry is None:
                self._gauges[key] = [value, value, value]
            else:
                entry[0] = value
                entry[1] = max(entry[1], value)
                entry[2] = min(entry[2], value)

    def observe(self, name: str, seconds: float, **labels: Any) -> None:
        """Record one duration into a histogram (quantized to ticks)."""
        key = metric_key(name, labels)
        seconds = max(0.0, float(seconds))
        ticks = round(seconds * TICKS_PER_SECOND)
        bucket = len(self._bounds)  # overflow
        for index, bound in enumerate(self._bounds):
            if seconds <= bound:
                bucket = index
                break
        with self._lock:
            counts = self._hist_counts.get(key)
            if counts is None:
                counts = self._hist_counts[key] = \
                    [0] * (len(self._bounds) + 1)
                self._hist_totals[key] = [0, 0]
            counts[bucket] += 1
            totals = self._hist_totals[key]
            totals[0] += 1
            totals[1] += ticks

    def timer(self, name: str, **labels: Any) -> _Timer:
        """``with registry.timer("x.seconds"): ...`` — a perf_counter
        interval recorded into the ``x.seconds`` histogram on exit."""
        return _Timer(self, name, labels)

    # -- reading -----------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> int:
        with self._lock:
            return self._counters.get(metric_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        with self._lock:
            entry = self._gauges.get(metric_key(name, labels))
            return entry[0] if entry is not None else None

    def gauge_max(self, name: str, **labels: Any) -> Optional[float]:
        """The high-water mark — what a poll-time read misses."""
        with self._lock:
            entry = self._gauges.get(metric_key(name, labels))
            return entry[1] if entry is not None else None

    def histogram_stats(self, name: str, **labels: Any
                        ) -> Optional[Dict[str, float]]:
        """``{count, sum_seconds, mean_seconds}`` for one histogram."""
        with self._lock:
            totals = self._hist_totals.get(metric_key(name, labels))
        if totals is None:
            return None
        count, sum_ticks = totals
        sum_seconds = sum_ticks / TICKS_PER_SECOND
        return {"count": count, "sum_seconds": sum_seconds,
                "mean_seconds": sum_seconds / count if count else 0.0}

    # -- snapshot / merge --------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A self-describing JSON-safe dict; the only wire format.

        Everything additive is an integer, so a snapshot round-trips
        through ``json.dumps``/``loads`` without loss and merges
        exactly (gauge floats travel via json's repr, also exact).
        """
        with self._lock:
            return {
                "schema_version": SCHEMA_VERSION,
                "bounds": list(self._bounds),
                "counters": dict(self._counters),
                "gauges": {key: list(entry)
                           for key, entry in self._gauges.items()},
                "histograms": {
                    key: {"counts": list(self._hist_counts[key]),
                          "count": self._hist_totals[key][0],
                          "sum_ticks": self._hist_totals[key][1]}
                    for key in self._hist_counts},
            }

    def merge_snapshot(self, payload: Mapping[str, Any]) -> None:
        """Fold a validated snapshot in (exact; see module docstring)."""
        payload = validate_snapshot(payload)
        bounds = tuple(payload["bounds"])
        if bounds != self._bounds:
            raise ValueError(
                f"histogram bounds mismatch: registry has "
                f"{self._bounds!r}, snapshot has {bounds!r}")
        with self._lock:
            for key, value in payload["counters"].items():
                self._counters[key] = self._counters.get(key, 0) \
                    + int(value)
            for key, (value, high, low) in payload["gauges"].items():
                entry = self._gauges.get(key)
                if entry is None:
                    self._gauges[key] = [float(value), float(high),
                                         float(low)]
                else:
                    entry[0] = max(entry[0], float(value))
                    entry[1] = max(entry[1], float(high))
                    entry[2] = min(entry[2], float(low))
            for key, hist in payload["histograms"].items():
                counts = self._hist_counts.get(key)
                if counts is None:
                    self._hist_counts[key] = [int(c)
                                              for c in hist["counts"]]
                    self._hist_totals[key] = [int(hist["count"]),
                                              int(hist["sum_ticks"])]
                else:
                    for index, c in enumerate(hist["counts"]):
                        counts[index] += int(c)
                    totals = self._hist_totals[key]
                    totals[0] += int(hist["count"])
                    totals[1] += int(hist["sum_ticks"])

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in via its snapshot."""
        self.merge_snapshot(other.snapshot())

    def __repr__(self) -> str:
        with self._lock:
            return (f"MetricsRegistry(counters={len(self._counters)}, "
                    f"gauges={len(self._gauges)}, "
                    f"histograms={len(self._hist_counts)})")


class NullRegistry(MetricsRegistry):
    """Telemetry-off: every record call is a no-op.

    The default for hot paths that were not handed a registry, so
    instrumented code never branches on ``metrics is None`` and the
    telemetry-off bench column measures a real disabled path.
    """

    def inc(self, name: str, n: int = 1, **labels: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, seconds: float, **labels: Any) -> None:
        pass


def empty_snapshot() -> Dict[str, Any]:
    """A valid snapshot with nothing in it (merge identity)."""
    return MetricsRegistry().snapshot()


def validate_snapshot(payload: Mapping[str, Any]) -> Mapping[str, Any]:
    """Check a snapshot against the schema; returns it, else raises.

    Shared by the CLI, the coordinator's frame handling, CI's fleet
    assertion, and the tests — one schema, one checker.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"snapshot must be an object, got "
                         f"{type(payload).__name__}")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported snapshot schema_version "
                         f"{version!r} (expected {SCHEMA_VERSION})")
    bounds = payload.get("bounds")
    if not isinstance(bounds, list) or not bounds or any(
            not isinstance(b, (int, float)) for b in bounds):
        raise ValueError("snapshot 'bounds' must be a non-empty list "
                         "of numbers")
    if any(b <= a for a, b in zip(bounds, bounds[1:])):
        raise ValueError("snapshot 'bounds' must be strictly increasing")
    counters = payload.get("counters")
    if not isinstance(counters, Mapping) or any(
            not isinstance(v, int) or isinstance(v, bool)
            for v in counters.values()):
        raise ValueError("snapshot 'counters' must map keys to ints")
    gauges = payload.get("gauges")
    if not isinstance(gauges, Mapping):
        raise ValueError("snapshot 'gauges' must be an object")
    for key, entry in gauges.items():
        if not isinstance(entry, list) or len(entry) != 3 or any(
                not isinstance(v, (int, float)) or isinstance(v, bool)
                for v in entry):
            raise ValueError(f"snapshot gauge {key!r} must be a "
                             f"[value, max, min] number triple")
    histograms = payload.get("histograms")
    if not isinstance(histograms, Mapping):
        raise ValueError("snapshot 'histograms' must be an object")
    n_buckets = len(bounds) + 1
    for key, hist in histograms.items():
        if not isinstance(hist, Mapping):
            raise ValueError(f"snapshot histogram {key!r} must be an "
                             f"object")
        counts = hist.get("counts")
        if not isinstance(counts, list) or len(counts) != n_buckets \
                or any(not isinstance(c, int) or isinstance(c, bool)
                       for c in counts):
            raise ValueError(
                f"snapshot histogram {key!r} 'counts' must be a list "
                f"of {n_buckets} ints (bounds + overflow)")
        for field in ("count", "sum_ticks"):
            if not isinstance(hist.get(field), int) \
                    or isinstance(hist.get(field), bool):
                raise ValueError(f"snapshot histogram {key!r} "
                                 f"{field!r} must be an int")
        if hist["count"] != sum(counts):
            raise ValueError(
                f"snapshot histogram {key!r} count {hist['count']} != "
                f"sum of bucket counts {sum(counts)}")
    return payload


def merge_snapshots(payloads: Iterable[Mapping[str, Any]]
                    ) -> Dict[str, Any]:
    """Fold snapshots into one (associativity pinned by the tests)."""
    payloads = list(payloads)
    registry = MetricsRegistry(
        buckets=payloads[0]["bounds"]) if payloads else MetricsRegistry()
    for payload in payloads:
        registry.merge_snapshot(payload)
    return registry.snapshot()


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read and validate a snapshot JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_snapshot(payload)
    return payload


def dump_snapshot(payload: Mapping[str, Any], path: str) -> None:
    """Validate and write a snapshot as JSON."""
    validate_snapshot(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
