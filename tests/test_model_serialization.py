"""Tests for GraphEx construction, persistence and batch inference."""

from __future__ import annotations

import json
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import batch_recommend, differential_update
from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.model import GraphExModel, build_leaf_graph
from repro.core.serialization import (SUPPORTED_FORMATS, LazyStringList,
                                      load_model, model_format_version,
                                      model_size_bytes, open_model,
                                      save_model)
from repro.core.tokenize import DEFAULT_TOKENIZER, STEMMING_TOKENIZER


def curated_two_leaves() -> CuratedKeyphrases:
    leaf_a = CuratedLeaf(leaf_id=10)
    leaf_a.add("audeze maxwell", 500, 40)
    leaf_a.add("gaming headphones", 900, 100)
    leaf_b = CuratedLeaf(leaf_id=11)
    leaf_b.add("mesh router", 250, 60)
    return CuratedKeyphrases(
        leaves={10: leaf_a, 11: leaf_b}, effective_threshold=1,
        config=CurationConfig(min_search_count=1))


class TestConstruction:
    def test_label_lengths_are_unique_token_counts(self):
        leaf = CuratedLeaf(leaf_id=1)
        leaf.add("a b a", 1, 1)  # duplicate token inside the keyphrase
        graph = build_leaf_graph(leaf, DEFAULT_TOKENIZER)
        assert graph.label_lengths[0] == 2

    def test_stemming_tokenizer_merges_variants(self):
        leaf = CuratedLeaf(leaf_id=1)
        leaf.add("headphones", 1, 1)
        graph = build_leaf_graph(leaf, STEMMING_TOKENIZER)
        assert "headphone" in graph.word_vocab

    def test_construct_skips_empty_leaves(self):
        curated = CuratedKeyphrases(
            leaves={1: CuratedLeaf(leaf_id=1)}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        model = GraphExModel.construct(curated)
        assert model.n_leaves == 0

    def test_pooled_graph_merges_duplicates(self):
        leaf_a = CuratedLeaf(leaf_id=1)
        leaf_a.add("shared phrase", 100, 9)
        leaf_b = CuratedLeaf(leaf_id=2)
        leaf_b.add("shared phrase", 300, 4)
        curated = CuratedKeyphrases(
            leaves={1: leaf_a, 2: leaf_b}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        model = GraphExModel.construct(curated, build_pooled=True)
        pooled = model.pooled_graph
        assert pooled.n_labels == 1
        # Max search count and min recall count win the merge.
        assert pooled.search_counts[0] == 300
        assert pooled.recall_counts[0] == 4

    def test_construction_is_fast_even_for_thousands(self, tiny_curated):
        import time
        start = time.perf_counter()
        GraphExModel.construct(tiny_curated)
        assert time.perf_counter() - start < 5.0

    def test_custom_alignment_name(self):
        model = GraphExModel.construct(curated_two_leaves(), alignment="jac")
        assert model.alignment_name == "jac"


class TestSerialization:
    def test_roundtrip_preserves_recommendations(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        title = "audeze maxwell gaming headphones"
        original = model.recommend(title, 10, k=5)
        restored = loaded.recommend(title, 10, k=5)
        assert [(r.text, r.score) for r in original] \
            == [(r.text, r.score) for r in restored]

    def test_roundtrip_preserves_structure(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves(),
                                       build_pooled=True)
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        assert loaded.leaf_ids == model.leaf_ids
        assert loaded.n_keyphrases == model.n_keyphrases
        assert loaded.pooled_graph is not None

    def test_roundtrip_preserves_alignment(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves(), alignment="wmr")
        save_model(model, tmp_path / "m")
        assert load_model(tmp_path / "m").alignment_name == "wmr"

    def test_roundtrip_preserves_stemming_flag(self, tmp_path):
        model = GraphExModel.construct(
            curated_two_leaves(), tokenizer=STEMMING_TOKENIZER)
        save_model(model, tmp_path / "m")
        assert load_model(tmp_path / "m").tokenizer.stems

    def test_model_size_bytes(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        save_model(model, tmp_path / "m")
        assert model_size_bytes(tmp_path / "m") > 0

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "absent")

    def test_unknown_format_version_raises(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        path = save_model(model, tmp_path / "m")
        meta_file = path / "model.json"
        meta_file.write_text('{"format_version": 99}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_bigger_model_serializes_bigger(self, tmp_path, tiny_curated):
        small = GraphExModel.construct(curated_two_leaves())
        big = GraphExModel.construct(tiny_curated)
        save_model(small, tmp_path / "small")
        save_model(big, tmp_path / "big")
        assert model_size_bytes(tmp_path / "big") \
            > model_size_bytes(tmp_path / "small")


class TestRoundtripFidelity:
    """A saved+loaded model must serve element-wise identical
    fast-engine batch output — text, score, counts and order — across
    the pooled-graph and stemming-tokenizer configurations."""

    def _requests(self):
        return [
            (1, "audeze maxwell gaming headphones", 10),
            (2, "mesh router gaming", 11),
            (3, "gaming headphones for routers", 999),  # pooled fallback
            (4, "", 10),
        ]

    @pytest.mark.parametrize("tokenizer", [DEFAULT_TOKENIZER,
                                           STEMMING_TOKENIZER])
    @pytest.mark.parametrize("build_pooled", [False, True])
    def test_fast_engine_output_identical_after_roundtrip(
            self, tmp_path, tokenizer, build_pooled):
        model = GraphExModel.construct(
            curated_two_leaves(), tokenizer=tokenizer,
            build_pooled=build_pooled, alignment="wmr")
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        original = batch_recommend(model, self._requests(), k=5,
                                   engine="fast")
        restored = batch_recommend(loaded, self._requests(), k=5,
                                   engine="fast")
        assert restored.keys() == original.keys()
        for item_id in original:
            assert restored[item_id] == original[item_id]

    def test_roundtrip_preserves_arrays_and_vocab_order(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves(),
                                       build_pooled=True)
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        for leaf_id in model.leaf_ids + [None]:
            a = model.pooled_graph if leaf_id is None \
                else model.leaf_graph(leaf_id)
            b = loaded.pooled_graph if leaf_id is None \
                else loaded.leaf_graph(leaf_id)
            assert b.word_vocab.tokens == a.word_vocab.tokens
            assert np.array_equal(b.graph.indptr, a.graph.indptr)
            assert np.array_equal(b.graph.indices, a.graph.indices)
            assert b.label_texts == a.label_texts
            assert np.array_equal(b.label_lengths, a.label_lengths)
            assert np.array_equal(b.search_counts, a.search_counts)
            assert np.array_equal(b.recall_counts, a.recall_counts)

    def test_string_pool_is_shared_and_deduplicated(self, tmp_path):
        """Format 2: every distinct string appears once in the pool,
        even when the pooled graph duplicates every leaf's strings."""
        model = GraphExModel.construct(curated_two_leaves(),
                                       build_pooled=True)
        path = save_model(model, tmp_path / "m", format_version=2)
        meta = json.loads((path / "model.json").read_text())
        assert meta["format_version"] == 2
        pool = meta["string_pool"]
        assert len(pool) == len(set(pool))
        expected = set()
        for graph in [model.leaf_graph(i) for i in model.leaf_ids] \
                + [model.pooled_graph]:
            expected.update(graph.label_texts)
            expected.update(graph.word_vocab.tokens)
        assert set(pool) == expected

    def test_format_version_1_still_loads(self, tmp_path):
        """Backward compatibility: a v1 directory (per-leaf string
        lists in the JSON, no id arrays) loads and serves identically."""
        model = GraphExModel.construct(curated_two_leaves())
        directory = tmp_path / "v1"
        directory.mkdir()
        arrays, leaves_meta = {}, {}
        for leaf_id in model.leaf_ids:
            leaf = model.leaf_graph(leaf_id)
            key = str(leaf_id)
            arrays[f"{key}/indptr"] = leaf.graph.indptr
            arrays[f"{key}/indices"] = leaf.graph.indices
            arrays[f"{key}/label_lengths"] = leaf.label_lengths
            arrays[f"{key}/search_counts"] = leaf.search_counts
            arrays[f"{key}/recall_counts"] = leaf.recall_counts
            leaves_meta[key] = {
                "leaf_id": leaf.leaf_id,
                "words": leaf.word_vocab.tokens,
                "label_texts": leaf.label_texts,
            }
        np.savez_compressed(directory / "arrays.npz", **arrays)
        (directory / "model.json").write_text(json.dumps({
            "format_version": 1,
            "alignment": "lta",
            "tokenizer": {"type": "space", "stem": False},
            "leaves": leaves_meta,
        }))
        loaded = load_model(directory)
        original = batch_recommend(model, self._requests(), k=5)
        restored = batch_recommend(loaded, self._requests(), k=5)
        for item_id in original:
            assert restored[item_id] == original[item_id]


class TestBatch:
    def _requests(self):
        return [
            (1, "audeze maxwell gaming headphones", 10),
            (2, "mesh router", 11),
            (3, "unrelated thing entirely", 10),
        ]

    def test_batch_matches_single(self):
        model = GraphExModel.construct(curated_two_leaves())
        results = batch_recommend(model, self._requests(), k=5)
        for item_id, title, leaf_id in self._requests():
            solo = model.recommend(title, leaf_id, k=5)
            assert [r.text for r in results[item_id]] \
                == [r.text for r in solo]

    def test_batch_with_workers_matches_serial(self):
        model = GraphExModel.construct(curated_two_leaves())
        requests = self._requests() * 10
        serial = batch_recommend(model, requests, k=5, workers=1)
        parallel = batch_recommend(model, requests, k=5, workers=4)
        assert {k: [r.text for r in v] for k, v in serial.items()} \
            == {k: [r.text for r in v] for k, v in parallel.items()}

    def test_differential_merges(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        changed = [(2, "audeze maxwell gaming headphones", 10)]
        merged = differential_update(model, previous, changed)
        assert [r.text for r in merged[2]] \
            == [r.text for r in model.recommend(
                "audeze maxwell gaming headphones", 10, k=10)][:len(merged[2])]
        assert merged[1] == previous[1]

    def test_differential_deletes(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        merged = differential_update(model, previous, [],
                                     deleted_item_ids=[1])
        assert 1 not in merged
        assert 2 in merged

    def test_differential_does_not_mutate_previous(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        before = dict(previous)
        differential_update(model, previous, [], deleted_item_ids=[1])
        assert previous == before

    def test_hard_limit_respected(self):
        model = GraphExModel.construct(curated_two_leaves())
        results = batch_recommend(model, self._requests(), k=5, hard_limit=1)
        assert all(len(recs) <= 1 for recs in results.values())


# ---------------------------------------------------------------------------
# Cross-format equivalence + the zero-copy mapped plane (format 3)


_TOKENS = ["alpha", "beta", "gamma", "delta", "épée", "graph",
           "router", "音楽", "headphones", "mesh"]


@st.composite
def curated_worlds(draw):
    """Small random curated worlds: 1-3 leaves, each with a handful of
    keyphrases over a shared token alphabet (including non-ASCII, so
    the UTF-8 string pool is exercised for real)."""
    leaves = {}
    for leaf_id in range(1, draw(st.integers(1, 3)) + 1):
        leaf = CuratedLeaf(leaf_id=leaf_id)
        seen = set()
        for _ in range(draw(st.integers(1, 6))):
            words = draw(st.lists(st.sampled_from(_TOKENS),
                                  min_size=1, max_size=3))
            text = " ".join(words)
            if text in seen:
                continue
            seen.add(text)
            leaf.add(text, draw(st.integers(1, 500)),
                     draw(st.integers(1, 500)))
        leaves[leaf_id] = leaf
    return CuratedKeyphrases(
        leaves=leaves, effective_threshold=1,
        config=CurationConfig(min_search_count=1))


def assert_graphs_identical(a, b):
    assert b.leaf_id == a.leaf_id
    assert b.word_vocab.tokens == a.word_vocab.tokens
    assert np.array_equal(b.graph.indptr, a.graph.indptr)
    assert np.array_equal(b.graph.indices, a.graph.indices)
    assert list(b.label_texts) == list(a.label_texts)
    assert np.array_equal(b.label_lengths, a.label_lengths)
    assert np.array_equal(b.search_counts, a.search_counts)
    assert np.array_equal(b.recall_counts, a.recall_counts)


def assert_models_identical(a, b):
    assert b.leaf_ids == a.leaf_ids
    for leaf_id in a.leaf_ids:
        assert_graphs_identical(a.leaf_graph(leaf_id),
                                b.leaf_graph(leaf_id))
    assert (a.pooled_graph is None) == (b.pooled_graph is None)
    if a.pooled_graph is not None:
        assert_graphs_identical(a.pooled_graph, b.pooled_graph)


def _world_requests(model):
    requests = [(0, "alpha beta gamma épée", 999)]  # pooled/miss path
    for i, leaf_id in enumerate(model.leaf_ids, start=1):
        graph = model.leaf_graph(leaf_id)
        requests.append((i, graph.label_texts[0], leaf_id))
    return requests


def _serve_mapped_artifact(directory, requests):
    """Process-pool worker: open the shared v3 artifact zero-copy and
    serve a batch (module-level so it pickles)."""
    model = load_model(Path(directory), mmap=True)
    results = batch_recommend(model, requests, k=5)
    return {item_id: [(r.text, r.score, r.search_count, r.recall_count)
                      for r in recs]
            for item_id, recs in results.items()}


class TestCrossFormat:
    """ISSUE 6: every writable format round-trips bit-identical, and
    the mmap-opened v3 plane is indistinguishable from a copied load
    through both inference engines."""

    @settings(max_examples=25, deadline=None)
    @given(curated=curated_worlds(), build_pooled=st.booleans())
    def test_v1_v2_v3_load_bit_identical(self, curated, build_pooled):
        model = GraphExModel.construct(curated,
                                       build_pooled=build_pooled)
        with tempfile.TemporaryDirectory() as tmp:
            loaded = {}
            for version in (1, 2, 3):
                path = Path(tmp) / f"v{version}"
                save_model(model, path, format_version=version)
                assert model_format_version(path) == version
                loaded[version] = load_model(path)
            for version, reopened in loaded.items():
                assert_models_identical(model, reopened)

    @settings(max_examples=25, deadline=None)
    @given(curated=curated_worlds(), build_pooled=st.booleans())
    def test_v3_mmap_vs_copied_identical_output(self, curated,
                                                build_pooled):
        model = GraphExModel.construct(curated,
                                       build_pooled=build_pooled)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "m"
            save_model(model, path, format_version=3)
            copied = load_model(path)
            mapped = load_model(path, mmap=True)
            assert_models_identical(copied, mapped)
            requests = _world_requests(model)
            for engine in ("fast", "reference"):
                expected = batch_recommend(model, requests, k=5,
                                           engine=engine)
                assert batch_recommend(copied, requests, k=5,
                                       engine=engine) == expected
                assert batch_recommend(mapped, requests, k=5,
                                       engine=engine) == expected

    def test_future_format_version_named_in_error(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        path = save_model(model, tmp_path / "m")
        (path / "model.json").write_text('{"format_version": 99}')
        with pytest.raises(ValueError) as excinfo:
            load_model(path)
        message = str(excinfo.value)
        assert "99" in message
        assert str(SUPPORTED_FORMATS) in message

    @pytest.mark.parametrize("version", [1, 2])
    def test_mmap_requires_format_3(self, tmp_path, version):
        model = GraphExModel.construct(curated_two_leaves())
        path = save_model(model, tmp_path / "m", format_version=version)
        with pytest.raises(ValueError, match="mmap"):
            load_model(path, mmap=True)

    def test_unsupported_write_version_rejected(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        with pytest.raises(ValueError, match="4"):
            save_model(model, tmp_path / "m", format_version=4)


class TestMappedPlane:
    """Safety properties of the zero-copy (mmap) model plane."""

    def _mapped(self, tmp_path, **construct_kwargs):
        model = GraphExModel.construct(curated_two_leaves(),
                                       **construct_kwargs)
        path = save_model(model, tmp_path / "m", format_version=3)
        return model, path, load_model(path, mmap=True)

    def test_mapped_arrays_are_read_only(self, tmp_path):
        _model, _path, mapped = self._mapped(tmp_path,
                                             build_pooled=True)
        for leaf_id in mapped.leaf_ids:
            graph = mapped.leaf_graph(leaf_id)
            assert graph.graph.is_readonly
            for array in (graph.graph.indptr, graph.graph.indices,
                          graph.label_lengths, graph.search_counts,
                          graph.recall_counts):
                assert not array.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    array[0] = 1
        assert mapped.pooled_graph.graph.is_readonly

    def test_built_graphs_are_not_readonly(self):
        model = GraphExModel.construct(curated_two_leaves())
        for leaf_id in model.leaf_ids:
            assert not model.leaf_graph(leaf_id).graph.is_readonly

    def test_mapped_model_survives_atomic_replace(self, tmp_path):
        """The rebuild-over-old-path scenario: a process still holding
        yesterday's mapped model keeps serving it bit-identically
        after today's save_model replaces the directory contents."""
        old_model, path, mapped = self._mapped(tmp_path)
        requests = _world_requests(old_model)
        before = batch_recommend(mapped, requests, k=5)

        leaf = CuratedLeaf(leaf_id=10)
        leaf.add("completely different phrase", 50, 5)
        new_model = GraphExModel.construct(CuratedKeyphrases(
            leaves={10: leaf}, effective_threshold=1,
            config=CurationConfig(min_search_count=1)))
        save_model(new_model, path, format_version=3)

        # The old mapping still reads the (unlinked) old payload.
        assert batch_recommend(mapped, requests, k=5) == before
        # A fresh open sees the replacement.
        fresh = load_model(path, mmap=True)
        assert_models_identical(new_model, fresh)

    def test_concurrent_workers_share_one_artifact(self, tmp_path):
        """Two process workers opening the same v3 artifact serve
        outputs identical to the in-memory model's."""
        model, path, _mapped = self._mapped(tmp_path)
        requests = _world_requests(model)
        expected = {
            item_id: [(r.text, r.score, r.search_count, r.recall_count)
                      for r in recs]
            for item_id, recs in
            batch_recommend(model, requests, k=5).items()}
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_serve_mapped_artifact, str(path),
                                   requests) for _ in range(2)]
            results = [future.result(timeout=60) for future in futures]
        assert results[0] == expected
        assert results[1] == expected

    def test_mapped_model_pickles_by_materializing(self, tmp_path):
        model, _path, mapped = self._mapped(tmp_path)
        clone = pickle.loads(pickle.dumps(mapped))
        assert_models_identical(model, clone)

    def test_open_model_passthrough_and_path(self, tmp_path):
        model, path, _mapped = self._mapped(tmp_path)
        assert open_model(model) is model
        opened = open_model(path)
        assert_models_identical(model, opened)
        # v3 path → zero-copy open.
        leaf_id = opened.leaf_ids[0]
        assert opened.leaf_graph(leaf_id).graph.is_readonly
        # Older formats fall back to an ordinary copied load.
        v2 = save_model(model, path.parent / "v2", format_version=2)
        assert_models_identical(model, open_model(str(v2)))

    def test_lazy_string_list_behaves_like_a_list(self, tmp_path):
        model, _path, mapped = self._mapped(tmp_path)
        leaf_id = model.leaf_ids[0]
        lazy = mapped.leaf_graph(leaf_id).label_texts
        eager = model.leaf_graph(leaf_id).label_texts
        assert isinstance(lazy, LazyStringList)
        assert len(lazy) == len(eager)
        assert list(lazy) == list(eager)
        assert lazy == eager
        assert lazy[0] == eager[0] and lazy[-1] == eager[-1]
        assert lazy[1:] == list(eager[1:])
        assert eager[0] in lazy
        assert pickle.loads(pickle.dumps(lazy)) == list(eager)
