"""Tests for GraphEx construction, persistence and batch inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import batch_recommend, differential_update
from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.model import GraphExModel, build_leaf_graph
from repro.core.serialization import load_model, model_size_bytes, save_model
from repro.core.tokenize import DEFAULT_TOKENIZER, STEMMING_TOKENIZER


def curated_two_leaves() -> CuratedKeyphrases:
    leaf_a = CuratedLeaf(leaf_id=10)
    leaf_a.add("audeze maxwell", 500, 40)
    leaf_a.add("gaming headphones", 900, 100)
    leaf_b = CuratedLeaf(leaf_id=11)
    leaf_b.add("mesh router", 250, 60)
    return CuratedKeyphrases(
        leaves={10: leaf_a, 11: leaf_b}, effective_threshold=1,
        config=CurationConfig(min_search_count=1))


class TestConstruction:
    def test_label_lengths_are_unique_token_counts(self):
        leaf = CuratedLeaf(leaf_id=1)
        leaf.add("a b a", 1, 1)  # duplicate token inside the keyphrase
        graph = build_leaf_graph(leaf, DEFAULT_TOKENIZER)
        assert graph.label_lengths[0] == 2

    def test_stemming_tokenizer_merges_variants(self):
        leaf = CuratedLeaf(leaf_id=1)
        leaf.add("headphones", 1, 1)
        graph = build_leaf_graph(leaf, STEMMING_TOKENIZER)
        assert "headphone" in graph.word_vocab

    def test_construct_skips_empty_leaves(self):
        curated = CuratedKeyphrases(
            leaves={1: CuratedLeaf(leaf_id=1)}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        model = GraphExModel.construct(curated)
        assert model.n_leaves == 0

    def test_pooled_graph_merges_duplicates(self):
        leaf_a = CuratedLeaf(leaf_id=1)
        leaf_a.add("shared phrase", 100, 9)
        leaf_b = CuratedLeaf(leaf_id=2)
        leaf_b.add("shared phrase", 300, 4)
        curated = CuratedKeyphrases(
            leaves={1: leaf_a, 2: leaf_b}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        model = GraphExModel.construct(curated, build_pooled=True)
        pooled = model.pooled_graph
        assert pooled.n_labels == 1
        # Max search count and min recall count win the merge.
        assert pooled.search_counts[0] == 300
        assert pooled.recall_counts[0] == 4

    def test_construction_is_fast_even_for_thousands(self, tiny_curated):
        import time
        start = time.perf_counter()
        GraphExModel.construct(tiny_curated)
        assert time.perf_counter() - start < 5.0

    def test_custom_alignment_name(self):
        model = GraphExModel.construct(curated_two_leaves(), alignment="jac")
        assert model.alignment_name == "jac"


class TestSerialization:
    def test_roundtrip_preserves_recommendations(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        title = "audeze maxwell gaming headphones"
        original = model.recommend(title, 10, k=5)
        restored = loaded.recommend(title, 10, k=5)
        assert [(r.text, r.score) for r in original] \
            == [(r.text, r.score) for r in restored]

    def test_roundtrip_preserves_structure(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves(),
                                       build_pooled=True)
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        assert loaded.leaf_ids == model.leaf_ids
        assert loaded.n_keyphrases == model.n_keyphrases
        assert loaded.pooled_graph is not None

    def test_roundtrip_preserves_alignment(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves(), alignment="wmr")
        save_model(model, tmp_path / "m")
        assert load_model(tmp_path / "m").alignment_name == "wmr"

    def test_roundtrip_preserves_stemming_flag(self, tmp_path):
        model = GraphExModel.construct(
            curated_two_leaves(), tokenizer=STEMMING_TOKENIZER)
        save_model(model, tmp_path / "m")
        assert load_model(tmp_path / "m").tokenizer.stems

    def test_model_size_bytes(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        save_model(model, tmp_path / "m")
        assert model_size_bytes(tmp_path / "m") > 0

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "absent")

    def test_unknown_format_version_raises(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        path = save_model(model, tmp_path / "m")
        meta_file = path / "model.json"
        meta_file.write_text('{"format_version": 99}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_bigger_model_serializes_bigger(self, tmp_path, tiny_curated):
        small = GraphExModel.construct(curated_two_leaves())
        big = GraphExModel.construct(tiny_curated)
        save_model(small, tmp_path / "small")
        save_model(big, tmp_path / "big")
        assert model_size_bytes(tmp_path / "big") \
            > model_size_bytes(tmp_path / "small")


class TestBatch:
    def _requests(self):
        return [
            (1, "audeze maxwell gaming headphones", 10),
            (2, "mesh router", 11),
            (3, "unrelated thing entirely", 10),
        ]

    def test_batch_matches_single(self):
        model = GraphExModel.construct(curated_two_leaves())
        results = batch_recommend(model, self._requests(), k=5)
        for item_id, title, leaf_id in self._requests():
            solo = model.recommend(title, leaf_id, k=5)
            assert [r.text for r in results[item_id]] \
                == [r.text for r in solo]

    def test_batch_with_workers_matches_serial(self):
        model = GraphExModel.construct(curated_two_leaves())
        requests = self._requests() * 10
        serial = batch_recommend(model, requests, k=5, workers=1)
        parallel = batch_recommend(model, requests, k=5, workers=4)
        assert {k: [r.text for r in v] for k, v in serial.items()} \
            == {k: [r.text for r in v] for k, v in parallel.items()}

    def test_differential_merges(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        changed = [(2, "audeze maxwell gaming headphones", 10)]
        merged = differential_update(model, previous, changed)
        assert [r.text for r in merged[2]] \
            == [r.text for r in model.recommend(
                "audeze maxwell gaming headphones", 10, k=10)][:len(merged[2])]
        assert merged[1] == previous[1]

    def test_differential_deletes(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        merged = differential_update(model, previous, [],
                                     deleted_item_ids=[1])
        assert 1 not in merged
        assert 2 in merged

    def test_differential_does_not_mutate_previous(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        before = dict(previous)
        differential_update(model, previous, [], deleted_item_ids=[1])
        assert previous == before

    def test_hard_limit_respected(self):
        model = GraphExModel.construct(curated_two_leaves())
        results = batch_recommend(model, self._requests(), k=5, hard_limit=1)
        assert all(len(recs) <= 1 for recs in results.values())
