"""Tests for GraphEx construction, persistence and batch inference."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.batch import batch_recommend, differential_update
from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.model import GraphExModel, build_leaf_graph
from repro.core.serialization import load_model, model_size_bytes, save_model
from repro.core.tokenize import DEFAULT_TOKENIZER, STEMMING_TOKENIZER


def curated_two_leaves() -> CuratedKeyphrases:
    leaf_a = CuratedLeaf(leaf_id=10)
    leaf_a.add("audeze maxwell", 500, 40)
    leaf_a.add("gaming headphones", 900, 100)
    leaf_b = CuratedLeaf(leaf_id=11)
    leaf_b.add("mesh router", 250, 60)
    return CuratedKeyphrases(
        leaves={10: leaf_a, 11: leaf_b}, effective_threshold=1,
        config=CurationConfig(min_search_count=1))


class TestConstruction:
    def test_label_lengths_are_unique_token_counts(self):
        leaf = CuratedLeaf(leaf_id=1)
        leaf.add("a b a", 1, 1)  # duplicate token inside the keyphrase
        graph = build_leaf_graph(leaf, DEFAULT_TOKENIZER)
        assert graph.label_lengths[0] == 2

    def test_stemming_tokenizer_merges_variants(self):
        leaf = CuratedLeaf(leaf_id=1)
        leaf.add("headphones", 1, 1)
        graph = build_leaf_graph(leaf, STEMMING_TOKENIZER)
        assert "headphone" in graph.word_vocab

    def test_construct_skips_empty_leaves(self):
        curated = CuratedKeyphrases(
            leaves={1: CuratedLeaf(leaf_id=1)}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        model = GraphExModel.construct(curated)
        assert model.n_leaves == 0

    def test_pooled_graph_merges_duplicates(self):
        leaf_a = CuratedLeaf(leaf_id=1)
        leaf_a.add("shared phrase", 100, 9)
        leaf_b = CuratedLeaf(leaf_id=2)
        leaf_b.add("shared phrase", 300, 4)
        curated = CuratedKeyphrases(
            leaves={1: leaf_a, 2: leaf_b}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        model = GraphExModel.construct(curated, build_pooled=True)
        pooled = model.pooled_graph
        assert pooled.n_labels == 1
        # Max search count and min recall count win the merge.
        assert pooled.search_counts[0] == 300
        assert pooled.recall_counts[0] == 4

    def test_construction_is_fast_even_for_thousands(self, tiny_curated):
        import time
        start = time.perf_counter()
        GraphExModel.construct(tiny_curated)
        assert time.perf_counter() - start < 5.0

    def test_custom_alignment_name(self):
        model = GraphExModel.construct(curated_two_leaves(), alignment="jac")
        assert model.alignment_name == "jac"


class TestSerialization:
    def test_roundtrip_preserves_recommendations(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        title = "audeze maxwell gaming headphones"
        original = model.recommend(title, 10, k=5)
        restored = loaded.recommend(title, 10, k=5)
        assert [(r.text, r.score) for r in original] \
            == [(r.text, r.score) for r in restored]

    def test_roundtrip_preserves_structure(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves(),
                                       build_pooled=True)
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        assert loaded.leaf_ids == model.leaf_ids
        assert loaded.n_keyphrases == model.n_keyphrases
        assert loaded.pooled_graph is not None

    def test_roundtrip_preserves_alignment(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves(), alignment="wmr")
        save_model(model, tmp_path / "m")
        assert load_model(tmp_path / "m").alignment_name == "wmr"

    def test_roundtrip_preserves_stemming_flag(self, tmp_path):
        model = GraphExModel.construct(
            curated_two_leaves(), tokenizer=STEMMING_TOKENIZER)
        save_model(model, tmp_path / "m")
        assert load_model(tmp_path / "m").tokenizer.stems

    def test_model_size_bytes(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        save_model(model, tmp_path / "m")
        assert model_size_bytes(tmp_path / "m") > 0

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "absent")

    def test_unknown_format_version_raises(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves())
        path = save_model(model, tmp_path / "m")
        meta_file = path / "model.json"
        meta_file.write_text('{"format_version": 99}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_bigger_model_serializes_bigger(self, tmp_path, tiny_curated):
        small = GraphExModel.construct(curated_two_leaves())
        big = GraphExModel.construct(tiny_curated)
        save_model(small, tmp_path / "small")
        save_model(big, tmp_path / "big")
        assert model_size_bytes(tmp_path / "big") \
            > model_size_bytes(tmp_path / "small")


class TestRoundtripFidelity:
    """A saved+loaded model must serve element-wise identical
    fast-engine batch output — text, score, counts and order — across
    the pooled-graph and stemming-tokenizer configurations."""

    def _requests(self):
        return [
            (1, "audeze maxwell gaming headphones", 10),
            (2, "mesh router gaming", 11),
            (3, "gaming headphones for routers", 999),  # pooled fallback
            (4, "", 10),
        ]

    @pytest.mark.parametrize("tokenizer", [DEFAULT_TOKENIZER,
                                           STEMMING_TOKENIZER])
    @pytest.mark.parametrize("build_pooled", [False, True])
    def test_fast_engine_output_identical_after_roundtrip(
            self, tmp_path, tokenizer, build_pooled):
        model = GraphExModel.construct(
            curated_two_leaves(), tokenizer=tokenizer,
            build_pooled=build_pooled, alignment="wmr")
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        original = batch_recommend(model, self._requests(), k=5,
                                   engine="fast")
        restored = batch_recommend(loaded, self._requests(), k=5,
                                   engine="fast")
        assert restored.keys() == original.keys()
        for item_id in original:
            assert restored[item_id] == original[item_id]

    def test_roundtrip_preserves_arrays_and_vocab_order(self, tmp_path):
        model = GraphExModel.construct(curated_two_leaves(),
                                       build_pooled=True)
        save_model(model, tmp_path / "m")
        loaded = load_model(tmp_path / "m")
        for leaf_id in model.leaf_ids + [None]:
            a = model.pooled_graph if leaf_id is None \
                else model.leaf_graph(leaf_id)
            b = loaded.pooled_graph if leaf_id is None \
                else loaded.leaf_graph(leaf_id)
            assert b.word_vocab.tokens == a.word_vocab.tokens
            assert np.array_equal(b.graph.indptr, a.graph.indptr)
            assert np.array_equal(b.graph.indices, a.graph.indices)
            assert b.label_texts == a.label_texts
            assert np.array_equal(b.label_lengths, a.label_lengths)
            assert np.array_equal(b.search_counts, a.search_counts)
            assert np.array_equal(b.recall_counts, a.recall_counts)

    def test_string_pool_is_shared_and_deduplicated(self, tmp_path):
        """Format 2: every distinct string appears once in the pool,
        even when the pooled graph duplicates every leaf's strings."""
        model = GraphExModel.construct(curated_two_leaves(),
                                       build_pooled=True)
        path = save_model(model, tmp_path / "m")
        meta = json.loads((path / "model.json").read_text())
        assert meta["format_version"] == 2
        pool = meta["string_pool"]
        assert len(pool) == len(set(pool))
        expected = set()
        for graph in [model.leaf_graph(i) for i in model.leaf_ids] \
                + [model.pooled_graph]:
            expected.update(graph.label_texts)
            expected.update(graph.word_vocab.tokens)
        assert set(pool) == expected

    def test_format_version_1_still_loads(self, tmp_path):
        """Backward compatibility: a v1 directory (per-leaf string
        lists in the JSON, no id arrays) loads and serves identically."""
        model = GraphExModel.construct(curated_two_leaves())
        directory = tmp_path / "v1"
        directory.mkdir()
        arrays, leaves_meta = {}, {}
        for leaf_id in model.leaf_ids:
            leaf = model.leaf_graph(leaf_id)
            key = str(leaf_id)
            arrays[f"{key}/indptr"] = leaf.graph.indptr
            arrays[f"{key}/indices"] = leaf.graph.indices
            arrays[f"{key}/label_lengths"] = leaf.label_lengths
            arrays[f"{key}/search_counts"] = leaf.search_counts
            arrays[f"{key}/recall_counts"] = leaf.recall_counts
            leaves_meta[key] = {
                "leaf_id": leaf.leaf_id,
                "words": leaf.word_vocab.tokens,
                "label_texts": leaf.label_texts,
            }
        np.savez_compressed(directory / "arrays.npz", **arrays)
        (directory / "model.json").write_text(json.dumps({
            "format_version": 1,
            "alignment": "lta",
            "tokenizer": {"type": "space", "stem": False},
            "leaves": leaves_meta,
        }))
        loaded = load_model(directory)
        original = batch_recommend(model, self._requests(), k=5)
        restored = batch_recommend(loaded, self._requests(), k=5)
        for item_id in original:
            assert restored[item_id] == original[item_id]


class TestBatch:
    def _requests(self):
        return [
            (1, "audeze maxwell gaming headphones", 10),
            (2, "mesh router", 11),
            (3, "unrelated thing entirely", 10),
        ]

    def test_batch_matches_single(self):
        model = GraphExModel.construct(curated_two_leaves())
        results = batch_recommend(model, self._requests(), k=5)
        for item_id, title, leaf_id in self._requests():
            solo = model.recommend(title, leaf_id, k=5)
            assert [r.text for r in results[item_id]] \
                == [r.text for r in solo]

    def test_batch_with_workers_matches_serial(self):
        model = GraphExModel.construct(curated_two_leaves())
        requests = self._requests() * 10
        serial = batch_recommend(model, requests, k=5, workers=1)
        parallel = batch_recommend(model, requests, k=5, workers=4)
        assert {k: [r.text for r in v] for k, v in serial.items()} \
            == {k: [r.text for r in v] for k, v in parallel.items()}

    def test_differential_merges(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        changed = [(2, "audeze maxwell gaming headphones", 10)]
        merged = differential_update(model, previous, changed)
        assert [r.text for r in merged[2]] \
            == [r.text for r in model.recommend(
                "audeze maxwell gaming headphones", 10, k=10)][:len(merged[2])]
        assert merged[1] == previous[1]

    def test_differential_deletes(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        merged = differential_update(model, previous, [],
                                     deleted_item_ids=[1])
        assert 1 not in merged
        assert 2 in merged

    def test_differential_does_not_mutate_previous(self):
        model = GraphExModel.construct(curated_two_leaves())
        previous = batch_recommend(model, self._requests(), k=5)
        before = dict(previous)
        differential_update(model, previous, [], deleted_item_ids=[1])
        assert previous == before

    def test_hard_limit_respected(self):
        model = GraphExModel.construct(curated_two_leaves())
        results = batch_recommend(model, self._requests(), k=5, hard_limit=1)
        assert all(len(recs) <= 1 for recs in results.values())
