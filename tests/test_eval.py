"""Tests for the evaluation framework: judges, metrics, diversity, tables."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.diversity import (
    diversity_ratios,
    exclusive_relevant_head_counts,
)
from repro.eval.judge import (
    CallableJudge,
    LexicalJudge,
    MixtralPromptBuilder,
    OracleJudge,
)
from repro.eval.metrics import (
    HeadClassifier,
    JudgedPredictions,
    judge_model_predictions,
    precision_recall,
    relative_head_ratio,
    relative_relevant_ratio,
)
from repro.eval.reporting import (
    format_cell,
    render_bar_chart,
    render_markdown,
    render_table,
)


class TestOracleJudge:
    def test_matches_generator_ground_truth(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        judge = OracleJudge(catalog)
        item = catalog.items[0]
        product = catalog.product_of_item(item.item_id)
        relevant = f"{product.brand} {product.ptype[-1]}"
        assert judge.is_relevant(item.item_id, item.title, relevant)
        assert not judge.is_relevant(item.item_id, item.title,
                                     "completely unrelated thing")

    def test_judge_batch(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        judge = OracleJudge(catalog)
        item = catalog.items[0]
        product = catalog.product_of_item(item.item_id)
        verdicts = judge.judge_batch(
            item.item_id, item.title,
            [product.brand, "zzz nonsense"])
        assert verdicts == [True, False]


class TestLexicalJudge:
    def test_full_containment_is_relevant(self):
        judge = LexicalJudge()
        assert judge.is_relevant(1, "audeze maxwell headphones",
                                 "audeze headphones")

    def test_partial_containment_fails_strict(self):
        judge = LexicalJudge(min_coverage=1.0)
        assert not judge.is_relevant(1, "audeze maxwell headphones",
                                     "audeze speakers")

    def test_partial_coverage_threshold(self):
        judge = LexicalJudge(min_coverage=0.5)
        assert judge.is_relevant(1, "audeze maxwell headphones",
                                 "audeze speakers")

    def test_stemming_widens_matches(self):
        judge = LexicalJudge()
        assert judge.is_relevant(1, "headphone stand", "headphones stand")

    def test_stopword_only_keyphrase_irrelevant(self):
        assert not LexicalJudge().is_relevant(1, "anything", "for with")

    def test_invalid_coverage_raises(self):
        with pytest.raises(ValueError):
            LexicalJudge(min_coverage=0.0)
        with pytest.raises(ValueError):
            LexicalJudge(min_coverage=1.5)


class TestMixtralPromptBuilder:
    def test_prompt_contains_paper_wording(self):
        prompt = MixtralPromptBuilder().build("my title", "my phrase")
        assert 'title: "my title"' in prompt
        assert 'keyphrase: "my phrase"' in prompt
        assert "relevant for cpc targeting" in prompt
        assert "ONLY yes or no" in prompt
        assert prompt.startswith("Below is an instruction")

    def test_build_batch(self):
        prompts = MixtralPromptBuilder().build_batch("t", ["a", "b"])
        assert len(prompts) == 2

    def test_parse_yes_no(self):
        parse = MixtralPromptBuilder.parse_response
        assert parse("yes") is True
        assert parse("  Yes, it is") is True
        assert parse("No") is False

    def test_parse_garbage_raises(self):
        with pytest.raises(ValueError):
            MixtralPromptBuilder.parse_response("maybe?")


class TestCallableJudge:
    def test_wraps_callable(self):
        judge = CallableJudge(lambda title, phrase: phrase in title)
        assert judge.is_relevant(1, "a b c", "b")
        assert not judge.is_relevant(1, "a b c", "z")


class TestHeadClassifier:
    def test_p90_threshold(self):
        counts = {f"k{i}": i for i in range(1, 101)}
        head = HeadClassifier(counts)
        n_head = sum(1 for k in counts if head.is_head(k))
        assert n_head == pytest.approx(10, abs=2)

    def test_unknown_keyphrase_is_tail(self):
        head = HeadClassifier({"a": 100, "b": 1, "c": 1, "d": 1})
        assert not head.is_head("unseen")
        assert head.search_count("unseen") == 0

    def test_empty_counts(self):
        head = HeadClassifier({})
        assert not head.is_head("anything")

    def test_threshold_strictly_exceeded(self):
        head = HeadClassifier({"a": 10, "b": 10, "c": 10})
        assert head.threshold == 10
        assert not head.is_head("a")


class TestJudgedPredictions:
    def _judged(self):
        j = JudgedPredictions(model="m", n_items=2)
        j.relevant_head = 4
        j.relevant_tail = 6
        j.irrelevant = 10
        return j

    def test_totals(self):
        j = self._judged()
        assert j.total == 20
        assert j.relevant == 10

    def test_rp_hp(self):
        j = self._judged()
        assert j.rp == pytest.approx(0.5)
        assert j.hp == pytest.approx(0.2)

    def test_zero_division_safe(self):
        j = JudgedPredictions(model="empty")
        assert j.rp == 0.0 and j.hp == 0.0

    def test_averages_per_item(self):
        j = self._judged()
        avg = j.averages_per_item()
        assert avg == {"relevant_head": 2.0, "relevant_tail": 3.0,
                       "irrelevant": 5.0}

    def test_rrr_rhr(self):
        a, b = self._judged(), self._judged()
        b.relevant_tail = 1  # b.relevant = 5
        assert relative_relevant_ratio(a, b) == pytest.approx(2.0)
        assert relative_head_ratio(a, b) == pytest.approx(1.0)

    def test_rrr_zero_reference(self):
        a = self._judged()
        empty = JudgedPredictions(model="empty")
        assert relative_relevant_ratio(a, empty) == 0.0
        assert relative_head_ratio(a, empty) == 0.0


class TestJudgeModelPredictions:
    def test_counts_and_per_item(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        judge = OracleJudge(catalog)
        item = catalog.items[0]
        product = catalog.product_of_item(item.item_id)
        relevant_text = f"{product.brand} {product.ptype[-1]}"
        head = HeadClassifier({relevant_text: 100, "x": 1, "y": 1,
                               "z": 1, "w": 1})
        judged = judge_model_predictions(
            "test",
            {item.item_id: [relevant_text, "garbage query"]},
            {item.item_id: item.title},
            judge, head)
        assert judged.relevant == 1
        assert judged.relevant_head == 1
        assert judged.irrelevant == 1
        triples = judged.per_item[item.item_id]
        assert triples[0] == (relevant_text, True, True)
        assert triples[1][1] is False


class TestPrecisionRecall:
    def test_perfect(self):
        preds = {1: ["a", "b"]}
        truth = {1: ["a", "b"]}
        assert precision_recall(preds, truth) == (1.0, 1.0)

    def test_half_precision(self):
        preds = {1: ["a", "x"]}
        truth = {1: ["a", "b"]}
        p, r = precision_recall(preds, truth)
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(0.5)

    def test_items_without_truth_hurt_precision_only(self):
        preds = {1: ["a"], 2: ["b"]}
        truth = {1: ["a"]}
        p, r = precision_recall(preds, truth)
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(1.0)

    def test_empty(self):
        assert precision_recall({}, {}) == (0.0, 0.0)

    @given(st.dictionaries(st.integers(0, 5),
                           st.lists(st.sampled_from("abcdef"), max_size=4),
                           max_size=5))
    def test_bounds(self, preds):
        truth = {1: ["a", "b"], 2: ["c"]}
        p, r = precision_recall(preds, truth)
        assert 0.0 <= p <= 1.0
        assert 0.0 <= r <= 1.0


def _judged_with(model, per_item):
    """Build a JudgedPredictions from item -> (text, rel, head) triples."""
    j = JudgedPredictions(model=model, n_items=len(per_item))
    for item_id, triples in per_item.items():
        j.per_item[item_id] = triples
        for _text, rel, head in triples:
            if rel and head:
                j.relevant_head += 1
            elif rel:
                j.relevant_tail += 1
            else:
                j.irrelevant += 1
    return j


class TestDiversity:
    def test_exclusive_counts(self):
        judged = {
            "A": _judged_with("A", {1: [("x", True, True),
                                        ("shared", True, True)]}),
            "B": _judged_with("B", {1: [("shared", True, True),
                                        ("y", True, True)]}),
        }
        counts = exclusive_relevant_head_counts(judged)
        assert counts == {"A": 1.0, "B": 1.0}

    def test_irrelevant_or_tail_never_counted(self):
        judged = {
            "A": _judged_with("A", {1: [("x", False, False),
                                        ("t", True, False)]}),
            "B": _judged_with("B", {1: []}),
        }
        counts = exclusive_relevant_head_counts(judged)
        assert counts["A"] == 0.0

    def test_exclusivity_is_vs_all_predictions_not_just_relevant(self):
        """A keyphrase predicted (even irrelevantly) by another model is
        not exclusive — Figure 5 overlaps are by keyphrase, not verdict."""
        judged = {
            "A": _judged_with("A", {1: [("x", True, True)]}),
            "B": _judged_with("B", {1: [("x", False, False)]}),
        }
        counts = exclusive_relevant_head_counts(judged)
        assert counts["A"] == 0.0

    def test_diversity_ratios_reference(self):
        judged = {
            "GraphEx": _judged_with("GraphEx",
                                    {1: [("a", True, True),
                                         ("b", True, True)]}),
            "other": _judged_with("other", {1: [("c", True, True)]}),
        }
        ratios = diversity_ratios(judged)
        assert ratios == {"other": 2.0}

    def test_zero_division_gives_inf(self):
        judged = {
            "GraphEx": _judged_with("GraphEx", {1: [("a", True, True)]}),
            "other": _judged_with("other", {1: []}),
        }
        assert diversity_ratios(judged)["other"] == float("inf")

    def test_unknown_reference_raises(self):
        judged = {"other": _judged_with("other", {1: []})}
        with pytest.raises(KeyError):
            diversity_ratios(judged)


class TestReporting:
    def test_format_cell(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(3) == "3"
        assert format_cell(True) == "yes"
        assert format_cell("x") == "x"

    def test_render_table_alignment(self):
        table = render_table(["name", "value"],
                             [["graphex", 1.0], ["re", 0.5]],
                             title="Demo")
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_render_markdown(self):
        md = render_markdown(["a"], [[1.5]])
        assert md.splitlines()[0] == "| a |"
        assert "| 1.500 |" in md

    def test_render_bar_chart(self):
        chart = render_bar_chart(["a", "b"], [2.0, 1.0], title="T",
                                 width=10)
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_bar_chart_zero_values(self):
        chart = render_bar_chart(["a"], [0.0])
        assert "#" not in chart

    def test_bar_chart_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])
