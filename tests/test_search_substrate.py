"""Tests for the search substrate: engine, clicks, sessions, logs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import Item
from repro.search import (
    ClickModel,
    ClickModelConfig,
    SearchEngine,
    SearchLog,
    SessionSimulator,
    click_sparsity,
)
from repro.search.logs import ClickEvent


def make_items():
    return [
        Item(item_id=1, product_id=1, leaf_id=100,
             title="audeze maxwell gaming headphones"),
        Item(item_id=2, product_id=2, leaf_id=100,
             title="klaro wireless headphones blue"),
        Item(item_id=3, product_id=3, leaf_id=101,
             title="nimbus gaming laptop 16gb ram"),
    ]


class TestSearchEngine:
    def test_full_match_ranks_first(self):
        engine = SearchEngine(make_items(), seed=1, popularity_weight=0.0)
        results = engine.search(["audeze", "maxwell"])
        assert results[0].item_id == 1

    def test_partial_match_included(self):
        engine = SearchEngine(make_items(), seed=1)
        ids = {r.item_id for r in engine.search(["headphones"])}
        assert ids == {1, 2}

    def test_no_match_returns_empty(self):
        engine = SearchEngine(make_items(), seed=1)
        assert engine.search(["zzz"]) == []

    def test_positions_are_sequential(self):
        engine = SearchEngine(make_items(), seed=1)
        results = engine.search(["headphones", "gaming"])
        assert [r.position for r in results] == list(range(len(results)))

    def test_top_k_respected(self):
        engine = SearchEngine(make_items(), seed=1)
        assert len(engine.search(["headphones"], top_k=1)) == 1

    def test_recall_count_is_strict_and(self):
        engine = SearchEngine(make_items(), seed=1)
        assert engine.recall_count(["gaming", "headphones"]) == 1
        assert engine.recall_count(["headphones"]) == 2
        assert engine.recall_count(["zzz"]) == 0

    def test_stopwords_ignored(self):
        engine = SearchEngine(make_items(), seed=1)
        assert engine.recall_count(["gaming", "for", "headphones"]) == 1

    def test_assign_leaf_is_top_items_leaf(self):
        engine = SearchEngine(make_items(), seed=1)
        assert engine.assign_leaf(["gaming", "laptop"]) == 101
        assert engine.assign_leaf(["zzz"]) is None

    def test_popularity_feedback_changes_ranking(self):
        engine = SearchEngine(make_items(), seed=1, popularity_weight=1.0)
        baseline = engine.search(["headphones"])
        loser = baseline[-1].item_id
        for _ in range(200):
            engine.record_click(loser)
        boosted = engine.search(["headphones"])
        assert boosted[0].item_id == loser

    def test_reset_popularity(self):
        engine = SearchEngine(make_items(), seed=1)
        engine.record_click(1, 5.0)
        assert engine.popularity_of(1) == 5.0
        engine.reset_popularity()
        assert engine.popularity_of(1) == 0.0

    def test_click_on_unknown_item_is_noop(self):
        engine = SearchEngine(make_items(), seed=1)
        engine.record_click(999)
        assert engine.popularity_of(999) == 0.0

    def test_deterministic_given_seed(self):
        a = SearchEngine(make_items(), seed=9).search(["headphones"])
        b = SearchEngine(make_items(), seed=9).search(["headphones"])
        assert [r.item_id for r in a] == [r.item_id for r in b]


class TestClickModel:
    def _model(self, dataset, **kwargs):
        return ClickModel(dataset.catalog,
                          ClickModelConfig(**kwargs), seed=3)

    def test_position_bias_decreasing(self, tiny_dataset):
        model = self._model(tiny_dataset)
        biases = [model.position_bias(p) for p in range(10)]
        assert biases == sorted(biases, reverse=True)

    def test_relevant_clicks_more_likely(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        model = self._model(tiny_dataset)
        item = catalog.items[0]
        product = catalog.product_of_item(item.item_id)
        relevant_q = [product.brand, product.ptype[-1]]
        irrelevant_q = ["completely", "unrelated"]
        p_rel = model.click_probability(item.item_id, relevant_q, 0)
        p_irr = model.click_probability(item.item_id, irrelevant_q, 0)
        assert p_rel > p_irr > 0

    def test_probability_bounded(self, tiny_dataset):
        model = self._model(tiny_dataset, base_click_rate=50.0)
        item = tiny_dataset.catalog.items[0]
        assert model.click_probability(item.item_id, ["x"], 0) <= 1.0

    def test_sample_clicks_zero_impressions(self, tiny_dataset):
        model = self._model(tiny_dataset)
        assert model.sample_clicks(1, ["x"], 0, 0) == 0

    def test_sample_clicks_bounded_by_impressions(self, tiny_dataset):
        model = self._model(tiny_dataset)
        item = tiny_dataset.catalog.items[0]
        product = tiny_dataset.catalog.product_of_item(item.item_id)
        clicks = model.sample_clicks(
            item.item_id, [product.ptype[-1]], 0, 50)
        assert 0 <= clicks <= 50


class TestSessionSimulator:
    def test_run_produces_searches_and_clicks(self, tiny_log):
        assert tiny_log.total_searches == 20_000
        assert len(tiny_log.clicks) > 0

    def test_click_days_inside_window(self, tiny_log):
        for click in tiny_log.clicks[:500]:
            assert 1 <= click.day <= 180

    def test_invalid_window_raises(self, tiny_dataset):
        sim = SessionSimulator(tiny_dataset.catalog, tiny_dataset.queries)
        with pytest.raises(ValueError):
            sim.run(10, day_start=5, day_end=4)

    def test_invalid_rounds_raises(self, tiny_dataset):
        sim = SessionSimulator(tiny_dataset.catalog, tiny_dataset.queries)
        with pytest.raises(ValueError):
            sim.run(10, day_start=1, day_end=2, rounds=0)

    def test_deterministic_given_seed(self, tiny_dataset):
        log_a = SessionSimulator(
            tiny_dataset.catalog, tiny_dataset.queries, seed=99).run(
            2000, 1, 30)
        log_b = SessionSimulator(
            tiny_dataset.catalog, tiny_dataset.queries, seed=99).run(
            2000, 1, 30)
        assert log_a.search_counts == log_b.search_counts
        assert len(log_a.clicks) == len(log_b.clicks)

    def test_recall_counts_recorded_for_searched_queries(self, tiny_log):
        assert set(tiny_log.recall_counts) >= set(tiny_log.search_counts)

    def test_clicked_queries_have_searches(self, tiny_log):
        searched = {text for (_leaf, text) in tiny_log.search_counts}
        clicked = {c.query_text for c in tiny_log.clicks}
        assert clicked <= searched


class TestSearchLog:
    def _log(self):
        log = SearchLog(day_start=1, day_end=60)
        log.search_counts = {(1, "a b"): 50, (1, "c"): 5, (2, "a b"): 8}
        log.recall_counts = {(1, "a b"): 10, (1, "c"): 3, (2, "a b"): 2}
        log.clicks = [
            ClickEvent(day=10, query_text="a b", leaf_id=1, item_id=7,
                       position=0),
            ClickEvent(day=55, query_text="a b", leaf_id=1, item_id=7,
                       position=1),
            ClickEvent(day=58, query_text="c", leaf_id=1, item_id=8,
                       position=0),
        ]
        return log

    def test_keyphrase_stats(self):
        stats = {(s.leaf_id, s.text): s for s in self._log().keyphrase_stats()}
        assert stats[(1, "a b")].search_count == 50
        assert stats[(1, "a b")].recall_count == 10
        assert len(stats) == 3

    def test_item_query_pairs(self):
        pairs = self._log().item_query_pairs()
        assert pairs[7] == {"a b": 2}
        assert pairs[8] == {"c": 1}

    def test_item_query_pairs_day_window(self):
        pairs = self._log().item_query_pairs(min_day=50)
        assert pairs[7] == {"a b": 1}

    def test_item_query_pairs_min_clicks(self):
        pairs = self._log().item_query_pairs(min_clicks=2)
        assert 8 not in pairs
        assert pairs[7] == {"a b": 2}

    def test_queries_per_item_histogram(self):
        hist = self._log().queries_per_item_histogram()
        assert hist == {1: 2}

    def test_clicked_item_ids(self):
        assert self._log().clicked_item_ids() == [7, 8]

    def test_search_count_lookup(self):
        log = self._log()
        assert log.search_count(1, "a b") == 50
        assert log.search_count(9, "nope") == 0

    def test_merged_with(self):
        log = self._log()
        other = SearchLog(day_start=61, day_end=75)
        other.search_counts = {(1, "a b"): 7}
        other.clicks = [ClickEvent(day=62, query_text="a b", leaf_id=1,
                                   item_id=9, position=0)]
        merged = log.merged_with(other)
        assert merged.day_start == 1 and merged.day_end == 75
        assert merged.search_counts[(1, "a b")] == 57
        assert len(merged.clicks) == 4

    def test_n_days(self):
        assert self._log().n_days == 60

    def test_click_sparsity_summary(self):
        summary = click_sparsity(self._log(), n_items_total=100)
        assert summary["frac_items_without_clicks"] == pytest.approx(0.98)
        assert summary["frac_clicked_items_single_query"] == 1.0

    def test_click_sparsity_empty(self):
        log = SearchLog(day_start=1, day_end=2)
        summary = click_sparsity(log, n_items_total=0)
        assert summary["frac_clicked_items_single_query"] == 0.0
