"""Tests for the synthetic e-commerce substrate (repro.data)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    COLLECTIBLES,
    ELECTRONICS,
    HOME_GARDEN,
    META_LEXICONS,
    QUERY_STOPWORDS,
    TINY_PROFILE,
    DatasetProfile,
    build_catalog,
    build_query_universe,
    generate_dataset,
)
from repro.data.catalog import CategoryTree
from repro.data.relevance import oracle_relevant


class TestLexicon:
    def test_three_meta_categories(self):
        assert set(META_LEXICONS) == {"CAT_1", "CAT_2", "CAT_3"}

    def test_size_ordering_large_medium_small(self):
        """CAT 1 > CAT 2 > CAT 3 in leaf count, as in Table II's spirit."""
        assert len(ELECTRONICS.leaves) > len(HOME_GARDEN.leaves) \
            > len(COLLECTIBLES.leaves)

    def test_leaf_lookup(self):
        leaf = ELECTRONICS.leaf("headphones")
        assert "audeze" in leaf.brands

    def test_leaf_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            ELECTRONICS.leaf("spaceships")

    def test_every_leaf_has_brands_and_types(self):
        for meta in META_LEXICONS.values():
            for leaf in meta.leaves:
                assert leaf.brands
                assert leaf.product_types
                assert leaf.attributes

    def test_attribute_values_are_token_tuples(self):
        for meta in META_LEXICONS.values():
            for leaf in meta.leaves:
                for values in leaf.attributes.values():
                    assert all(isinstance(v, tuple) for v in values)


class TestCategoryTree:
    def test_leaf_ids_globally_unique(self):
        tree = CategoryTree([ELECTRONICS, HOME_GARDEN, COLLECTIBLES])
        ids = [leaf.leaf_id for leaf in tree]
        assert len(ids) == len(set(ids))

    def test_lookup_by_id_and_name(self):
        tree = CategoryTree([ELECTRONICS])
        leaf = tree.leaf_by_name("laptops")
        assert tree.leaf_by_id(leaf.leaf_id).name == "laptops"

    def test_leaves_of_meta(self):
        tree = CategoryTree([ELECTRONICS, HOME_GARDEN])
        assert len(tree.leaves_of("CAT_1")) == len(ELECTRONICS.leaves)
        assert tree.metas == ["CAT_1", "CAT_2"]


class TestCatalog:
    def test_deterministic_for_same_seed(self):
        a = build_catalog([COLLECTIBLES], {"CAT_3": 100}, seed=5)
        b = build_catalog([COLLECTIBLES], {"CAT_3": 100}, seed=5)
        assert [it.title for it in a.items] == [it.title for it in b.items]

    def test_different_seeds_differ(self):
        a = build_catalog([COLLECTIBLES], {"CAT_3": 100}, seed=5)
        b = build_catalog([COLLECTIBLES], {"CAT_3": 100}, seed=6)
        assert [it.title for it in a.items] != [it.title for it in b.items]

    def test_item_count_close_to_target(self):
        catalog = build_catalog([COLLECTIBLES], {"CAT_3": 200}, seed=5)
        assert len(catalog.items) == pytest.approx(200, rel=0.15)

    def test_every_item_has_a_product(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        for item in catalog.items[:200]:
            product = catalog.product_of_item(item.item_id)
            assert product.leaf_id == item.leaf_id

    def test_titles_contain_brand_and_type_head(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        for item in catalog.items[:100]:
            product = catalog.product_of_item(item.item_id)
            tokens = set(item.title_tokens)
            assert product.brand in tokens
            assert product.model in tokens

    def test_items_in_leaf_partition_items_in_meta(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        meta_items = catalog.items_in_meta("CAT_1")
        by_leaf = sum(
            len(catalog.items_in_leaf(leaf.leaf_id))
            for leaf in catalog.tree.leaves_of("CAT_1"))
        assert len(meta_items) == by_leaf

    def test_concept_tokens_superset_of_core_fields(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        for product in catalog.products[:100]:
            assert product.brand in product.concept_tokens
            assert product.model in product.concept_tokens
            for token in product.ptype:
                assert token in product.concept_tokens

    def test_multiple_listings_per_product_exist(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        product_ids = [it.product_id for it in catalog.items]
        assert len(product_ids) > len(set(product_ids))


class TestQueryUniverse:
    def test_deterministic(self, tiny_dataset):
        again = build_query_universe(
            tiny_dataset.catalog,
            [META_LEXICONS[m] for m in tiny_dataset.profile.items_per_meta],
            seed=TINY_PROFILE.query_seed)
        assert sorted(q.text for q in again) \
            == sorted(q.text for q in tiny_dataset.queries)

    def test_queries_have_positive_weight(self, tiny_dataset):
        assert all(q.weight > 0 for q in tiny_dataset.queries)

    def test_no_stopwords_in_templated_queries(self, tiny_dataset):
        for query in tiny_dataset.queries:
            if query.origin_product_id:  # bogus queries may contain typos
                assert not set(query.tokens) & QUERY_STOPWORDS

    def test_in_leaf_and_in_meta_consistent(self, tiny_dataset):
        universe = tiny_dataset.queries
        leaf = tiny_dataset.catalog.tree.leaf_by_name("headphones")
        for query in universe.in_leaf(leaf.leaf_id)[:50]:
            assert query in universe.in_meta("CAT_1")

    def test_head_tail_skew(self, tiny_dataset):
        """Top 10% of queries should carry the majority of search weight."""
        weights = sorted((q.weight for q in tiny_dataset.queries),
                         reverse=True)
        top_decile = sum(weights[:len(weights) // 10])
        assert top_decile > 0.5 * sum(weights)

    def test_bogus_queries_present_with_tiny_weight(self, tiny_dataset):
        bogus = [q for q in tiny_dataset.queries
                 if q.origin_product_id == 0]
        assert bogus
        assert all(q.weight == 1.0 for q in bogus)

    def test_generic_head_query_exists(self, tiny_dataset):
        leaf = tiny_dataset.catalog.tree.leaf_by_name("headphones")
        texts = {q.text for q in tiny_dataset.queries.in_leaf(leaf.leaf_id)}
        assert "headphones" in texts


class TestOracleRelevance:
    def test_brand_type_query_is_relevant(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        product = catalog.products[0]
        query = [product.brand, product.ptype[-1]]
        assert oracle_relevant(product, query)

    def test_wrong_brand_is_irrelevant(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        product = catalog.products[0]
        assert not oracle_relevant(
            product, ["definitelynotabrand", product.ptype[-1]])

    def test_stopwords_do_not_affect_relevance(self, tiny_dataset):
        product = tiny_dataset.catalog.products[0]
        base = [product.brand, product.ptype[-1]]
        assert oracle_relevant(product, base + ["for"])

    def test_stopword_only_query_is_irrelevant(self, tiny_dataset):
        assert not oracle_relevant(
            tiny_dataset.catalog.products[0], ["for", "with"])

    def test_empty_query_is_irrelevant(self, tiny_dataset):
        assert not oracle_relevant(tiny_dataset.catalog.products[0], [])

    def test_templated_queries_relevant_to_their_origin(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        checked = 0
        for query in tiny_dataset.queries:
            if not query.origin_product_id:
                continue
            product = catalog.product(query.origin_product_id)
            assert oracle_relevant(product, query.tokens), query.text
            checked += 1
            if checked >= 200:
                break
        assert checked == 200


class TestGenerator:
    def test_profiles_reproduce(self):
        a = generate_dataset(TINY_PROFILE)
        b = generate_dataset(TINY_PROFILE)
        assert [it.title for it in a.catalog.items] \
            == [it.title for it in b.catalog.items]

    def test_metas_match_profile(self, tiny_dataset):
        assert tiny_dataset.metas == list(
            TINY_PROFILE.items_per_meta)

    def test_custom_profile(self):
        profile = DatasetProfile(
            name="custom", items_per_meta={"CAT_3": 60}, seed=3)
        dataset = generate_dataset(profile)
        assert dataset.metas == ["CAT_3"]
        assert profile.total_items == 60
