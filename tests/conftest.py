"""Shared fixtures: the paper's Figure 3 example and a tiny simulated world.

Session-scoped fixtures keep the suite fast: the tiny dataset and its
search log are simulated once and shared read-only across test modules.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.model import GraphExModel
from repro.data import TINY_PROFILE, generate_dataset
from repro.search import SessionSimulator

settings.register_profile(
    "fast", max_examples=25,
    suppress_health_check=[HealthCheck.too_slow], deadline=None)
settings.load_profile("fast")

#: Figure 3 of the paper: (keyphrase, search count, recall count).
#: Search counts are chosen so the illustrated search-volume ranking holds.
FIG3_KEYPHRASES = [
    ("audeze maxwell", 500, 40),
    ("audeze headphones", 400, 120),
    ("gaming headphones xbox", 900, 300),
    ("wireless headphones xbox", 700, 260),
    ("bluetooth wireless headphones", 800, 350),
]

#: The worked inference example of Section III-E1.
FIG3_TITLE = "audeze maxwell gaming headphones for xbox"
FIG3_LEAF_ID = 100


def build_fig3_curated() -> CuratedKeyphrases:
    """The Figure 3 keyphrase set as a curation output."""
    leaf = CuratedLeaf(leaf_id=FIG3_LEAF_ID)
    for text, search, recall in FIG3_KEYPHRASES:
        leaf.add(text, search, recall)
    return CuratedKeyphrases(
        leaves={FIG3_LEAF_ID: leaf},
        effective_threshold=1,
        config=CurationConfig(min_search_count=1),
    )


@pytest.fixture(scope="session")
def fig3_curated() -> CuratedKeyphrases:
    """Curated keyphrases of the Figure 3 illustration."""
    return build_fig3_curated()


@pytest.fixture(scope="session")
def fig3_model(fig3_curated) -> GraphExModel:
    """GraphEx model constructed from the Figure 3 keyphrases."""
    return GraphExModel.construct(fig3_curated)


def build_fig3_variant_curated() -> CuratedKeyphrases:
    """A "day 2" variant of the Figure 3 world: one keyphrase gained
    traction overnight.  Its model serves *different* output for the
    Figure 3 title than the base model, so hot-swap tests can tell
    which model produced a given result."""
    leaf = CuratedLeaf(leaf_id=FIG3_LEAF_ID)
    for text, search, recall in FIG3_KEYPHRASES:
        leaf.add(text, search, recall)
    leaf.add("gaming headphones", 950, 320)
    return CuratedKeyphrases(
        leaves={FIG3_LEAF_ID: leaf},
        effective_threshold=1,
        config=CurationConfig(min_search_count=1),
    )


@pytest.fixture(scope="session")
def fig3_variant_model() -> GraphExModel:
    """The refreshed "day 2" model of :func:`build_fig3_variant_curated`."""
    return GraphExModel.construct(build_fig3_variant_curated())


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small deterministic synthetic dataset (catalog + queries)."""
    return generate_dataset(TINY_PROFILE)


@pytest.fixture(scope="session")
def tiny_log(tiny_dataset):
    """A simulated training-window search log over the tiny dataset."""
    simulator = SessionSimulator(
        tiny_dataset.catalog, tiny_dataset.queries, seed=71)
    return simulator.run(20_000, day_start=1, day_end=180, rounds=3)


@pytest.fixture(scope="session")
def tiny_test_log(tiny_dataset, tiny_log):
    """A disjoint 15-day test-window log (shares nothing with tiny_log)."""
    simulator = SessionSimulator(
        tiny_dataset.catalog, tiny_dataset.queries, seed=72)
    return simulator.run(4_000, day_start=181, day_end=195, rounds=1)


@pytest.fixture(scope="session")
def tiny_curated(tiny_log):
    """Curated keyphrases from the tiny log."""
    from repro.core.curation import curate
    return curate(tiny_log.keyphrase_stats(),
                  CurationConfig(min_search_count=3, min_keyphrases=50,
                                 floor_search_count=2))


@pytest.fixture(scope="session")
def tiny_model(tiny_curated) -> GraphExModel:
    """GraphEx model over the tiny world."""
    return GraphExModel.construct(tiny_curated)
