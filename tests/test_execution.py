"""Tests for the unified execution plane (ISSUE 8).

Covers the :mod:`repro.core.execution` subsystem bottom-up: the
CostModel value object (decay folds, JSON round-trip, merge, proxy
fallback), the resolver behind every ``executor=``/legacy ``parallel=``
keyword, observed-cost feedback into :class:`ShardPlan` (plans change on
a skewed world, outputs do not), orphan re-planning cost preservation,
and the headline cross-executor equivalence contract: any workload on
any substrate — serial oracle, thread fan-out, worker processes, or a
localhost cluster with injected faults — serves element-wise identical
results and builds bit-identical models.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (ClusterCoordinator, ClusterWorker, RetryPolicy)
from repro.core.batch import batch_recommend
from repro.core.curation import (CuratedKeyphrases, CuratedLeaf,
                                 CurationConfig)
from repro.core.execution import (EXECUTOR_NAMES, ClusterExecutor,
                                  CostModel, Executor,
                                  ProcessShardExecutor, SerialExecutor,
                                  ThreadShardExecutor,
                                  plan_rebalance_gain, resolve_executor)
from repro.core.fast_inference import LeafBatchRunner
from repro.core.model import GraphExModel
from repro.core.sharding import (PARALLEL_MODES, POOLED_GROUP, ShardPlan,
                                 validate_parallel)


# ---------------------------------------------------------------------------
# World fixtures: a skewed multi-leaf catalog with a pooled fallback


def build_curated(sizes=(14, 3, 3, 2, 2)) -> CuratedKeyphrases:
    """Leaves of deliberately skewed sizes (leaf 1 dominates)."""
    leaves = {}
    for leaf_index, n_phrases in enumerate(sizes, start=1):
        leaf = CuratedLeaf(leaf_id=leaf_index)
        for j in range(n_phrases):
            leaf.add(f"leaf{leaf_index} word{j} thing extra", 6 + j,
                     2 + (j % 3))
        leaves[leaf_index] = leaf
    return CuratedKeyphrases(leaves=leaves, effective_threshold=1,
                             config=CurationConfig(min_search_count=1))


@pytest.fixture(scope="module")
def curated():
    return build_curated()


@pytest.fixture(scope="module")
def model(curated):
    return GraphExModel.construct(curated, build_pooled=True)


@pytest.fixture(scope="module")
def requests(model):
    """Known leaves, the pooled fallback, and a duplicate item id."""
    out = []
    for i in range(24):
        leaf_id = 1 + (i % model.n_leaves)
        out.append((i, f"word{i % 5} leaf{leaf_id} thing", leaf_id))
    out.append((100, "leaf1 word0 thing", 999))   # pooled fallback
    out.append((3, "leaf2 word1 thing", 2))       # duplicate id: last wins
    return out


@pytest.fixture(scope="module")
def expected(model, requests):
    return SerialExecutor().run_inference(model, requests, k=5)


def assert_leaf_graphs_identical(reference, fast):
    assert fast.leaf_id == reference.leaf_id
    assert fast.word_vocab.tokens == reference.word_vocab.tokens
    assert np.array_equal(fast.graph.indptr, reference.graph.indptr)
    assert np.array_equal(fast.graph.indices, reference.graph.indices)
    assert fast.graph.n_right == reference.graph.n_right
    assert fast.label_texts == reference.label_texts
    assert np.array_equal(fast.label_lengths, reference.label_lengths)
    assert np.array_equal(fast.search_counts, reference.search_counts)
    assert np.array_equal(fast.recall_counts, reference.recall_counts)


def assert_models_identical(reference, fast):
    assert fast.leaf_ids == reference.leaf_ids
    for leaf_id in reference.leaf_ids:
        assert_leaf_graphs_identical(reference.leaf_graph(leaf_id),
                                     fast.leaf_graph(leaf_id))
    assert (fast.pooled_graph is None) == (reference.pooled_graph is None)
    if reference.pooled_graph is not None:
        assert_leaf_graphs_identical(reference.pooled_graph,
                                     fast.pooled_graph)


# ---------------------------------------------------------------------------
# CostModel


class TestCostModel:
    def test_first_observation_sets_rate(self):
        cost_model = CostModel()
        cost_model.observe_inference(7, seconds=0.5, units=10)
        assert cost_model.n_observations() == 1
        assert cost_model.n_observations("inference") == 1
        assert cost_model.n_observations("construction") == 0
        assert cost_model.has_observations("inference")
        assert not cost_model.has_observations("construction")
        [(key, cost)] = cost_model.inference_costs([(7, 10)])
        assert key == 7
        assert cost == round(0.05 * 10 * 1_000_000)

    def test_observations_decay_fold(self):
        cost_model = CostModel(decay=0.7)
        cost_model.observe_construction(1, seconds=1.0, units=1)
        cost_model.observe_construction(1, seconds=3.0, units=1)
        [(_, cost)] = cost_model.construction_costs([(1, 1)])
        # 0.7 * 1.0 + 0.3 * 3.0 = 1.6 seconds/unit
        assert cost == round(1.6 * 1_000_000)
        assert cost_model.n_observations("construction") == 2

    def test_empty_kind_passes_proxy_through(self):
        cost_model = CostModel()
        proxy = [(1, 5), (2, 4), (POOLED_GROUP, 3)]
        assert cost_model.inference_costs(proxy) == proxy
        cost_model.observe_construction(1, 0.1, 10)
        # Construction observations must not leak into inference plans.
        assert cost_model.inference_costs(proxy) == proxy

    def test_unobserved_key_uses_mean_rate(self):
        cost_model = CostModel()
        cost_model.observe_inference(1, seconds=0.2, units=1)
        cost_model.observe_inference(2, seconds=0.4, units=1)
        costs = dict(cost_model.inference_costs([(1, 1), (2, 1), (3, 2)]))
        assert costs[3] == round(0.3 * 2 * 1_000_000)

    def test_costs_are_positive_ints(self):
        """ShardPlan.from_json strictness: costs must be ints >= 1."""
        cost_model = CostModel()
        cost_model.observe_inference(1, seconds=0.0, units=1)
        costs = cost_model.inference_costs([(1, 1), (2, 0)])
        assert all(isinstance(cost, int) and cost >= 1
                   for _key, cost in costs)

    def test_json_round_trip_exact(self):
        cost_model = CostModel(decay=0.6)
        cost_model.observe_inference(7, 0.123456, 3)
        cost_model.observe_inference(POOLED_GROUP, 0.5, 2)
        cost_model.observe_construction(7, 1.75, 40)
        cost_model.observe_construction("leaf-x", 0.25, 9)
        restored = CostModel.from_json(cost_model.to_json())
        assert restored == cost_model
        # Exactness is what makes the daily hand-off deterministic: the
        # restored model re-costs a proxy identically.
        proxy = [(7, 3), (POOLED_GROUP, 2), (11, 1)]
        assert restored.inference_costs(proxy) == \
            cost_model.inference_costs(proxy)

    def test_json_payload_shape(self):
        cost_model = CostModel()
        cost_model.observe_inference(5, 0.1, 2)
        payload = json.loads(cost_model.to_json())
        assert payload["decay"] == 0.7
        assert set(payload) == {"decay", "inference", "construction"}
        assert payload["inference"]["5"] == [0.05, 1]

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError, match="not JSON"):
            CostModel.from_json("{nope")
        with pytest.raises(ValueError, match="'decay'"):
            CostModel.from_json("[]")
        with pytest.raises(ValueError, match="rate, count"):
            CostModel.from_json(
                '{"decay": 0.7, "inference": {"1": [0.5]}}')

    def test_merge_copies_one_sided_keys(self):
        mine, theirs = CostModel(), CostModel()
        theirs.observe_inference(1, 0.5, 1)
        mine.merge(theirs)
        assert mine.inference_costs([(1, 1)]) == \
            theirs.inference_costs([(1, 1)])
        assert mine.n_observations() == 1

    def test_merge_decays_shared_keys(self):
        mine, theirs = CostModel(decay=0.5), CostModel(decay=0.5)
        mine.observe_inference(1, 1.0, 1)       # rate 1.0, count 1
        theirs.observe_inference(1, 3.0, 1)     # rate 3.0, count 1
        mine.merge(theirs)
        # old_weight = 1 * 0.5; rate = (1.0*0.5 + 3.0*1) / 1.5
        [(_, cost)] = mine.inference_costs([(1, 1)])
        assert cost == round((0.5 + 3.0) / 1.5 * 1_000_000)
        assert mine.n_observations() == 2

    def test_invalid_decay_and_kind_rejected(self):
        with pytest.raises(ValueError, match="decay"):
            CostModel(decay=1.0)
        with pytest.raises(ValueError, match="decay"):
            CostModel(decay=-0.1)
        cost_model = CostModel()
        with pytest.raises(ValueError, match="unknown cost kind"):
            cost_model.observe("gpu", 1, 0.1)
        with pytest.raises(ValueError, match="unknown cost kind"):
            cost_model.costs("gpu", [(1, 1)])


class TestPlanRebalanceGain:
    def test_none_without_comparison(self):
        proxy = [(1, 5), (2, 5)]
        assert plan_rebalance_gain(None, proxy, 2) is None
        empty = CostModel()
        assert plan_rebalance_gain(empty, proxy, 2) is None
        observed = CostModel()
        observed.observe_construction(1, 0.5, 5)
        assert plan_rebalance_gain(observed, proxy, 1) is None
        assert plan_rebalance_gain(observed, [(1, 5)], 2) is None

    def test_skewed_observations_show_gain(self):
        """Equal proxies, skewed reality: the proxy plan pairs the two
        slow keys onto one shard; the observed plan separates them."""
        cost_model = CostModel()
        for key, rate in ((1, 1.0), (2, 0.1), (3, 1.0), (4, 0.1)):
            cost_model.observe_construction(key, rate, 1)
        proxy = [(1, 1), (2, 1), (3, 1), (4, 1)]
        gain = plan_rebalance_gain(cost_model, proxy, 2)
        assert gain is not None and gain > 1.5

    def test_balanced_observations_no_gain(self):
        cost_model = CostModel()
        for key in (1, 2, 3, 4):
            cost_model.observe_construction(key, 1.0, 1)
        gain = plan_rebalance_gain(
            cost_model, [(1, 1), (2, 1), (3, 1), (4, 1)], 2)
        assert gain == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# The resolver (satellite 1: every legacy spelling keeps working)


class TestResolveExecutor:
    def test_default_is_thread(self):
        executor = resolve_executor()
        assert isinstance(executor, ThreadShardExecutor)
        assert executor.name == "thread"
        assert executor.workers == 1

    def test_names_resolve_to_matching_classes(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread", workers=3),
                          ThreadShardExecutor)
        process = resolve_executor("process", workers=3)
        assert isinstance(process, ProcessShardExecutor)
        assert process.workers == 3

    def test_legacy_parallel_spellings(self):
        for mode in PARALLEL_MODES:
            executor = resolve_executor(parallel=mode, workers=2)
            assert executor.name == mode

    def test_instance_passes_through(self):
        mine = ThreadShardExecutor(4)
        assert resolve_executor(mine) is mine
        assert resolve_executor(mine, workers=9) is mine

    def test_executor_plus_parallel_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_executor("serial", parallel="thread")

    def test_unknown_spelling_names_the_accepted_ones(self):
        with pytest.raises(ValueError, match="unknown parallel mode"):
            resolve_executor("fiber")
        with pytest.raises(ValueError, match="serial"):
            resolve_executor("fiber")

    def test_cluster_needs_a_coordinator(self):
        with pytest.raises(ValueError, match="ClusterCoordinator"):
            resolve_executor("cluster")

    def test_reference_engine_needs_in_process_executor(self):
        resolve_executor("serial", engine="reference")
        resolve_executor("thread", engine="reference")
        with pytest.raises(ValueError, match="semantics reference"):
            resolve_executor("process", engine="reference")

    def test_cost_model_is_threaded_through(self):
        cost_model = CostModel()
        executor = resolve_executor("thread", cost_model=cost_model)
        assert executor.cost_model is cost_model

    def test_validate_parallel_delegates(self):
        for name in EXECUTOR_NAMES[:3]:
            validate_parallel(name)
        with pytest.raises(ValueError, match="unknown parallel mode"):
            validate_parallel("fiber")

    def test_batch_recommend_rejects_both_spellings(self, model,
                                                    requests):
        with pytest.raises(ValueError, match="not both"):
            batch_recommend(model, requests, executor="serial",
                            parallel="thread")

    def test_batch_recommend_legacy_parallel(self, model, requests,
                                             expected):
        assert batch_recommend(model, requests, k=5,
                               parallel="thread", workers=2) == expected


# ---------------------------------------------------------------------------
# Observed-cost feedback into ShardPlan


class TestCostFeedbackIntoPlans:
    def test_inference_partition_changes_outputs_do_not(
            self, model, requests, expected):
        """The acceptance loop: record a skewed cost model, feed it
        back, watch the partition move — and the output stay put."""
        cost_model = CostModel()
        # Pretend leaf 2's group is pathologically slow.
        for leaf_id in model.leaf_ids:
            cost_model.observe_inference(
                leaf_id, 10.0 if leaf_id == 2 else 0.01, 1)
        proxy_plan, _ = ShardPlan.for_inference(model, requests, 2)
        fed_plan, _ = ShardPlan.for_inference(model, requests, 2,
                                              cost_model=cost_model)
        assert proxy_plan.shards != fed_plan.shards
        # Leaf 2 must sit alone on the heaviest shard now.
        heaviest = max(range(fed_plan.n_shards),
                       key=lambda i: fed_plan.shard_costs[i])
        assert fed_plan.shards[heaviest] == (2,)

        executor = ThreadShardExecutor(2, cost_model=cost_model)
        assert executor.run_inference(model, requests, k=5) == expected

    def test_construction_partition_changes_models_do_not(
            self, curated, model):
        cost_model = CostModel()
        # Invert reality: the big leaf is cheap, the small ones costly.
        for leaf_id, leaf in curated.leaves.items():
            cost_model.observe_construction(
                leaf_id, 0.01 if len(leaf) > 5 else 5.0,
                sum(map(len, leaf.texts)) + 1)
        proxy_plan = ShardPlan.for_construction(curated, 2)
        fed_plan = ShardPlan.for_construction(curated, 2,
                                              cost_model=cost_model)
        assert proxy_plan.shards != fed_plan.shards

        rebuilt = GraphExModel.construct(
            curated, build_pooled=True,
            executor=ThreadShardExecutor(2, cost_model=cost_model))
        assert_models_identical(model, rebuilt)

    def test_executors_record_observations(self, model, curated,
                                           requests):
        executor = ThreadShardExecutor(2)
        assert not executor.cost_model.has_observations("inference")
        executor.run_inference(model, requests, k=5)
        assert executor.cost_model.n_observations("inference") >= \
            model.n_leaves
        executor.run_construction(curated)
        n_leaves = sum(1 for leaf in curated.leaves.values()
                       if len(leaf) > 0)
        assert executor.cost_model.n_observations("construction") == \
            n_leaves

    def test_process_executor_records_worker_timings(self, model,
                                                     curated, requests):
        with ProcessShardExecutor(workers=2) as executor:
            executor.run_inference(model, requests, k=5)
            assert executor.cost_model.has_observations("inference")
            executor.run_construction(curated)
            assert executor.cost_model.has_observations("construction")

    def test_recorded_model_round_trips_into_same_plan(self, curated):
        executor = ThreadShardExecutor(2)
        executor.run_construction(curated)
        restored = CostModel.from_json(executor.cost_model.to_json())
        assert ShardPlan.for_construction(curated, 2,
                                          cost_model=restored) == \
            ShardPlan.for_construction(curated, 2,
                                       cost_model=executor.cost_model)


# ---------------------------------------------------------------------------
# Replan cost preservation (satellite 2)


class TestReplanCostPreservation:
    def test_orphans_keep_recorded_costs(self):
        plan = ShardPlan.balance([(1, 50), (2, 40), (3, 30), (4, 20)], 2)
        replanned = plan.replan([1, 4], 2)
        # LPT on the *recorded* costs: 50 and 20 land on separate
        # shards with those exact costs, not re-proxied to 1 each.
        assert replanned.shards == ((1,), (4,))
        assert replanned.shard_costs == [50, 20]

    def test_fresher_costs_override_recorded(self):
        plan = ShardPlan.balance([(1, 50), (2, 40), (3, 30)], 2)
        replanned = plan.replan([1, 2, 3], 2, costs={1: 5})
        # Key 1 collapsed to 5; keys 2/3 keep recorded costs.
        assert replanned.shard_costs == [40, 35]
        assert replanned.shards == ((2,), (3, 1))

    def test_unknown_key_rejected(self):
        plan = ShardPlan.balance([(1, 5)], 1)
        with pytest.raises(ValueError,
                           match="not part of this plan"):
            plan.replan([1, 99], 1)


# ---------------------------------------------------------------------------
# Cross-executor equivalence: the headline contract


class TestCrossExecutorEquivalence:
    def test_serial_matches_leaf_batch_runner_semantics(
            self, model, requests, expected):
        """The oracle itself agrees with the engine's duplicate-id
        (last wins) and pooled-fallback semantics."""
        runner_expected = {}
        latest = {}
        for index, request in enumerate(requests):
            latest[request[0]] = index
        rows = LeafBatchRunner(model, k=5).run(requests)
        for item_id, index in latest.items():
            runner_expected[item_id] = rows[item_id]
        assert expected == runner_expected

    def test_thread_fan_out_identical(self, model, requests, expected):
        for workers in (2, 3, 8):
            executor = ThreadShardExecutor(workers)
            assert executor.run_inference(model, requests, k=5) == \
                expected

    def test_process_identical(self, model, requests, expected):
        with ProcessShardExecutor(workers=2) as executor:
            assert executor.run_inference(model, requests, k=5) == \
                expected

    def test_construction_identical_across_substrates(self, curated,
                                                      model):
        for executor in (SerialExecutor(), ThreadShardExecutor(3),
                         ProcessShardExecutor(workers=2)):
            with executor:
                rebuilt = GraphExModel.construct(curated,
                                                 build_pooled=True,
                                                 executor=executor)
            assert_models_identical(model, rebuilt)

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_any_workload_any_executor_identical(self, data, model):
        """Property: a drawn workload served through a drawn substrate
        is element-wise identical to the serial oracle."""
        leaf_ids = list(model.leaf_ids) + [999]  # 999 -> pooled
        n = data.draw(st.integers(min_value=0, max_value=20))
        requests = []
        for i in range(n):
            leaf_id = data.draw(st.sampled_from(leaf_ids))
            words = data.draw(st.lists(
                st.sampled_from(["leaf1", "leaf2", "word0", "word1",
                                 "thing", "extra", "zzz"]),
                min_size=0, max_size=4))
            item_id = data.draw(st.integers(min_value=0, max_value=8))
            requests.append((item_id, " ".join(words), leaf_id))
        workers = data.draw(st.integers(min_value=1, max_value=4))
        executor = data.draw(st.sampled_from(["serial", "thread"]))
        oracle = SerialExecutor().run_inference(model, requests, k=4)
        got = resolve_executor(executor, workers=workers) \
            .run_inference(model, requests, k=4)
        assert got == oracle

    def test_cluster_with_faults_identical(self, model, requests,
                                           expected, tmp_path):
        """A localhost fleet with a worker that hard-dies on its first
        shard still serves the oracle's exact output, and the executor
        records cost observations for the merged units."""
        from repro.core.serialization import save_model

        artifact = tmp_path / "model"
        save_model(model, artifact, format_version=3)
        retry = RetryPolicy(max_attempts=5, base_delay=0.01,
                            max_delay=0.05, jitter=0.0, seed=0)

        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0,
                                          retry=retry) as coordinator:
                tasks = []
                for name, kwargs in (("doomed",
                                      {"die_after_assignments": 0}),
                                     ("survivor-1", {}),
                                     ("survivor-2", {})):
                    worker = ClusterWorker(coordinator.host,
                                           coordinator.port,
                                           name=name, **kwargs)
                    tasks.append(asyncio.ensure_future(worker.run()))
                await coordinator.wait_for_workers(3, timeout=10.0)
                executor = ClusterExecutor(coordinator)
                got = await executor.run_inference_async(
                    str(artifact), requests, k=5)
                n_observed = executor.cost_model.n_observations(
                    "inference")
                await coordinator.stop()
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                return got, n_observed

        got, n_observed = asyncio.run(drive())
        assert got == expected
        assert n_observed > 0

    def test_local_cluster_executor_lifecycle(self, model, requests,
                                              expected, tmp_path):
        """`ClusterExecutor.local` (the CLI's --executor cluster
        backend) boots, serves identically, and tears down cleanly."""
        from repro.core.serialization import save_model

        artifact = tmp_path / "model"
        save_model(model, artifact, format_version=3)
        executor = ClusterExecutor.local(workers=2)
        try:
            assert executor.run_inference(str(artifact), requests,
                                          k=5) == expected
        finally:
            executor.close()
        executor.close()  # idempotent

    def test_sync_call_on_coordinator_loop_rejected(self):
        async def drive():
            async with ClusterCoordinator() as coordinator:
                executor = ClusterExecutor(coordinator)
                with pytest.raises(RuntimeError, match="own"):
                    executor.run_inference("unused", [])

        asyncio.run(drive())

    def test_unstarted_coordinator_rejected(self):
        executor = ClusterExecutor(ClusterCoordinator())
        with pytest.raises(RuntimeError, match="started"):
            executor.run_inference("unused", [])


# ---------------------------------------------------------------------------
# Refresh integration: yesterday's costs steer today's plan


class TestRefreshCostFeedback:
    def test_second_refresh_reports_rebalance_stats(self, curated,
                                                    model):
        from repro.serving.kvstore import KeyValueStore
        from repro.serving.batch_pipeline import BatchPipeline
        from repro.serving.refresh import DailyRefreshOrchestrator

        requests = [(i, f"leaf{1 + (i % 5)} word0 thing", 1 + (i % 5))
                    for i in range(10)]
        pipeline = BatchPipeline(model, store=KeyValueStore())
        orchestrator = DailyRefreshOrchestrator(pipeline, workers=2)
        assert orchestrator.cost_model is \
            orchestrator.executor.cost_model

        first = orchestrator.refresh_sync(curated, requests)
        # Day one runs on proxies: nothing to compare yet, but the
        # build itself populated the model.
        assert first.rebalance_gain is None
        assert first.n_cost_observations > 0

        second = orchestrator.refresh_sync(curated, requests)
        assert second.rebalance_gain is not None
        assert second.rebalance_gain > 0
        assert second.n_cost_observations >= first.n_cost_observations
        assert second.generation > first.generation
