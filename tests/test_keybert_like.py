"""Tests for the keyBERT-style extractive baseline."""

from __future__ import annotations

import pytest

from repro.baselines import KeyBERTLike, Prediction, TrainingData


def training_data():
    items = [
        (1, "audeze maxwell gaming headphones for xbox", 100),
        (2, "klaro wireless headphones blue", 100),
        (3, "nimbus gaming laptop 16gb ram", 101),
        (4, "voltedge gaming laptop ssd fast shipping", 101),
    ]
    return TrainingData(items=items, click_pairs={}, query_leaf={})


class TestCandidateGeneration:
    def test_ngrams_are_contiguous_only(self):
        model = KeyBERTLike(training_data(), ngram_range=(2, 2))
        preds = model.recommend(1, "audeze maxwell gaming", 100, k=20)
        texts = {p.text for p in preds}
        assert texts <= {"audeze maxwell", "maxwell gaming"}
        # "audeze gaming" is a valid permutation but NOT adjacent — the
        # token-adjacency limitation the paper criticises.
        assert "audeze gaming" not in texts

    def test_ngram_range_respected(self):
        model = KeyBERTLike(training_data(), ngram_range=(1, 3),
                            diversity_penalty=0.0)
        preds = model.recommend(1, "audeze maxwell gaming headphones",
                                100, k=50)
        lengths = {len(p.text.split()) for p in preds}
        assert lengths <= {1, 2, 3}

    def test_invalid_ngram_range_raises(self):
        with pytest.raises(ValueError):
            KeyBERTLike(training_data(), ngram_range=(3, 2))
        with pytest.raises(ValueError):
            KeyBERTLike(training_data(), ngram_range=(0, 2))

    def test_invalid_diversity_raises(self):
        with pytest.raises(ValueError):
            KeyBERTLike(training_data(), diversity_penalty=1.0)

    def test_empty_title(self):
        model = KeyBERTLike(training_data())
        assert model.recommend(1, "", 100) == []

    def test_empty_training_data(self):
        model = KeyBERTLike(
            TrainingData(items=[], click_pairs={}, query_leaf={}))
        assert model.recommend(1, "anything at all", 100) == []


class TestRanking:
    def test_k_respected(self):
        model = KeyBERTLike(training_data(), diversity_penalty=0.0)
        preds = model.recommend(
            1, "audeze maxwell gaming headphones for xbox", 100, k=3)
        assert len(preds) == 3

    def test_scores_sorted_without_diversity(self):
        model = KeyBERTLike(training_data(), diversity_penalty=0.0)
        preds = model.recommend(
            1, "audeze maxwell gaming headphones", 100, k=10)
        scores = [p.score for p in preds]
        assert scores == sorted(scores, reverse=True)

    def test_mmr_reduces_near_duplicates(self):
        title = "gaming laptop gaming laptop ssd"
        plain = KeyBERTLike(training_data(), diversity_penalty=0.0)
        diverse = KeyBERTLike(training_data(), diversity_penalty=0.7)
        plain_texts = [p.text
                       for p in plain.recommend(1, title, 101, k=4)]
        diverse_texts = [p.text
                         for p in diverse.recommend(1, title, 101, k=4)]
        assert len(set(diverse_texts)) == len(diverse_texts)
        assert plain_texts[0] == diverse_texts[0]  # top pick unchanged


class TestTargeting:
    def test_unfiltered_candidates_can_be_untargetable(self):
        """Vanilla n-gram extraction emits phrases no buyer searches —
        Challenge I-A4."""
        model = KeyBERTLike(training_data(), diversity_penalty=0.0)
        universe = {"audeze maxwell", "gaming headphones"}
        preds = model.recommend(
            1, "audeze maxwell gaming headphones for xbox", 100, k=15)
        rate = model.targeting_rate(preds, universe)
        assert rate < 1.0

    def test_known_queries_filter_guarantees_targeting(self):
        universe = {"audeze maxwell", "gaming headphones"}
        model = KeyBERTLike(training_data(), known_queries=universe,
                            diversity_penalty=0.0)
        preds = model.recommend(
            1, "audeze maxwell gaming headphones for xbox", 100, k=15)
        assert preds
        assert model.targeting_rate(preds, universe) == 1.0

    def test_targeting_rate_empty(self):
        model = KeyBERTLike(training_data())
        assert model.targeting_rate([], {"a"}) == 0.0
