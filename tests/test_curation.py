"""Tests for keyphrase curation (Section III-B semantics)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.curation import (
    CurationConfig,
    curate,
    head_threshold,
)
from repro.search.logs import KeyphraseStat


def stat(text, leaf=1, search=10, recall=5):
    return KeyphraseStat(text=text, leaf_id=leaf, search_count=search,
                         recall_count=recall)


class TestThresholding:
    def test_keeps_only_above_threshold(self):
        stats = [stat("a b", search=100), stat("c d", search=5)]
        curated = curate(stats, CurationConfig(min_search_count=10))
        assert curated.leaves[1].texts == ["a b"]

    def test_threshold_is_inclusive(self):
        stats = [stat("a", search=10)]
        curated = curate(stats, CurationConfig(min_search_count=10))
        assert curated.n_keyphrases == 1

    def test_groups_by_leaf(self):
        stats = [stat("a", leaf=1), stat("b", leaf=2)]
        curated = curate(stats, CurationConfig(min_search_count=1))
        assert set(curated.leaves) == {1, 2}

    def test_duplicate_text_across_leaves_kept_separately(self):
        """The paper: a keyphrase can be duplicated across leaf categories."""
        stats = [stat("a b", leaf=1), stat("a b", leaf=2)]
        curated = curate(stats, CurationConfig(min_search_count=1))
        assert curated.n_keyphrases == 2
        assert curated.n_unique_texts == 1

    def test_token_length_filters(self):
        stats = [stat("a"), stat("a b c d e f")]
        curated = curate(stats, CurationConfig(
            min_search_count=1, min_tokens=2, max_tokens=4))
        assert curated.n_keyphrases == 0

    def test_search_and_recall_arrays_parallel(self):
        stats = [stat("a", search=7, recall=3), stat("b", search=9, recall=1)]
        curated = curate(stats, CurationConfig(min_search_count=1))
        leaf = curated.leaves[1]
        idx = leaf.texts.index("b")
        assert leaf.search_counts[idx] == 9
        assert leaf.recall_counts[idx] == 1

    def test_empty_stats(self):
        curated = curate([], CurationConfig(min_search_count=1))
        assert curated.n_keyphrases == 0
        assert curated.leaves == {}


class TestRelaxation:
    """The CAT 3 relaxation: ease the threshold when keyphrases are scarce."""

    def test_threshold_halves_until_satisfied(self):
        stats = [stat(f"k{i}", search=5) for i in range(20)]
        curated = curate(stats, CurationConfig(
            min_search_count=40, min_keyphrases=10, floor_search_count=2))
        assert curated.effective_threshold <= 5
        assert curated.n_keyphrases == 20

    def test_relaxation_respects_floor(self):
        stats = [stat("only", search=1)]
        curated = curate(stats, CurationConfig(
            min_search_count=40, min_keyphrases=10, floor_search_count=4))
        assert curated.effective_threshold == 4
        assert curated.n_keyphrases == 0

    def test_no_relaxation_without_min_keyphrases(self):
        stats = [stat("a", search=5)]
        curated = curate(stats, CurationConfig(min_search_count=40))
        assert curated.effective_threshold == 40
        assert curated.n_keyphrases == 0

    def test_no_relaxation_when_enough(self):
        stats = [stat(f"k{i}", search=50) for i in range(10)]
        curated = curate(stats, CurationConfig(
            min_search_count=40, min_keyphrases=5))
        assert curated.effective_threshold == 40

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=50),
           st.integers(1, 120))
    def test_all_survivors_meet_effective_threshold(self, counts, threshold):
        stats = [stat(f"k{i}", search=c) for i, c in enumerate(counts)]
        curated = curate(stats, CurationConfig(
            min_search_count=threshold, min_keyphrases=5,
            floor_search_count=2))
        for leaf in curated.leaves.values():
            assert all(s >= curated.effective_threshold
                       for s in leaf.search_counts)


def _legacy_head_threshold(counts, percentile):
    """The original sorted-rank linear interpolation, kept as the
    semantics reference for the np.percentile implementation."""
    counts = sorted(counts)
    rank = (percentile / 100.0) * (len(counts) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(counts) - 1)
    frac = rank - lower
    return counts[lower] * (1.0 - frac) + counts[upper] * frac


class TestHeadThreshold:
    def test_percentile_interpolation(self):
        stats = [stat(f"k{i}", search=i) for i in range(1, 12)]
        assert head_threshold(stats, percentile=50.0) == pytest.approx(6.0)

    @pytest.mark.parametrize("counts", [
        [42],                       # singleton: the value itself
        [3, 9, 1, 7, 5],            # odd length
        [10, 2, 8, 4, 6, 12],       # even length
        [5, 5, 5, 5],               # ties
    ])
    @pytest.mark.parametrize("percentile", [0.0, 25.0, 50.0, 90.0, 100.0])
    def test_matches_legacy_linear_interpolation(self, counts, percentile):
        """np.percentile must keep the exact rank = p/100 * (n-1)
        linear-interpolation semantics of the sorted() implementation."""
        stats = [stat(f"k{i}", search=c) for i, c in enumerate(counts)]
        assert head_threshold(stats, percentile) == pytest.approx(
            _legacy_head_threshold(counts, percentile), abs=1e-12)

    def test_exact_on_integer_ranks(self):
        """When the rank lands on an element, no interpolation happens
        and the result is exactly that element for both formulas."""
        stats = [stat(f"k{i}", search=i * 10) for i in range(5)]
        assert head_threshold(stats, percentile=50.0) == 20.0
        assert head_threshold(stats, percentile=0.0) == 0.0
        assert head_threshold(stats, percentile=100.0) == 40.0

    def test_p90_leaves_roughly_ten_percent_above(self):
        stats = [stat(f"k{i}", search=i) for i in range(100)]
        threshold = head_threshold(stats, percentile=90.0)
        above = sum(1 for s in stats if s.search_count > threshold)
        assert above == pytest.approx(10, abs=2)

    def test_empty(self):
        assert head_threshold([]) == 0.0

    def test_single(self):
        assert head_threshold([stat("a", search=42)]) == 42.0


class TestCuratedAccessors:
    def test_leaf_returns_none_for_unknown(self):
        curated = curate([stat("a")], CurationConfig(min_search_count=1))
        assert curated.leaf(999) is None

    def test_len_of_curated_leaf(self):
        curated = curate([stat("a"), stat("b")],
                         CurationConfig(min_search_count=1))
        assert len(curated.leaves[1]) == 2
