"""End-to-end integration tests over the tiny simulated world."""

from __future__ import annotations

import pytest

from repro.baselines import (
    FastTextLike,
    Graphite,
    RulesEngine,
    SLEmb,
    SLQuery,
    TrainingData,
)
from repro.core import CurationConfig, GraphExModel, curate
from repro.core.serialization import load_model, save_model
from repro.eval import Experiment, ExperimentConfig
from repro.eval.judge import OracleJudge
from repro.eval.metrics import HeadClassifier, judge_model_predictions
from repro.data import TINY_PROFILE
from repro.serving import BatchPipeline, KeyValueStore


@pytest.fixture(scope="module")
def tiny_experiment():
    config = ExperimentConfig(
        profile=TINY_PROFILE,
        n_train_events=25_000,
        n_test_events=4_000,
        curation=CurationConfig(min_search_count=3, min_keyphrases=80,
                                floor_search_count=2),
        test_items_per_meta={"CAT_1": 40, "CAT_2": 25, "CAT_3": 15},
        seed=3,
    )
    return Experiment(config).prepare()


class TestPipeline:
    def test_all_models_build_and_predict(self, tiny_experiment):
        models = tiny_experiment.models("CAT_1")
        assert set(models) == {"GraphEx", "RE", "SL-query", "SL-emb",
                               "fastText", "Graphite"}
        item = tiny_experiment.test_items("CAT_1")[0]
        for model in models.values():
            preds = model.recommend(item.item_id, item.title,
                                    item.leaf_id, k=10)
            assert isinstance(preds, list)

    def test_prediction_limit_respected(self, tiny_experiment):
        for preds_by_item in tiny_experiment.predictions("CAT_1").values():
            for texts in preds_by_item.values():
                assert len(texts) \
                    <= tiny_experiment.config.prediction_limit

    def test_graphex_predictions_in_curated_vocabulary(self, tiny_experiment):
        curated = curate(tiny_experiment.keyphrase_stats("CAT_1"),
                         tiny_experiment.config.curation)
        universe = {text for leaf in curated.leaves.values()
                    for text in leaf.texts}
        for texts in tiny_experiment.predictions("CAT_1")["GraphEx"].values():
            assert set(texts) <= universe

    def test_judged_counts_consistent(self, tiny_experiment):
        for judged in tiny_experiment.judged("CAT_1").values():
            per_item_total = sum(len(t) for t in judged.per_item.values())
            assert judged.total == per_item_total

    def test_test_items_belong_to_meta(self, tiny_experiment):
        leaf_ids = {leaf.leaf_id for leaf in
                    tiny_experiment.dataset.catalog.tree.leaves_of("CAT_2")}
        for item in tiny_experiment.test_items("CAT_2"):
            assert item.leaf_id in leaf_ids

    def test_caches_are_stable(self, tiny_experiment):
        first = tiny_experiment.judged("CAT_3")
        second = tiny_experiment.judged("CAT_3")
        assert first is second

    def test_re_is_its_own_ground_truth(self, tiny_experiment):
        """Every RE prediction must appear in RE's ground-truth table."""
        re_model = tiny_experiment.rules_engine("CAT_1")
        for item in tiny_experiment.test_items("CAT_1"):
            preds = re_model.recommend(item.item_id, item.title,
                                       item.leaf_id, k=40)
            truth = set(re_model.ground_truth(item.item_id))
            assert {p.text for p in preds} <= truth

    def test_train_and_test_windows_disjoint(self, tiny_experiment):
        assert tiny_experiment.train_log.day_end \
            < tiny_experiment.test_log.day_start


class TestModelRefreshCycle:
    """The daily-refresh loop: curate → construct → serve → re-curate."""

    def test_two_day_cycle(self, tiny_dataset, tiny_log):
        config = CurationConfig(min_search_count=3, min_keyphrases=50,
                                floor_search_count=2)
        curated_day1 = curate(tiny_log.keyphrase_stats(), config)
        model_day1 = GraphExModel.construct(curated_day1)

        store = KeyValueStore()
        pipeline = BatchPipeline(model_day1, store=store)
        requests = [(it.item_id, it.title, it.leaf_id)
                    for it in tiny_dataset.catalog.items[:100]]
        pipeline.full_load(requests)
        served_before = pipeline.serve(requests[0][0])

        # Day 2: fresh curation (same log here), differential refresh.
        model_day2 = GraphExModel.construct(
            curate(tiny_log.keyphrase_stats(), config))
        pipeline.refresh_model(model_day2)
        report = pipeline.daily_differential(requests[:10])
        assert report.n_inferred == 10
        assert pipeline.serve(requests[0][0]) == served_before

    def test_save_load_in_serving_path(self, tmp_path, tiny_model,
                                       tiny_dataset):
        save_model(tiny_model, tmp_path / "daily")
        loaded = load_model(tmp_path / "daily")
        item = tiny_dataset.catalog.items[0]
        original = tiny_model.recommend(item.title, item.leaf_id, k=10)
        restored = loaded.recommend(item.title, item.leaf_id, k=10)
        assert [r.text for r in original] == [r.text for r in restored]


class TestBaselinesOnSimulatedData:
    def test_baselines_train_on_simulated_clicks(self, tiny_experiment):
        data = tiny_experiment.training_data("CAT_1")
        assert data.click_pairs  # the simulation produced click truths
        for cls in (RulesEngine, SLQuery, SLEmb, Graphite):
            pass  # constructed in tiny_experiment.models already

    def test_sl_models_cover_fewer_items_than_graphex(self, tiny_experiment):
        """Rule-based models cannot serve cold items; GraphEx can."""
        models = tiny_experiment.models("CAT_1")
        item_ids = [it.item_id
                    for it in tiny_experiment.test_items("CAT_1")]
        graphex_cov = models["GraphEx"].coverage(item_ids)
        re_cov = models["RE"].coverage(item_ids)
        assert graphex_cov == 1.0
        assert re_cov < 1.0

    def test_judging_is_deterministic(self, tiny_experiment):
        judge = OracleJudge(tiny_experiment.dataset.catalog)
        item = tiny_experiment.test_items("CAT_1")[0]
        phrase = "some test phrase"
        assert judge.is_relevant(item.item_id, item.title, phrase) \
            == judge.is_relevant(item.item_id, item.title, phrase)


class TestMetricsIdentity:
    def test_model_vs_itself_ratios_are_one(self, tiny_experiment):
        from repro.eval.metrics import (relative_head_ratio,
                                        relative_relevant_ratio)
        judged = tiny_experiment.judged("CAT_1")["GraphEx"]
        if judged.relevant:
            assert relative_relevant_ratio(judged, judged) == 1.0
        if judged.relevant_head:
            assert relative_head_ratio(judged, judged) == 1.0

    def test_head_classifier_uses_test_window(self, tiny_experiment):
        head = tiny_experiment.head_classifier("CAT_1")
        # The threshold comes from the test window, whose counts differ
        # from the training window's.
        assert head.threshold >= 0
