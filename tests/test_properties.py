"""Cross-module property-based tests (hypothesis).

These pin down invariants that hold for *any* keyphrase universe, not
just the fixtures: construction/inference consistency, ranking laws,
serialization round-trips, and engine monotonicity.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.inference import enumerate_candidates, recommend_from_graph
from repro.core.model import GraphExModel, build_leaf_graph
from repro.core.serialization import load_model, save_model
from repro.core.tokenize import DEFAULT_TOKENIZER
from repro.data.catalog import Item
from repro.search.engine import SearchEngine

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

words = st.sampled_from(
    ["audeze", "klaro", "gaming", "wireless", "headphones", "xbox",
     "blue", "studio", "laptop", "mesh", "router", "ram"])

keyphrase_texts = st.lists(words, min_size=1, max_size=4, unique=True) \
    .map(" ".join)

keyphrase_sets = st.lists(
    st.tuples(keyphrase_texts, st.integers(1, 1000), st.integers(0, 500)),
    min_size=1, max_size=15, unique_by=lambda t: t[0])

titles = st.lists(words, min_size=1, max_size=8).map(" ".join)


def model_from(keyphrases) -> GraphExModel:
    leaf = CuratedLeaf(leaf_id=1)
    for text, search, recall in keyphrases:
        leaf.add(text, search, recall)
    return GraphExModel.construct(CuratedKeyphrases(
        leaves={1: leaf}, effective_threshold=1,
        config=CurationConfig(min_search_count=1)))


# ---------------------------------------------------------------------------
# GraphEx invariants
# ---------------------------------------------------------------------------

class TestGraphExInvariants:
    @given(keyphrase_sets, titles, st.integers(1, 8))
    def test_predictions_are_subset_of_labels(self, keyphrases, title, k):
        model = model_from(keyphrases)
        label_universe = {text for text, _s, _r in keyphrases}
        for rec in model.recommend(title, 1, k=k):
            assert rec.text in label_universe

    @given(keyphrase_sets, titles, st.integers(1, 8))
    def test_every_prediction_shares_a_token(self, keyphrases, title, k):
        model = model_from(keyphrases)
        title_tokens = set(DEFAULT_TOKENIZER(title))
        for rec in model.recommend(title, 1, k=k):
            assert set(rec.text.split()) & title_tokens
            assert rec.common == len(set(rec.text.split()) & title_tokens)

    @given(keyphrase_sets, titles, st.integers(1, 8))
    def test_no_duplicate_predictions(self, keyphrases, title, k):
        model = model_from(keyphrases)
        texts = [rec.text for rec in model.recommend(title, 1, k=k)]
        assert len(texts) == len(set(texts))

    @given(keyphrase_sets, titles, st.integers(1, 8))
    def test_scores_non_increasing(self, keyphrases, title, k):
        model = model_from(keyphrases)
        scores = [rec.score for rec in model.recommend(title, 1, k=k)]
        assert scores == sorted(scores, reverse=True)

    @given(keyphrase_sets, titles)
    def test_lta_score_formula(self, keyphrases, title):
        model = model_from(keyphrases)
        for rec in model.recommend(title, 1, k=10):
            n_tokens = len(set(rec.text.split()))
            expected = rec.common / (n_tokens - rec.common + 1)
            assert abs(rec.score - expected) < 1e-12

    @given(keyphrase_sets, titles)
    def test_title_token_order_is_irrelevant(self, keyphrases, title):
        """Permutation invariance — the core of the paper's formulation."""
        model = model_from(keyphrases)
        tokens = title.split()
        shuffled = " ".join(reversed(tokens))
        a = [(r.text, r.score) for r in model.recommend(title, 1, k=10)]
        b = [(r.text, r.score) for r in model.recommend(shuffled, 1, k=10)]
        assert a == b

    @given(keyphrase_sets, titles, st.integers(1, 6))
    def test_k_monotone_in_output_size(self, keyphrases, title, k):
        model = model_from(keyphrases)
        small = model.recommend(title, 1, k=k)
        large = model.recommend(title, 1, k=k + 3)
        assert len(large) >= len(small)

    @given(keyphrase_sets, titles)
    def test_enumeration_counts_match_bruteforce(self, keyphrases, title):
        leaf = CuratedLeaf(leaf_id=1)
        for text, search, recall in keyphrases:
            leaf.add(text, search, recall)
        graph = build_leaf_graph(leaf, DEFAULT_TOKENIZER)
        tokens = DEFAULT_TOKENIZER(title)
        labels, counts, _n = enumerate_candidates(graph, tokens)
        title_set = set(tokens)
        got = {graph.label_texts[l]: c for l, c in zip(labels, counts)}
        expected = {}
        for text, _s, _r in keyphrases:
            overlap = len(set(text.split()) & title_set)
            if overlap:
                expected[text] = overlap
        assert got == expected


class TestSerializationProperties:
    @settings(max_examples=10)
    @given(keyphrase_sets, titles)
    def test_roundtrip_identical_predictions(self, keyphrases, title):
        import tempfile
        from pathlib import Path

        model = model_from(keyphrases)
        with tempfile.TemporaryDirectory() as tmp:
            save_model(model, Path(tmp) / "m")
            loaded = load_model(Path(tmp) / "m")
        a = [(r.text, r.score, r.search_count, r.recall_count)
             for r in model.recommend(title, 1, k=10)]
        b = [(r.text, r.score, r.search_count, r.recall_count)
             for r in loaded.recommend(title, 1, k=10)]
        assert a == b


# ---------------------------------------------------------------------------
# Search engine invariants
# ---------------------------------------------------------------------------

item_lists = st.lists(
    st.tuples(st.integers(1, 50), titles), min_size=1, max_size=12,
    unique_by=lambda t: t[0]
).map(lambda pairs: [
    Item(item_id=i, product_id=i, leaf_id=100, title=t)
    for i, t in pairs
])


class TestEngineInvariants:
    @given(item_lists, st.lists(words, min_size=1, max_size=3))
    def test_recall_shrinks_as_query_grows(self, items, query):
        """Strict AND semantics: adding a token never recalls more."""
        engine = SearchEngine(items, seed=0)
        shorter = engine.recall_count(query[:-1]) if len(query) > 1 \
            else len(items)
        longer = engine.recall_count(query)
        assert longer <= shorter if len(query) > 1 else longer <= len(items)

    @given(item_lists, st.lists(words, min_size=1, max_size=3))
    def test_recalled_items_contain_all_tokens(self, items, query):
        engine = SearchEngine(items, seed=0)
        count = engine.recall_count(query)
        brute = sum(
            1 for item in items
            if all(tok in item.title_tokens for tok in query))
        assert count == brute

    @given(item_lists, st.lists(words, min_size=1, max_size=3))
    def test_search_scores_sorted(self, items, query):
        engine = SearchEngine(items, seed=0)
        results = engine.search(query)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    @given(item_lists, st.lists(words, min_size=1, max_size=3))
    def test_search_results_unique(self, items, query):
        engine = SearchEngine(items, seed=0)
        ids = [r.item_id for r in engine.search(query)]
        assert len(ids) == len(set(ids))
