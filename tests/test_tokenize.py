"""Unit and property tests for repro.core.tokenize."""

from __future__ import annotations

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tokenize import (
    DEFAULT_TOKENIZER,
    STEMMING_TOKENIZER,
    SpaceTokenizer,
    light_stem,
    normalize_token,
)


class TestNormalizeToken:
    def test_lowercases(self):
        assert normalize_token("Audeze") == "audeze"

    def test_strips_edge_punctuation(self):
        assert normalize_token("(new)") == "new"
        assert normalize_token("sale!") == "sale"
        assert normalize_token("--lot--") == "lot"

    def test_preserves_interior_punctuation(self):
        assert normalize_token("wi-fi") == "wi-fi"
        assert normalize_token("1:64") == "1:64"

    def test_preserves_alphanumerics(self):
        assert normalize_token("16GB") == "16gb"

    def test_pure_punctuation_becomes_empty(self):
        assert normalize_token("***") == ""

    @given(st.text(alphabet=string.ascii_letters + string.digits,
                   min_size=1, max_size=12))
    def test_idempotent(self, token):
        once = normalize_token(token)
        assert normalize_token(once) == once


class TestLightStem:
    def test_plural_s(self):
        assert light_stem("headphones") == "headphone"

    def test_ies_to_y(self):
        assert light_stem("batteries") == "battery"

    def test_sses(self):
        assert light_stem("glasses") == "glass"

    def test_short_tokens_untouched(self):
        assert light_stem("bus") == "bus"
        assert light_stem("s") == "s"

    def test_us_is_preserved(self):
        assert light_stem("bonus") == "bonus"

    def test_ss_is_preserved(self):
        assert light_stem("wireless") == "wireless"

    def test_is_is_preserved(self):
        assert light_stem("tennis") == "tennis"

    def test_model_codes_untouched(self):
        assert light_stem("mx450") == "mx450"

    @given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12))
    def test_stem_never_longer(self, token):
        assert len(light_stem(token)) <= len(token)

    @given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12))
    def test_stem_idempotent_for_plain_plurals(self, token):
        # Stemming a stemmed plural-s form is stable unless the first pass
        # exposed another strippable suffix; plain -s plurals are stable.
        word = token + "es" if not token.endswith("s") else token
        once = light_stem(word)
        assert light_stem(once) in {once, light_stem(light_stem(once))}


class TestSpaceTokenizer:
    def test_basic_split(self):
        assert DEFAULT_TOKENIZER("audeze maxwell headphones") == [
            "audeze", "maxwell", "headphones"]

    def test_collapses_whitespace(self):
        assert DEFAULT_TOKENIZER("  a   b\tc ") == ["a", "b", "c"]

    def test_normalizes_case_and_punctuation(self):
        assert DEFAULT_TOKENIZER("NEW! Audeze (Maxwell)") == [
            "new", "audeze", "maxwell"]

    def test_empty_string(self):
        assert DEFAULT_TOKENIZER("") == []

    def test_whitespace_only(self):
        assert DEFAULT_TOKENIZER("   \t ") == []

    def test_stemming_variant(self):
        assert STEMMING_TOKENIZER("headphones cables") == [
            "headphone", "cable"]

    def test_stopword_dropping(self):
        tok = SpaceTokenizer(drop_stopwords=("for", "with"))
        assert tok("headphones for xbox with mic") == [
            "headphones", "xbox", "mic"]

    def test_stems_property(self):
        assert SpaceTokenizer(stem=True).stems is True
        assert SpaceTokenizer().stems is False

    def test_duplicates_preserved(self):
        """The tokenizer itself must not dedupe — set semantics belong to
        the enumeration step."""
        assert DEFAULT_TOKENIZER("open open box") == ["open", "open", "box"]

    @given(st.lists(st.text(alphabet=string.ascii_lowercase,
                            min_size=1, max_size=8), max_size=8))
    def test_roundtrip_on_clean_tokens(self, tokens):
        assert DEFAULT_TOKENIZER(" ".join(tokens)) == tokens

    @given(st.text(max_size=60))
    def test_never_emits_empty_tokens(self, text):
        assert all(DEFAULT_TOKENIZER(text))

    @given(st.text(max_size=60))
    def test_consistent_between_calls(self, text):
        assert DEFAULT_TOKENIZER(text) == DEFAULT_TOKENIZER(text)
