"""Unit and property tests for the alignment functions (LTA/WMR/JAC)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.alignment import ALIGNMENTS, get_alignment, jac, lta, wmr

#: Valid (common, label_len, title_len) triples: 1 <= c <= min(|l|, |T|).
triples = st.tuples(
    st.integers(1, 10), st.integers(1, 10), st.integers(1, 20)
).filter(lambda t: t[0] <= t[1] and t[0] <= t[2])


class TestLTA:
    def test_definition(self):
        assert lta(2, 3) == pytest.approx(2.0 / 2.0)
        assert lta(3, 3) == pytest.approx(3.0)

    def test_full_match_equals_label_length(self):
        for n in range(1, 8):
            assert lta(n, n) == pytest.approx(float(n))

    def test_vectorized(self):
        out = lta(np.array([1, 2, 3]), np.array([3, 3, 3]))
        assert out == pytest.approx([1 / 3, 1.0, 3.0])

    def test_title_len_is_ignored(self):
        assert lta(2, 3, 5) == lta(2, 3, 500)

    @given(triples)
    def test_positive_and_bounded(self, t):
        c, l_len, _ = t
        value = float(lta(c, l_len))
        assert 0 < value <= l_len

    @given(triples)
    def test_monotone_in_common(self, t):
        c, l_len, _ = t
        assume(c < l_len)
        assert lta(c + 1, l_len) > lta(c, l_len)

    @given(triples)
    def test_antitone_in_label_length(self, t):
        c, l_len, _ = t
        assert lta(c, l_len + 1) < lta(c, l_len)


class TestWMR:
    def test_definition(self):
        assert wmr(2, 4) == pytest.approx(0.5)

    def test_full_match_is_one(self):
        for n in range(1, 8):
            assert wmr(n, n) == pytest.approx(1.0)

    @given(triples)
    def test_in_unit_interval(self, t):
        c, l_len, _ = t
        assert 0 < float(wmr(c, l_len)) <= 1.0

    @given(triples)
    def test_wmr_never_exceeds_lta(self, t):
        """LTA(c, l) >= WMR(c, l): denominators satisfy l - c + 1 <= l."""
        c, l_len, _ = t
        assert float(lta(c, l_len)) >= float(wmr(c, l_len)) - 1e-12


class TestJAC:
    def test_definition(self):
        assert jac(2, 3, 5) == pytest.approx(2.0 / 6.0)

    def test_identical_sets(self):
        assert jac(4, 4, 4) == pytest.approx(1.0)

    @given(triples)
    def test_in_unit_interval(self, t):
        c, l_len, t_len = t
        assert 0 < float(jac(c, l_len, t_len)) <= 1.0

    @given(triples)
    def test_jac_le_wmr(self, t):
        """JAC <= WMR since |l| + |T| - c >= |l| whenever c <= |T|."""
        c, l_len, t_len = t
        assert float(jac(c, l_len, t_len)) <= float(wmr(c, l_len)) + 1e-12

    @given(st.integers(1, 10), st.integers(2, 10))
    def test_monotone_in_c_for_fixed_title(self, c, t_len):
        """For a fixed title, JAC is monotone in c even across label
        lengths — the property the paper's ablation pins down."""
        assume(c < t_len)
        shorter = jac(c, c, t_len)
        longer = jac(c + 1, c + 1, t_len)
        assert float(longer) > float(shorter)


class TestRegistry:
    def test_contains_all_three(self):
        assert set(ALIGNMENTS) == {"lta", "wmr", "jac"}

    def test_get_alignment_by_name(self):
        assert get_alignment("lta") is lta
        assert get_alignment("wmr") is wmr
        assert get_alignment("jac") is jac

    def test_get_alignment_passes_callables_through(self):
        fn = lambda c, l, t: c  # noqa: E731 - test double
        assert get_alignment(fn) is fn

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_alignment("cosine")

    def test_uniform_signature(self):
        for fn in ALIGNMENTS.values():
            assert float(fn(1, 2, 3)) > 0
