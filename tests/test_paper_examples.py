"""Golden tests pinned to the paper's worked examples.

If any of these fail, the implementation has drifted from the published
algorithm, whatever the rest of the suite says.
"""

from __future__ import annotations

import pytest

from repro.core.alignment import jac, lta, wmr
from repro.core.inference import enumerate_candidates
from tests.conftest import FIG3_KEYPHRASES, FIG3_LEAF_ID, FIG3_TITLE


class TestFigure3Graph:
    """Construction phase on the Figure 3 illustration."""

    def test_left_vertices_are_the_unique_words(self, fig3_model):
        graph = fig3_model.leaf_graph(FIG3_LEAF_ID)
        expected_words = {"audeze", "maxwell", "headphones", "gaming",
                          "xbox", "wireless", "bluetooth"}
        assert set(graph.word_vocab.tokens) == expected_words

    def test_right_vertices_are_the_keyphrases(self, fig3_model):
        graph = fig3_model.leaf_graph(FIG3_LEAF_ID)
        assert graph.label_texts == [text for text, _s, _r in FIG3_KEYPHRASES]

    def test_edges_connect_words_to_containing_keyphrases(self, fig3_model):
        graph = fig3_model.leaf_graph(FIG3_LEAF_ID)
        word_id = graph.word_vocab.get("headphones")
        neighbor_texts = {graph.label_texts[label]
                          for label in graph.graph.neighbors(word_id)}
        assert neighbor_texts == {
            "audeze headphones", "gaming headphones xbox",
            "wireless headphones xbox", "bluetooth wireless headphones"}

    def test_edge_count_matches_token_occurrences(self, fig3_model):
        graph = fig3_model.leaf_graph(FIG3_LEAF_ID)
        expected = sum(len(set(text.split()))
                       for text, _s, _r in FIG3_KEYPHRASES)
        assert graph.graph.n_edges == expected


class TestSectionIIIE1Enumeration:
    """The worked duplication-count example (counts 2,2,3,2,1)."""

    def test_duplication_counts(self, fig3_model):
        graph = fig3_model.leaf_graph(FIG3_LEAF_ID)
        labels, counts, _n = enumerate_candidates(
            graph, FIG3_TITLE.split())
        by_text = {graph.label_texts[l]: c
                   for l, c in zip(labels, counts)}
        assert by_text == {
            "audeze maxwell": 2,
            "audeze headphones": 2,
            "gaming headphones xbox": 3,
            "wireless headphones xbox": 2,
            "bluetooth wireless headphones": 1,
        }

    def test_for_token_is_ignored(self, fig3_model):
        """Title tokens absent from every keyphrase are ignored (III-A)."""
        graph = fig3_model.leaf_graph(FIG3_LEAF_ID)
        with_for = enumerate_candidates(graph, FIG3_TITLE.split())
        without_for = enumerate_candidates(
            graph, FIG3_TITLE.replace(" for ", " ").split())
        assert list(with_for[0]) == list(without_for[0])
        assert list(with_for[1]) == list(without_for[1])


class TestSectionIIIE2Ranking:
    """LTA values and ordering from the Ranking-step prose."""

    def test_lta_of_the_two_compared_keyphrases(self):
        # "audeze maxwell" (c=2, |l|=2) -> 2/1; "wireless headphones
        # xbox" (c=2, |l|=3) -> 2/2.
        assert lta(2, 2) == pytest.approx(2.0)
        assert lta(2, 3) == pytest.approx(1.0)

    def test_full_ranking_on_fig3(self, fig3_model):
        recs = fig3_model.recommend(FIG3_TITLE, FIG3_LEAF_ID, k=5)
        texts = [r.text for r in recs]
        # gaming headphones xbox: LTA 3.0 — top.
        assert texts[0] == "gaming headphones xbox"
        # audeze maxwell and audeze headphones tie at LTA 2.0; the tie is
        # broken by higher search count (500 > 400).
        assert texts[1] == "audeze maxwell"
        assert texts[2] == "audeze headphones"
        # wireless headphones xbox: LTA 1.0.
        assert texts[3] == "wireless headphones xbox"
        # bluetooth wireless headphones: LTA 1/3 — last.
        assert texts[4] == "bluetooth wireless headphones"

    def test_scores_match_lta_definition(self, fig3_model):
        recs = fig3_model.recommend(FIG3_TITLE, FIG3_LEAF_ID, k=5)
        by_text = {r.text: r for r in recs}
        assert by_text["gaming headphones xbox"].score == pytest.approx(3.0)
        assert by_text["audeze maxwell"].score == pytest.approx(2.0)
        assert by_text["bluetooth wireless headphones"].score \
            == pytest.approx(1.0 / 3.0)


class TestSectionIVF1AblationExample:
    """The title-with-10-tokens example comparing LTA and JAC."""

    def test_lta_prefers_the_shorter_complete_keyphrase(self):
        # Title A-J (10 tokens); "a b c" fully matched (c=3, |l|=3) vs
        # "a b c d e" partially matched (c=3, |l|=5).
        assert lta(3, 3) > lta(3, 5)
        assert lta(3, 3) == pytest.approx(3.0)
        assert lta(3, 5) == pytest.approx(1.0)

    def test_jac_prefers_the_longer_keyphrase(self):
        # JAC: 3/10 < 5/10 per the paper (c=5 when all five tokens match
        # ... the paper's example uses c=3 vs c=5 in the numerators:
        # 3/(3+10-3)=0.3 and 5/(5+10-5)=0.5).
        assert jac(3, 3, 10) < jac(5, 5, 10)

    def test_wmr_ties_complete_matches(self):
        # WMR gives 1.0 to every fully-covered keyphrase regardless of
        # length — it cannot express the risk penalty LTA encodes.
        assert wmr(3, 3) == pytest.approx(wmr(5, 5))


class TestTableIExpectations:
    """Qualitative capability checks that Table I asserts."""

    def test_graphex_label_space_is_closed(self, fig3_model):
        """100% in-vocabulary targeting: GraphEx can only emit curated
        keyphrases (unlike OOV generators)."""
        recs = fig3_model.recommend(
            "audeze maxwell gaming headphones for xbox", FIG3_LEAF_ID, k=10)
        universe = {text for text, _s, _r in FIG3_KEYPHRASES}
        assert all(r.text in universe for r in recs)

    def test_graphex_needs_no_click_associations(self, fig3_curated):
        """Construction consumes only (keyphrase, S, R) tuples — no items."""
        leaf = fig3_curated.leaves[FIG3_LEAF_ID]
        assert len(leaf.texts) == len(leaf.search_counts) \
            == len(leaf.recall_counts)
