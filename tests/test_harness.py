"""Tests for the Experiment harness plumbing (repro.eval.harness)."""

from __future__ import annotations

import pytest

from repro.core import CurationConfig
from repro.core.model import GraphExModel
from repro.data import TINY_PROFILE
from repro.eval import Experiment, ExperimentConfig, GraphExRecommender


@pytest.fixture(scope="module")
def experiment():
    config = ExperimentConfig(
        profile=TINY_PROFILE,
        n_train_events=15_000,
        n_test_events=3_000,
        curation=CurationConfig(min_search_count=3, min_keyphrases=60,
                                floor_search_count=2),
        test_items_per_meta={"CAT_1": 25, "CAT_2": 15, "CAT_3": 10},
        seed=9,
    )
    return Experiment(config).prepare()


class TestGraphExRecommender:
    def test_output_capped_at_twice_k(self, experiment):
        recommender = experiment.build_graphex("CAT_1")
        for item in experiment.test_items("CAT_1"):
            preds = recommender.recommend(item.item_id, item.title,
                                          item.leaf_id, k=40)
            assert len(preds) <= 2 * 10  # default k=10 -> cap 20

    def test_k_smaller_than_cap_wins(self, experiment):
        recommender = experiment.build_graphex("CAT_1")
        item = experiment.test_items("CAT_1")[0]
        preds = recommender.recommend(item.item_id, item.title,
                                      item.leaf_id, k=3)
        assert len(preds) <= 3

    def test_model_property(self, experiment):
        recommender = experiment.build_graphex("CAT_1")
        assert isinstance(recommender.model, GraphExModel)

    def test_full_coverage(self, experiment):
        recommender = experiment.build_graphex("CAT_1")
        assert recommender.coverage([1, 2, 3]) == 1.0


class TestExperimentPlumbing:
    def test_prepare_is_idempotent(self, experiment):
        dataset_before = experiment.dataset
        experiment.prepare()
        assert experiment.dataset is dataset_before

    def test_training_data_restricted_to_meta(self, experiment):
        data = experiment.training_data("CAT_3")
        leaf_ids = {leaf.leaf_id for leaf in
                    experiment.dataset.catalog.tree.leaves_of("CAT_3")}
        assert all(leaf in leaf_ids for _i, _t, leaf in data.items)
        item_ids = {item_id for item_id, _t, _l in data.items}
        assert set(data.click_pairs) <= item_ids

    def test_keyphrase_stats_restricted_to_meta(self, experiment):
        leaf_ids = {leaf.leaf_id for leaf in
                    experiment.dataset.catalog.tree.leaves_of("CAT_2")}
        stats = experiment.keyphrase_stats("CAT_2")
        assert stats
        assert all(s.leaf_id in leaf_ids for s in stats)

    def test_test_items_deterministic(self, experiment):
        assert [it.item_id for it in experiment.test_items("CAT_1")] \
            == [it.item_id for it in experiment.test_items("CAT_1")]

    def test_test_items_count(self, experiment):
        assert len(experiment.test_items("CAT_1")) == 25

    def test_head_classifier_cached(self, experiment):
        assert experiment.head_classifier("CAT_1") \
            is experiment.head_classifier("CAT_1")

    def test_build_graphex_alignment_override(self, experiment):
        recommender = experiment.build_graphex("CAT_1", alignment="wmr")
        assert recommender.model.alignment_name == "wmr"

    def test_build_graphex_curation_override(self, experiment):
        tight = experiment.build_graphex(
            "CAT_1", curation=CurationConfig(min_search_count=10**6))
        assert tight.model.n_keyphrases == 0

    def test_metas(self, experiment):
        assert experiment.metas == ["CAT_1", "CAT_2", "CAT_3"]

    def test_predictions_cover_all_test_items(self, experiment):
        predictions = experiment.predictions("CAT_3")
        item_ids = {it.item_id for it in experiment.test_items("CAT_3")}
        for per_item in predictions.values():
            assert set(per_item) == item_ids

    def test_judged_models_match_predictions(self, experiment):
        assert set(experiment.judged("CAT_3")) \
            == set(experiment.predictions("CAT_3"))
