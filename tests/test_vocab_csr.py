"""Unit and property tests for Vocabulary and CSRGraph."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.csr import CSRGraph
from repro.core.vocab import Vocabulary


class TestVocabulary:
    def test_add_assigns_dense_ids(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("c") == 2

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        assert vocab.add("a") == vocab.add("a") == 0
        assert len(vocab) == 1

    def test_get_unknown_returns_none(self):
        assert Vocabulary().get("missing") is None

    def test_token_roundtrip(self):
        vocab = Vocabulary(["x", "y"])
        assert vocab.token(vocab.get("y")) == "y"

    def test_token_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Vocabulary(["x"]).token(5)

    def test_contains(self):
        vocab = Vocabulary(["x"])
        assert "x" in vocab
        assert "y" not in vocab

    def test_iteration_in_id_order(self):
        vocab = Vocabulary(["b", "a", "c"])
        assert list(vocab) == ["b", "a", "c"]

    def test_tokens_returns_copy(self):
        vocab = Vocabulary(["a"])
        vocab.tokens.append("evil")
        assert len(vocab) == 1

    def test_init_dedupes(self):
        vocab = Vocabulary(["a", "a", "b"])
        assert len(vocab) == 2

    @given(st.lists(st.text(min_size=1, max_size=6), max_size=30))
    def test_bijection(self, tokens):
        vocab = Vocabulary(tokens)
        for token in set(tokens):
            assert vocab.token(vocab.get(token)) == token
        assert len(vocab) == len(set(tokens))


edges_strategy = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 14)), max_size=60)


class TestCSRGraph:
    def test_from_edges_basic(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 0)],
                                    n_left=2, n_right=3)
        assert graph.n_left == 2
        assert graph.n_right == 3
        assert graph.n_edges == 3
        assert list(graph.neighbors(0)) == [1, 2]
        assert list(graph.neighbors(1)) == [0]

    def test_edges_are_deduplicated(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 1), (0, 1)],
                                    n_left=1, n_right=2)
        assert graph.n_edges == 1

    def test_adjacency_is_sorted(self):
        graph = CSRGraph.from_edges([(0, 5), (0, 1), (0, 3)],
                                    n_left=1, n_right=6)
        assert list(graph.neighbors(0)) == [1, 3, 5]

    def test_empty_graph(self):
        graph = CSRGraph.from_edges([], n_left=3, n_right=4)
        assert graph.n_edges == 0
        assert list(graph.neighbors(0)) == []
        assert graph.average_degree == 0.0

    def test_isolated_vertices(self):
        graph = CSRGraph.from_edges([(2, 0)], n_left=4, n_right=1)
        assert graph.degree(0) == 0
        assert graph.degree(2) == 1

    def test_out_of_range_left_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(5, 0)], n_left=2, n_right=1)

    def test_out_of_range_right_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(0, 9)], n_left=1, n_right=2)

    def test_negative_vertex_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(-1, 0)], n_left=1, n_right=1)

    def test_neighbors_out_of_range_raises(self):
        graph = CSRGraph.from_edges([(0, 0)], n_left=1, n_right=1)
        with pytest.raises(IndexError):
            graph.neighbors(1)
        with pytest.raises(IndexError):
            graph.neighbors(-1)

    def test_average_degree(self):
        graph = CSRGraph.from_edges([(0, 0), (0, 1), (1, 0)],
                                    n_left=2, n_right=2)
        assert graph.average_degree == pytest.approx(1.5)

    def test_memory_bytes_positive(self):
        graph = CSRGraph.from_edges([(0, 0)], n_left=1, n_right=1)
        assert graph.memory_bytes() > 0

    def test_validate_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]), n_right=1)

    def test_validate_rejects_inconsistent_endpoints(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0, 0]), n_right=1)

    def test_repr_mentions_sizes(self):
        graph = CSRGraph.from_edges([(0, 0)], n_left=1, n_right=1)
        assert "n_edges=1" in repr(graph)

    @given(edges_strategy)
    def test_neighbor_sets_match_edge_list(self, edges):
        graph = CSRGraph.from_edges(edges, n_left=10, n_right=15)
        expected = {}
        for u, v in edges:
            expected.setdefault(u, set()).add(v)
        for u in range(10):
            assert set(graph.neighbors(u).tolist()) == expected.get(u, set())

    @given(edges_strategy)
    def test_edge_count_equals_unique_edges(self, edges):
        graph = CSRGraph.from_edges(edges, n_left=10, n_right=15)
        assert graph.n_edges == len(set(edges))

    @given(edges_strategy)
    def test_degrees_sum_to_edge_count(self, edges):
        graph = CSRGraph.from_edges(edges, n_left=10, n_right=15)
        assert sum(graph.degree(u) for u in range(10)) == graph.n_edges

    @given(edges_strategy)
    def test_indptr_monotone(self, edges):
        graph = CSRGraph.from_edges(edges, n_left=10, n_right=15)
        assert (np.diff(graph.indptr) >= 0).all()
