"""Tests for the repro-graphex command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workflow_dir(tmp_path_factory):
    """Run simulate -> curate -> construct once; share the artifacts."""
    root = tmp_path_factory.mktemp("cli")
    log_path = root / "log.json"
    curated_path = root / "curated.json"
    model_dir = root / "model"
    assert main(["simulate", "--out", str(log_path), "--profile", "tiny",
                 "--events", "8000"]) == 0
    assert main(["curate", "--log", str(log_path), "--out",
                 str(curated_path), "--min-search-count", "3"]) == 0
    assert main(["construct", "--curated", str(curated_path), "--out",
                 str(model_dir)]) == 0
    return root


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--out", "x.json"])
        assert args.profile == "tiny"
        assert args.events == 30_000

    def test_alignment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["construct", "--curated", "c", "--out", "m",
                 "--alignment", "cosine"])

    def test_parallel_defaults_to_thread(self):
        args = build_parser().parse_args(
            ["construct", "--curated", "c", "--out", "m"])
        assert args.parallel == "thread" and args.workers == 1
        args = build_parser().parse_args(
            ["recommend", "--model", "m", "--title", "t", "--leaf", "1"])
        assert args.parallel == "thread" and args.workers == 1

    def test_parallel_choices_enforced(self):
        for command in (["construct", "--curated", "c", "--out", "m"],
                        ["recommend", "--model", "m", "--title", "t",
                         "--leaf", "1"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(command + ["--parallel", "warp"])


class TestWorkflow:
    def test_simulate_output_schema(self, workflow_dir):
        payload = json.loads((workflow_dir / "log.json").read_text())
        assert payload["profile"] == "tiny"
        stat = payload["stats"][0]
        assert set(stat) == {"text", "leaf_id", "search_count",
                             "recall_count"}

    def test_curate_output_schema(self, workflow_dir):
        payload = json.loads((workflow_dir / "curated.json").read_text())
        assert "effective_threshold" in payload
        assert payload["leaves"]
        leaf = next(iter(payload["leaves"].values()))
        assert len(leaf["texts"]) == len(leaf["search_counts"])

    def test_constructed_model_loads(self, workflow_dir):
        from repro.core.serialization import load_model
        model = load_model(workflow_dir / "model")
        assert model.n_leaves > 0

    def test_recommend_prints_results(self, workflow_dir, capsys):
        payload = json.loads((workflow_dir / "curated.json").read_text())
        leaf_id = int(next(iter(payload["leaves"])))
        text = payload["leaves"][str(leaf_id)]["texts"][0]
        assert main(["recommend", "--model",
                     str(workflow_dir / "model"), "--title", text,
                     "--leaf", str(leaf_id), "-k", "5"]) == 0
        out = capsys.readouterr().out
        assert text in out

    def test_recommend_unmatched_title(self, workflow_dir, capsys):
        assert main(["recommend", "--model", str(workflow_dir / "model"),
                     "--title", "zzz qqq xxx", "--leaf", "100"]) == 0
        assert "no recommendations" in capsys.readouterr().out

    def test_recommend_engines_print_identical_output(self, workflow_dir,
                                                      capsys):
        payload = json.loads((workflow_dir / "curated.json").read_text())
        leaf_id = int(next(iter(payload["leaves"])))
        text = payload["leaves"][str(leaf_id)]["texts"][0]
        outputs = {}
        for engine in ("reference", "fast"):
            assert main(["recommend", "--model",
                         str(workflow_dir / "model"), "--title", text,
                         "--leaf", str(leaf_id), "--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["fast"] == outputs["reference"]
        assert text in outputs["fast"]

    def test_recommend_process_parallel_prints_identical_output(
            self, workflow_dir, capsys):
        payload = json.loads((workflow_dir / "curated.json").read_text())
        leaf_id = int(next(iter(payload["leaves"])))
        text = payload["leaves"][str(leaf_id)]["texts"][0]
        outputs = {}
        for parallel in ("thread", "process"):
            assert main(["recommend", "--model",
                         str(workflow_dir / "model"), "--title", text,
                         "--leaf", str(leaf_id), "--parallel", parallel,
                         "--workers", "2"]) == 0
            outputs[parallel] = capsys.readouterr().out
        assert outputs["process"] == outputs["thread"]
        assert text in outputs["process"]

    def test_construct_process_parallel_builds_identical_model(
            self, workflow_dir, tmp_path):
        from repro.core.serialization import load_model
        curated_path = workflow_dir / "curated.json"
        out_dir = tmp_path / "model_process"
        assert main(["construct", "--curated", str(curated_path),
                     "--out", str(out_dir), "--parallel", "process",
                     "--workers", "2"]) == 0
        serial = load_model(workflow_dir / "model")
        sharded = load_model(out_dir)
        assert sharded.leaf_ids == serial.leaf_ids
        for leaf_id in serial.leaf_ids:
            assert (sharded.leaf_graph(leaf_id).word_vocab.tokens
                    == serial.leaf_graph(leaf_id).word_vocab.tokens)
            assert (sharded.leaf_graph(leaf_id).label_texts
                    == serial.leaf_graph(leaf_id).label_texts)

    def test_construct_format_version_round_trips(self, workflow_dir,
                                                  tmp_path):
        """Every writable format the flag offers loads back with the
        same leaves; the default out dir is a format-3 artifact."""
        from repro.core.serialization import (load_model,
                                              model_format_version)
        curated_path = workflow_dir / "curated.json"
        baseline = load_model(workflow_dir / "model")
        assert model_format_version(workflow_dir / "model") == 3
        for version in (1, 2, 3):
            out_dir = tmp_path / f"model_v{version}"
            assert main(["construct", "--curated", str(curated_path),
                         "--out", str(out_dir), "--format-version",
                         str(version)]) == 0
            assert model_format_version(out_dir) == version
            assert load_model(out_dir).leaf_ids == baseline.leaf_ids

    def test_recommend_mmap_prints_identical_output(self, workflow_dir,
                                                    capsys):
        payload = json.loads((workflow_dir / "curated.json").read_text())
        leaf_id = int(next(iter(payload["leaves"])))
        text = payload["leaves"][str(leaf_id)]["texts"][0]
        outputs = {}
        for extra in ([], ["--mmap"]):
            assert main(["recommend", "--model",
                         str(workflow_dir / "model"), "--title", text,
                         "--leaf", str(leaf_id)] + extra) == 0
            outputs[bool(extra)] = capsys.readouterr().out
        assert outputs[True] == outputs[False]
        assert text in outputs[True]

    def test_recommend_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["recommend", "--model", "m", "--title", "t",
                 "--leaf", "1", "--engine", "warp"])

    def test_curated_json_round_trips_curation_config(self, workflow_dir,
                                                      tmp_path):
        """Regression: construct used to rebuild CuratedKeyphrases with
        ``CurationConfig()`` defaults, silently discarding the knobs
        ``curate`` actually ran with."""
        from repro.cli import _load_curated
        from repro.core.curation import CurationConfig

        out = tmp_path / "curated_knobs.json"
        assert main(["curate", "--log", str(workflow_dir / "log.json"),
                     "--out", str(out), "--min-search-count", "5",
                     "--min-keyphrases", "77", "--floor", "3"]) == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["min_search_count"] == 5
        restored = _load_curated(str(out))
        assert restored.config == CurationConfig(
            min_search_count=5, min_keyphrases=77, floor_search_count=3)

    def test_construct_accepts_legacy_curated_json(self, workflow_dir,
                                                   tmp_path):
        """Curated files written before the config block still load,
        falling back to defaults (the old behavior, now explicit)."""
        from repro.cli import _load_curated
        from repro.core.curation import CurationConfig

        payload = json.loads((workflow_dir / "curated.json").read_text())
        payload.pop("config")
        legacy = tmp_path / "legacy.json"
        legacy.write_text(json.dumps(payload))
        assert _load_curated(str(legacy)).config == CurationConfig()
        assert main(["construct", "--curated", str(legacy), "--out",
                     str(tmp_path / "legacy_model")]) == 0

    def test_serve_nrt_demo_runs_multi_stream(self, workflow_dir, capsys):
        assert main(["serve-nrt", "--model", str(workflow_dir / "model"),
                     "--streams", "3", "--events", "40",
                     "--window-size", "8"]) == 0
        out = capsys.readouterr().out
        for stream in ("stream-0", "stream-1", "stream-2"):
            assert stream in out
        assert "0 flush failures" in out
        assert "120 events across 3 streams" in out

    def test_serve_nrt_mid_run_refresh_demo(self, workflow_dir, capsys):
        """--refresh-after hot-swaps a freshly loaded model mid-run:
        the run completes with zero flush failures and the per-stream
        window summary shows generation-1 windows."""
        assert main(["serve-nrt", "--model", str(workflow_dir / "model"),
                     "--streams", "2", "--events", "30",
                     "--window-size", "8", "--refresh-after", "10"]) == 0
        out = capsys.readouterr().out
        assert "hot-swapped to model generation 1" in out
        assert "gen 1:" in out
        assert "0 flush failures" in out
        assert "60 events across 2 streams" in out

    def test_serve_nrt_rejects_bad_engine_pairing(self, workflow_dir):
        with pytest.raises(ValueError, match="single-process"):
            main(["serve-nrt", "--model", str(workflow_dir / "model"),
                  "--engine", "reference", "--parallel", "process"])


class TestExecutorFlag:
    """ISSUE 8: the unified --executor flag (with --parallel aliased)."""

    def test_executor_defaults_to_none(self):
        args = build_parser().parse_args(
            ["construct", "--curated", "c", "--out", "m"])
        assert args.executor is None and args.parallel == "thread"
        args = build_parser().parse_args(
            ["recommend", "--model", "m", "--title", "t", "--leaf", "1"])
        assert args.executor is None and args.parallel == "thread"

    def test_executor_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["construct", "--curated", "c", "--out", "m",
                 "--executor", "warp"])
        # A long-lived service keeps its own cluster; serve-nrt offers
        # only the in-process substrates.
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-nrt", "--model", "m", "--executor", "cluster"])
        args = build_parser().parse_args(
            ["recommend", "--model", "m", "--title", "t", "--leaf", "1",
             "--executor", "cluster"])
        assert args.executor == "cluster"

    def _recommend_output(self, workflow_dir, capsys, *extra):
        payload = json.loads((workflow_dir / "curated.json").read_text())
        leaf_id = int(next(iter(payload["leaves"])))
        text = payload["leaves"][str(leaf_id)]["texts"][0]
        assert main(["recommend", "--model", str(workflow_dir / "model"),
                     "--title", text, "--leaf", str(leaf_id),
                     *extra]) == 0
        return capsys.readouterr().out

    def test_recommend_executors_print_identical_output(
            self, workflow_dir, capsys):
        outputs = {
            name: self._recommend_output(
                workflow_dir, capsys, "--executor", name,
                "--workers", "2")
            for name in ("serial", "thread", "process")}
        assert outputs["thread"] == outputs["serial"]
        assert outputs["process"] == outputs["serial"]

    def test_recommend_executor_cluster_identical(self, workflow_dir,
                                                  capsys):
        """--executor cluster boots a localhost fleet, serves the same
        bytes, and tears the fleet down before exiting."""
        baseline = self._recommend_output(workflow_dir, capsys)
        clustered = self._recommend_output(workflow_dir, capsys,
                                           "--executor", "cluster")
        assert clustered == baseline

    def test_recommend_executor_wins_over_parallel_alias(
            self, workflow_dir, capsys):
        aliased = self._recommend_output(workflow_dir, capsys,
                                         "--parallel", "thread")
        explicit = self._recommend_output(workflow_dir, capsys,
                                          "--executor", "serial",
                                          "--parallel", "thread")
        assert explicit == aliased

    def test_construct_executor_serial_builds_identical_model(
            self, workflow_dir, tmp_path):
        from repro.core.serialization import load_model
        out_dir = tmp_path / "model_serial"
        assert main(["construct", "--curated",
                     str(workflow_dir / "curated.json"),
                     "--out", str(out_dir),
                     "--executor", "serial"]) == 0
        serial = load_model(workflow_dir / "model")
        rebuilt = load_model(out_dir)
        assert rebuilt.leaf_ids == serial.leaf_ids
        for leaf_id in serial.leaf_ids:
            assert (rebuilt.leaf_graph(leaf_id).label_texts
                    == serial.leaf_graph(leaf_id).label_texts)

    def test_recommend_rejects_bad_executor_pairing(self, workflow_dir):
        with pytest.raises(ValueError, match="single-process"):
            main(["recommend", "--model", str(workflow_dir / "model"),
                  "--title", "t", "--leaf", "1",
                  "--engine", "reference", "--executor", "process"])


class TestClusterCLI:
    """ISSUE 7: the cluster-worker / cluster-run commands."""

    def test_cluster_worker_rejects_malformed_connect(self, capsys):
        assert main(["cluster-worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_cluster_worker_rejects_non_numeric_port(self, capsys):
        assert main(["cluster-worker", "--connect", "localhost:abc"]) == 2

    def test_cluster_run_verifies_identical(self, workflow_dir, capsys):
        rc = main(["cluster-run", "--model",
                   str(workflow_dir / "model"), "--spawn-workers", "2",
                   "--requests", "24", "--rpc-timeout", "20.0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified_identical: True" in out

    def test_cluster_run_survives_killed_machine(self, workflow_dir,
                                                 capsys):
        """One subprocess machine hard-exits on its first shard; the
        run must still verify through dead-host re-planning."""
        rc = main(["cluster-run", "--model",
                   str(workflow_dir / "model"), "--spawn-workers", "2",
                   "--kill-after", "0", "--requests", "24",
                   "--rpc-timeout", "20.0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified_identical: True" in out
        assert "n_replans: 1" in out or "n_local_units" in out


class TestLintCLI:
    """ISSUE 9: the `lint` subcommand fronts repro.analysis."""

    def test_lint_repo_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "repro-lint: 0 violation(s)" in capsys.readouterr().out

    def test_lint_quiet_suppresses_output_on_success(self, capsys):
        assert main(["lint", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("async-no-blocking", "store-lock-discipline",
                        "monotonic-clock", "no-pickle-boundary",
                        "lazy-import-contract", "mmap-write-safety"):
            assert rule_id in out

    def test_lint_writes_json_report(self, tmp_path, capsys):
        report_path = tmp_path / "reports" / "lint.json"
        assert main(["lint", "--json", str(report_path),
                     "--quiet"]) == 0
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["tool"] == "repro-lint"
        assert payload["ok"] is True
        assert payload["n_violations"] == 0

    def test_lint_single_rule_filter(self, capsys):
        assert main(["lint", "--rule", "monotonic-clock",
                     "--quiet"]) == 0

    def test_lint_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--rule", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_finds_violations_in_bad_tree(self, tmp_path, capsys):
        """A synthetic package with a wall-clock timer read exits 1
        and renders the finding."""
        package = tmp_path / "repro"
        (package / "cluster").mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "cluster" / "__init__.py").write_text("")
        (package / "cluster" / "timers.py").write_text(
            "import time\n\n\ndef deadline(t0, budget):\n"
            "    return time.time() - t0 > budget\n",
            encoding="utf-8")
        assert main(["lint", "--root", str(package)]) == 1
        assert "monotonic-clock" in capsys.readouterr().out


class TestMetricsCLI:
    """ISSUE 10: snapshot export flags and the `metrics` subcommand."""

    def _two_snapshots(self, tmp_path):
        from repro.obs import MetricsRegistry, dump_snapshot

        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("nrt.events", 3, stream="s")
        a.observe("nrt.window.flush_seconds", 0.002, stream="s")
        a.gauge("nrt.window.depth", 5.0, stream="s")
        b.inc("nrt.events", 4, stream="s")
        b.observe("nrt.window.flush_seconds", 0.004, stream="s")
        b.gauge("nrt.window.depth", 2.0, stream="s")
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        dump_snapshot(a.snapshot(), str(path_a))
        dump_snapshot(b.snapshot(), str(path_b))
        return path_a, path_b

    def test_serve_nrt_metrics_out_writes_valid_snapshot(
            self, workflow_dir, tmp_path, capsys):
        from repro.obs import load_snapshot

        out = tmp_path / "nrt-metrics.json"
        assert main(["serve-nrt", "--model",
                     str(workflow_dir / "model"), "--streams", "2",
                     "--events", "40", "--metrics-out", str(out)]) == 0
        snapshot = load_snapshot(str(out))  # validates the schema
        counters = snapshot["counters"]
        per_stream = [counters[f"nrt.events{{stream=stream-{i}}}"]
                      for i in range(2)]
        assert per_stream == [40, 40]  # --events is per stream
        assert counters["front.submitted{stream=stream-0}"] \
            == per_stream[0]
        assert "wrote metrics snapshot" in capsys.readouterr().out

    def test_metrics_renders_single_snapshot(self, tmp_path, capsys):
        path_a, _ = self._two_snapshots(tmp_path)
        assert main(["metrics", str(path_a)]) == 0
        out = capsys.readouterr().out
        assert "nrt.events{stream=s} = 3" in out
        assert "nrt.window.flush_seconds{stream=s}: n=1" in out

    def test_metrics_merges_exactly(self, tmp_path, capsys):
        from repro.obs import load_snapshot

        path_a, path_b = self._two_snapshots(tmp_path)
        merged_path = tmp_path / "merged.json"
        assert main(["metrics", str(path_a), str(path_b),
                     "--merge-out", str(merged_path)]) == 0
        merged = load_snapshot(str(merged_path))
        assert merged["counters"]["nrt.events{stream=s}"] == 7
        hist = merged["histograms"][
            "nrt.window.flush_seconds{stream=s}"]
        assert hist["count"] == 2
        # Gauge extremes survive the merge (value is last-writer-wins).
        value, vmax, vmin = merged["gauges"][
            "nrt.window.depth{stream=s}"]
        assert (vmax, vmin) == (5.0, 2.0)

    def test_metrics_rejects_malformed_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema_version": 999}', encoding="utf-8")
        assert main(["metrics", str(bad)]) == 2
        assert "cannot read/merge" in capsys.readouterr().err
