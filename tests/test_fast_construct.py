"""Equivalence suite: the bulk construction engine vs the scalar path.

The fast builder (:mod:`repro.core.fast_construct`) and the vectorized
curation (:func:`repro.core.curation.fast_curate`) are only trustworthy
if they are *bit-identical* to the scalar reference — same vocab id
order, same CSR arrays, same label arrays, same leaf insertion order —
on any input.  These tests pin that property with hypothesis-generated
random stats, curation configs and tokenizers, plus directed
regressions for the edge cases (empty-tokenizing texts, empty leaves,
thread sharding, the shared token cache) and the
:meth:`CSRGraph.from_arrays` fast path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import batch_recommend
from repro.core.csr import CSRGraph
from repro.core.curation import (CurationConfig, CuratedKeyphrases,
                                 CuratedLeaf, curate, fast_curate)
from repro.core.fast_construct import build_leaf_graph_fast
from repro.core.model import GraphExModel, build_leaf_graph
from repro.core.tokenize import (DEFAULT_TOKENIZER, STEMMING_TOKENIZER,
                                 SpaceTokenizer, TokenCache)
from repro.search.logs import KeyphraseStat

#: Token universe: plain words plus normalization/stemming stressors.
TOKENS = ([f"w{i}" for i in range(14)]
          + ["Mixed-CASE!", "16gb", "..", "headphones", "wi-fi", "1:64"])

TOKENIZERS = [DEFAULT_TOKENIZER, STEMMING_TOKENIZER,
              SpaceTokenizer(drop_stopwords=("w0", "for"))]

phrase = st.lists(st.sampled_from(TOKENS), min_size=1, max_size=5) \
    .map(" ".join)
stats_strategy = st.lists(
    st.builds(KeyphraseStat,
              text=phrase,
              leaf_id=st.integers(1, 5),
              search_count=st.integers(1, 60),
              recall_count=st.integers(1, 60)),
    min_size=0, max_size=60)
config_strategy = st.builds(
    CurationConfig,
    min_search_count=st.integers(1, 50),
    min_keyphrases=st.integers(0, 40),
    floor_search_count=st.integers(1, 6),
    max_tokens=st.integers(2, 6),
    min_tokens=st.integers(1, 2))


def assert_curations_identical(reference, fast):
    """Leaf key order, per-leaf order, values and threshold all equal."""
    assert fast.effective_threshold == reference.effective_threshold
    assert list(fast.leaves) == list(reference.leaves)
    for leaf_id, ref_leaf in reference.leaves.items():
        fast_leaf = fast.leaves[leaf_id]
        assert fast_leaf.leaf_id == ref_leaf.leaf_id
        assert fast_leaf.texts == ref_leaf.texts
        assert fast_leaf.search_counts == ref_leaf.search_counts
        assert fast_leaf.recall_counts == ref_leaf.recall_counts


def assert_leaf_graphs_identical(reference, fast):
    """Bit-identity: vocab id order, CSR arrays, label arrays, dtypes."""
    assert fast.leaf_id == reference.leaf_id
    assert fast.word_vocab.tokens == reference.word_vocab.tokens
    assert np.array_equal(fast.graph.indptr, reference.graph.indptr)
    assert fast.graph.indptr.dtype == reference.graph.indptr.dtype
    assert np.array_equal(fast.graph.indices, reference.graph.indices)
    assert fast.graph.indices.dtype == reference.graph.indices.dtype
    assert fast.graph.n_right == reference.graph.n_right
    assert fast.label_texts == reference.label_texts
    assert np.array_equal(fast.label_lengths, reference.label_lengths)
    assert fast.label_lengths.dtype == reference.label_lengths.dtype
    assert np.array_equal(fast.search_counts, reference.search_counts)
    assert np.array_equal(fast.recall_counts, reference.recall_counts)


def assert_models_identical(reference, fast):
    assert fast.leaf_ids == reference.leaf_ids
    for leaf_id in reference.leaf_ids:
        assert_leaf_graphs_identical(reference.leaf_graph(leaf_id),
                                     fast.leaf_graph(leaf_id))
    assert (fast.pooled_graph is None) == (reference.pooled_graph is None)
    if reference.pooled_graph is not None:
        assert_leaf_graphs_identical(reference.pooled_graph,
                                     fast.pooled_graph)


class TestFastCuration:
    @given(stats=stats_strategy, config=config_strategy)
    @settings(max_examples=80, deadline=None)
    def test_fast_curate_matches_reference(self, stats, config):
        assert_curations_identical(
            curate(stats, config, engine="reference"),
            fast_curate(stats, config))

    @given(stats=stats_strategy, config=config_strategy)
    @settings(max_examples=20, deadline=None)
    def test_engine_dispatch(self, stats, config):
        assert_curations_identical(
            curate(stats, config, engine="reference"),
            curate(stats, config, engine="fast"))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            curate([], CurationConfig(), engine="turbo")

    def test_empty_stats_still_relaxes_threshold(self):
        """The scalar loop halves the threshold even with zero stats;
        the fast path must record the same effective threshold."""
        config = CurationConfig(min_search_count=40, min_keyphrases=10,
                                floor_search_count=4)
        assert_curations_identical(curate([], config, engine="reference"),
                                   fast_curate([], config))
        assert fast_curate([], config).effective_threshold == 4

    def test_leaf_insertion_order_is_first_occurrence(self):
        """Leaf 7 appears before leaf 2 in the stream, so it must come
        first in the dict (the pooled merge iterates this order)."""
        stats = [KeyphraseStat("a b", 7, 9, 1),
                 KeyphraseStat("c d", 2, 9, 1),
                 KeyphraseStat("e f", 7, 9, 1)]
        fast = fast_curate(stats, CurationConfig(min_search_count=1))
        assert list(fast.leaves) == [7, 2]
        assert_curations_identical(
            curate(stats, CurationConfig(min_search_count=1),
                   engine="reference"), fast)


class TestFastBuilder:
    @given(stats=stats_strategy, config=config_strategy,
           tokenizer_index=st.integers(0, len(TOKENIZERS) - 1),
           build_pooled=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_models_bit_identical(self, stats, config, tokenizer_index,
                                  build_pooled):
        curated = curate(stats, config)
        tokenizer = TOKENIZERS[tokenizer_index]
        reference = GraphExModel.construct(
            curated, tokenizer=tokenizer, build_pooled=build_pooled,
            builder="reference")
        fast = GraphExModel.construct(
            curated, tokenizer=tokenizer, build_pooled=build_pooled,
            builder="fast")
        assert_models_identical(reference, fast)

    @given(stats=stats_strategy, workers=st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_thread_sharded_build_bit_identical(self, stats, workers):
        curated = curate(stats, CurationConfig(min_search_count=1))
        reference = GraphExModel.construct(curated, build_pooled=True,
                                           builder="reference")
        fast = GraphExModel.construct(curated, build_pooled=True,
                                      builder="fast", workers=workers)
        assert_models_identical(reference, fast)

    @given(stats=stats_strategy, workers=st.integers(2, 3),
           tokenizer_index=st.integers(0, len(TOKENIZERS) - 1))
    @settings(max_examples=5, deadline=None)
    def test_process_sharded_build_bit_identical(self, stats, workers,
                                                 tokenizer_index):
        """Whole-leaf shards in worker processes with per-shard token
        caches (merged afterwards): the model — including the pooled
        graph built from the merged cache — is bit-identical to the
        scalar reference (few examples — each spawns a pool)."""
        tokenizer = TOKENIZERS[tokenizer_index]
        curated = curate(stats, CurationConfig(min_search_count=1))
        reference = GraphExModel.construct(curated, tokenizer=tokenizer,
                                           build_pooled=True,
                                           builder="reference")
        sharded = GraphExModel.construct(curated, tokenizer=tokenizer,
                                         build_pooled=True,
                                         builder="fast", workers=workers,
                                         parallel="process")
        assert_models_identical(reference, sharded)

    def test_reference_builder_rejects_process_parallel(self):
        curated = curate([KeyphraseStat("a b", 1, 9, 1)],
                         CurationConfig(min_search_count=1))
        with pytest.raises(ValueError, match="single-process"):
            GraphExModel.construct(curated, builder="reference",
                                   parallel="process")

    def test_unknown_parallel_mode_rejected(self):
        curated = curate([], CurationConfig(min_search_count=1))
        with pytest.raises(ValueError, match="parallel mode"):
            GraphExModel.construct(curated, parallel="fiber")

    @given(stats=stats_strategy, config=config_strategy,
           k=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_recommendations_element_wise_identical(self, stats, config,
                                                    k):
        """End to end: fast curation + fast builder serves the exact
        ranked output of the all-scalar pipeline."""
        reference = GraphExModel.construct(
            curate(stats, config, engine="reference"),
            build_pooled=True, builder="reference")
        fast = GraphExModel.construct(
            fast_curate(stats, config), build_pooled=True, builder="fast")
        requests = [(i, stat.text, stat.leaf_id)
                    for i, stat in enumerate(stats)]
        ref_out = batch_recommend(reference, requests, k=k,
                                  engine="reference")
        fast_out = batch_recommend(fast, requests, k=k, engine="fast")
        assert fast_out.keys() == ref_out.keys()
        for item_id in ref_out:
            assert fast_out[item_id] == ref_out[item_id]

    def test_empty_tokenizing_texts(self):
        """Keyphrases that tokenize to nothing: empty vocab, |l| = 1."""
        leaf = CuratedLeaf(leaf_id=1, texts=["!!!", "???"],
                           search_counts=[5, 4], recall_counts=[1, 2])
        reference = build_leaf_graph(leaf, DEFAULT_TOKENIZER)
        fast = build_leaf_graph_fast(leaf, TokenCache(DEFAULT_TOKENIZER))
        assert_leaf_graphs_identical(reference, fast)
        assert len(fast.word_vocab) == 0
        assert fast.label_lengths.tolist() == [1, 1]

    def test_small_leaf_over_huge_pool_uses_unique_fallback(self):
        """A pool far larger than the leaf routes interning through the
        np.unique fallback; output stays bit-identical."""
        cache = TokenCache(DEFAULT_TOKENIZER)
        cache.unique_ids(" ".join(f"filler{i}" for i in range(2000)))
        leaf = CuratedLeaf(leaf_id=1, texts=["w1 w0 w1", "w2 w0"],
                           search_counts=[5, 4], recall_counts=[1, 2])
        fast = build_leaf_graph_fast(leaf, cache)
        reference = build_leaf_graph(leaf, DEFAULT_TOKENIZER)
        assert_leaf_graphs_identical(reference, fast)

    def test_empty_leaves_skipped(self):
        curated = CuratedKeyphrases(
            leaves={1: CuratedLeaf(leaf_id=1)}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        model = GraphExModel.construct(curated, builder="fast")
        assert model.n_leaves == 0

    def test_unknown_builder_rejected(self):
        curated = CuratedKeyphrases(
            leaves={}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        with pytest.raises(ValueError, match="builder"):
            GraphExModel.construct(curated, builder="turbo")

    def test_duplicate_texts_across_leaves_share_cache(self):
        """The shared pool interns each distinct text's token ids once."""
        cache = TokenCache(DEFAULT_TOKENIZER)
        leaf_a = CuratedLeaf(leaf_id=1, texts=["gaming headset pro"],
                             search_counts=[3], recall_counts=[1])
        leaf_b = CuratedLeaf(leaf_id=2, texts=["gaming headset pro"],
                             search_counts=[9], recall_counts=[2])
        graph_a = build_leaf_graph_fast(leaf_a, cache)
        graph_b = build_leaf_graph_fast(leaf_b, cache)
        assert len(cache) == 3  # pool grew once, not twice
        assert graph_a.word_vocab.tokens == graph_b.word_vocab.tokens


class TestTokenCache:
    @given(text=st.lists(st.sampled_from(TOKENS + ["  ", "ZZZ..."]),
                         min_size=0, max_size=8).map(" ".join),
           tokenizer_index=st.integers(0, len(TOKENIZERS) - 1))
    @settings(max_examples=60, deadline=None)
    def test_unique_ids_match_direct_tokenization(self, text,
                                                  tokenizer_index):
        """The memoized per-raw-token path reproduces the tokenizer."""
        tokenizer = TOKENIZERS[tokenizer_index]
        cache = TokenCache(tokenizer)
        expected = list(dict.fromkeys(tokenizer(text)))
        assert cache.tokens_for(cache.unique_ids(text)) == expected
        # Second call is served from the text memo, same ids.
        assert cache.tokens_for(cache.unique_ids(text)) == expected

    def test_non_space_tokenizer_falls_back_to_callable(self):
        bigrams = lambda text: [text[i:i + 2]
                                for i in range(0, len(text) - 1, 2)]
        cache = TokenCache(bigrams)
        assert cache.tokens_for(cache.unique_ids("abcd")) == ["ab", "cd"]


class TestFromArrays:
    def test_from_arrays_matches_from_edges(self):
        edges = [(0, 1), (0, 0), (2, 1), (0, 1)]
        via_edges = CSRGraph.from_edges(edges, n_left=3, n_right=2)
        via_arrays = CSRGraph.from_arrays(via_edges.indptr.copy(),
                                          via_edges.indices.copy(),
                                          n_right=2)
        assert np.array_equal(via_arrays.indptr, via_edges.indptr)
        assert np.array_equal(via_arrays.indices, via_edges.indices)

    def test_from_arrays_validates_by_default(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRGraph.from_arrays(np.array([0, 5]),
                                 np.array([0], dtype=np.int32), n_right=2)

    def test_from_arrays_can_skip_validation(self):
        graph = CSRGraph.from_arrays(np.array([0, 5]),
                                     np.array([0], dtype=np.int32),
                                     n_right=2, validate=False)
        with pytest.raises(ValueError):
            graph.validate()

    def test_from_edges_still_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            CSRGraph.from_edges([(0, 5)], n_left=1, n_right=2)
        with pytest.raises(ValueError, match="negative"):
            CSRGraph.from_edges([(-1, 0)], n_left=1, n_right=2)
