"""Unit tests for the process-shard subsystem (ShardPlan, executor,
token-cache state merge).

The element-wise/bit-identity of the process paths against the scalar
references is pinned property-based in the engine equivalence suites
(``test_fast_inference.py``, ``test_fast_construct.py``); this module
covers the planning/merging machinery itself.
"""

from __future__ import annotations

import pytest

from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.fast_inference import LeafBatchRunner
from repro.core.model import GraphExModel
from repro.core.sharding import (POOLED_GROUP, PARALLEL_MODES,
                                 ProcessShardExecutor, ShardPlan,
                                 validate_parallel)
from repro.core.tokenize import DEFAULT_TOKENIZER, TokenCache


def make_model(leaf_phrases, build_pooled=False):
    leaves = {}
    for leaf_id, phrases in leaf_phrases.items():
        leaf = CuratedLeaf(leaf_id=leaf_id)
        for text, search, recall in phrases:
            leaf.add(text, search, recall)
        leaves[leaf_id] = leaf
    curated = CuratedKeyphrases(
        leaves=leaves, effective_threshold=1,
        config=CurationConfig(min_search_count=1))
    return GraphExModel.construct(curated, build_pooled=build_pooled)


class TestValidateParallel:
    def test_modes_accepted(self):
        for mode in PARALLEL_MODES:
            validate_parallel(mode)
            validate_parallel(mode, engine="fast")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="parallel mode"):
            validate_parallel("fiber")

    def test_process_requires_fast(self):
        with pytest.raises(ValueError, match="semantics reference"):
            validate_parallel("process", engine="reference")
        validate_parallel("thread", engine="reference")  # thread is fine


class TestShardPlan:
    def test_lpt_balance(self):
        """Largest cost first, each onto the lightest shard."""
        plan = ShardPlan.balance([("a", 5), ("b", 4), ("c", 3), ("d", 3)],
                                 2)
        assert plan.shards == (("a", "d"), ("b", "c"))
        assert plan.shard_costs == [8, 7]
        assert plan.total_cost == 15

    def test_deterministic_ties_by_input_order(self):
        costs = [(1, 2), (2, 2), (3, 2), (4, 2)]
        assert ShardPlan.balance(costs, 2) == ShardPlan.balance(costs, 2)
        assert ShardPlan.balance(costs, 2).shards == ((1, 3), (2, 4))

    def test_clamps_shards_to_keys(self):
        plan = ShardPlan.balance([(1, 1), (2, 1)], 8)
        assert plan.n_shards == 2
        assert all(len(shard) == 1 for shard in plan.shards)

    def test_empty_costs_empty_plan(self):
        plan = ShardPlan.balance([], 4)
        assert plan.n_shards == 0
        assert plan.total_cost == 0

    def test_every_key_planned_exactly_once(self):
        costs = [(key, key % 3 + 1) for key in range(17)]
        plan = ShardPlan.balance(costs, 4)
        planned = [key for shard in plan.shards for key in shard]
        assert sorted(planned) == list(range(17))

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardPlan.balance([(1, 2), (1, 3)], 2)
        with pytest.raises(ValueError, match="planned twice"):
            ShardPlan([(1,), (1,)], {1: 2})

    def test_key_without_cost_rejected(self):
        with pytest.raises(ValueError, match="no cost"):
            ShardPlan([(1, 2)], {1: 3})

    def test_costs_for_unplanned_keys_rejected(self):
        """An extra cost entry would silently drop in to_json, breaking
        the exact round-trip."""
        with pytest.raises(ValueError, match="unplanned"):
            ShardPlan([(1,)], {1: 2, 99: 5})

    def test_json_roundtrip(self):
        plan = ShardPlan.balance([(i, (i * 7) % 5 + 1) for i in range(9)],
                                 3)
        restored = ShardPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.shard_costs == plan.shard_costs


class TestInferencePlanning:
    def test_groups_mirror_leaf_graph_resolution(self):
        """Known leaves group by leaf id, unknown leaves pool together,
        graph-less requests are excluded from the plan."""
        model = make_model({1: [("w0 w1", 5, 1)], 2: [("w2", 4, 1)]},
                           build_pooled=True)
        requests = [(0, "w0", 1), (1, "w0", 99), (2, "w2", 2),
                    (3, "w0", 1), (4, "w1", 123)]
        plan, groups = ProcessShardExecutor(2).plan_inference(model,
                                                              requests)
        assert groups == {1: [0, 3], POOLED_GROUP: [1, 4], 2: [2]}
        assert plan.cost_of(1) == 2
        assert plan.cost_of(POOLED_GROUP) == 2
        assert plan.total_cost == 5

    def test_no_pooled_fallback_excludes_unknown_leaves(self):
        model = make_model({1: [("w0 w1", 5, 1)]})
        plan, groups = ProcessShardExecutor(2).plan_inference(
            model, [(0, "w0", 1), (1, "w0", 99)])
        assert groups == {1: [0]}
        out = ProcessShardExecutor(2).run_inference(
            model, [(0, "w0", 1), (1, "w0", 99)], k=5)
        assert out[1] == []


class TestProcessShardExecutor:
    def _world(self):
        return make_model(
            {leaf_id: [(f"w{j} w{(j + leaf_id) % 6}", 9 - j, j + 1)
                       for j in range(5)]
             for leaf_id in (1, 2, 3)},
            build_pooled=True)

    def _requests(self):
        return [(i, f"w{i % 6} w{(i + 1) % 6}", (i % 4) + 1)
                for i in range(30)]

    def test_single_worker_runs_in_process(self):
        model = self._world()
        requests = self._requests()
        out = ProcessShardExecutor(1).run_inference(model, requests, k=5)
        assert out == LeafBatchRunner(model, k=5).run(requests)

    def test_multi_worker_identical_to_thread_path(self):
        model = self._world()
        requests = self._requests()
        out = ProcessShardExecutor(3).run_inference(model, requests, k=5)
        assert out == LeafBatchRunner(model, k=5).run(requests)

    def test_construction_single_worker_in_process(self):
        model = self._world()
        curated = CuratedKeyphrases(
            leaves={1: CuratedLeaf(leaf_id=1, texts=["w0 w1"],
                                   search_counts=[3], recall_counts=[1])},
            effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        graphs, cache = ProcessShardExecutor(1).run_construction(
            curated, DEFAULT_TOKENIZER)
        assert list(graphs) == [1]
        assert len(cache) == 2  # built in-parent: pool was populated

    def test_empty_curation(self):
        curated = CuratedKeyphrases(
            leaves={}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        graphs, cache = ProcessShardExecutor(2).run_construction(
            curated, DEFAULT_TOKENIZER)
        assert graphs == {}
        assert len(cache) == 0

    def test_artifact_return_path_bit_identical_to_thread(self):
        """ISSUE 6: multi-worker construction ships graphs back as
        zero-copy leaf bundles, never pickled objects — and the result
        is bit-identical to the in-process fast builder."""
        leaf_phrases = {
            leaf_id: [(f"w{j} w{(j + leaf_id) % 6} extra{leaf_id}",
                       9 - j, j + 1) for j in range(8)]
            for leaf_id in (1, 2, 3, 4)}
        thread = make_model(leaf_phrases, build_pooled=True)
        leaves = {}
        for leaf_id, phrases in leaf_phrases.items():
            leaf = CuratedLeaf(leaf_id=leaf_id)
            for text, search, recall in phrases:
                leaf.add(text, search, recall)
            leaves[leaf_id] = leaf
        curated = CuratedKeyphrases(
            leaves=leaves, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        process = GraphExModel.construct(curated, build_pooled=True,
                                         workers=2, parallel="process")
        assert process.leaf_ids == thread.leaf_ids
        import numpy as np
        for leaf_id in thread.leaf_ids + [None]:
            a = (thread.pooled_graph if leaf_id is None
                 else thread.leaf_graph(leaf_id))
            b = (process.pooled_graph if leaf_id is None
                 else process.leaf_graph(leaf_id))
            assert b.word_vocab.tokens == a.word_vocab.tokens
            assert np.array_equal(b.graph.indptr, a.graph.indptr)
            assert np.array_equal(b.graph.indices, a.graph.indices)
            assert list(b.label_texts) == list(a.label_texts)
            assert np.array_equal(b.label_lengths, a.label_lengths)
            assert np.array_equal(b.search_counts, a.search_counts)
            assert np.array_equal(b.recall_counts, a.recall_counts)
        # The leaves really did come back through the mapped bundles:
        # worker-built graphs are read-only views over the staged
        # artifact (the pooled graph is assembled in-parent).
        for leaf_id in process.leaf_ids:
            assert process.leaf_graph(leaf_id).graph.is_readonly


class TestTokenCacheStateMerge:
    def test_absorb_remaps_onto_local_ids(self):
        donor = TokenCache(DEFAULT_TOKENIZER)
        donor.unique_ids("gaming headset pro")
        parent = TokenCache(DEFAULT_TOKENIZER)
        parent.unique_ids("wireless headset")
        parent.absorb_state(donor.export_state())
        # Donor tokens landed after the parent's, memo entries remapped.
        assert parent.tokens_for(parent.unique_ids("gaming headset pro")) \
            == ["gaming", "headset", "pro"]
        assert parent.tokens_for(parent.unique_ids("wireless headset")) \
            == ["wireless", "headset"]
        assert len(parent) == 4  # headset interned once

    def test_absorb_order_is_deterministic(self):
        def shard_state(texts):
            cache = TokenCache(DEFAULT_TOKENIZER)
            for text in texts:
                cache.unique_ids(text)
            return cache.export_state()

        states = [shard_state(["a b c"]), shard_state(["c d", "b e"])]
        merged_a = TokenCache(DEFAULT_TOKENIZER)
        merged_b = TokenCache(DEFAULT_TOKENIZER)
        for state in states:
            merged_a.absorb_state(state)
            merged_b.absorb_state(state)
        assert merged_a.export_state() == merged_b.export_state()

    def test_absorb_preserves_dropped_raws(self):
        donor = TokenCache(DEFAULT_TOKENIZER)
        donor.unique_ids("good !!! words")  # "!!!" normalizes away
        parent = TokenCache(DEFAULT_TOKENIZER)
        parent.absorb_state(donor.export_state())
        assert parent.resolve_raws(["!!!"]) == [-1]
        assert parent.tokens_for(parent.resolve_raws(["good", "words"])) \
            == ["good", "words"]


class TestLazyImportCycleContract:
    """``validate_model_for_engine`` (repro.core.batch) imports
    ``sharding`` and ``fast_inference`` *inside* the call: a top-level
    import would close the cycle batch -> sharding -> fast_inference ->
    batch.  Pinned in fresh interpreters so a refactor that hoists the
    imports fails here, not as a bootstrap-order-dependent ImportError
    in production.

    The *static* half of this contract (no module-level cycle imports,
    declared lazy edges stay function-scoped) moved to the repo-wide
    ``lazy-import-contract`` rule in :mod:`repro.analysis` — only the
    runtime fresh-interpreter probes remain here."""

    def _fresh_python(self, code: str) -> None:
        import os
        import subprocess
        import sys
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              cwd=os.path.dirname(os.path.dirname(
                                  os.path.abspath(__file__))),
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr

    def test_import_order_is_irrelevant(self):
        # Either module may bootstrap first; the validator still works.
        for first in ("repro.core.sharding", "repro.core.batch",
                      "repro.core.fast_inference"):
            self._fresh_python(
                f"import {first}\n"
                "from repro.core.batch import validate_model_for_engine\n"
                "from tests.conftest import build_fig3_curated\n"
                "from repro.core.model import GraphExModel\n"
                "model = GraphExModel.construct(build_fig3_curated())\n"
                "validate_model_for_engine(model, 'fast', 'process')\n")

    def test_validator_probes_after_lazy_import(self):
        """The call itself exercises both lazy imports: parallel-mode
        validation (sharding) and the runner probe (fast_inference)."""
        from repro.core.batch import validate_model_for_engine
        model = make_model({1: [("gaming headset", 5, 5)]})
        validate_model_for_engine(model, "fast", "process")
        with pytest.raises(ValueError, match="semantics reference"):
            validate_model_for_engine(model, "reference", "process")


class TestDifferentialUpdateProcessShards:
    def test_duplicate_item_ids_across_process_shards_last_wins(self):
        """``differential_update(parallel='process')`` with the same
        item id re-inferred in requests that land on *different* shards
        (different leaf groups) must keep the last request, exactly like
        the single-process paths."""
        from repro.core.batch import differential_update

        model = make_model({
            leaf_id: [(f"shard{leaf_id} phrase {i}", 5 + i, 5)
                      for i in range(4)]
            for leaf_id in (1, 2, 3, 4)})
        previous = {7: [], 99: []}
        # Item 7 appears three times, targeting three different leaves —
        # the LPT plan spreads those leaf groups across shards.
        changed = [
            (7, "shard1 phrase 0", 1),
            (8, "shard2 phrase 1", 2),
            (7, "shard3 phrase 2", 3),
            (9, "shard4 phrase 3", 4),
            (7, "shard2 phrase 0", 2),   # last one wins
        ]
        kwargs = dict(deleted_item_ids=[99, 7], k=5)
        expected = differential_update(model, previous, changed,
                                       engine="reference", **kwargs)
        for workers in (2, 3):
            merged = differential_update(model, previous, changed,
                                         workers=workers,
                                         parallel="process", **kwargs)
            assert merged == expected
            # Same-day delete+revise resolves to the revision across
            # shard boundaries too.
            assert merged[7] and merged[7] == expected[7]
            assert 99 not in merged


class RaisingTokenizer:
    """Picklable tokenizer that blows up mid-build (ships via fork)."""

    def __call__(self, text):
        raise ValueError("boom-tokenizer")


class TestFromJsonMalformed:
    """ISSUE 7 satellite: every malformed-plan shape is rejected loudly.

    A plan is the unit a distributed runner ships to remote hosts; the
    old decoder's ``zip`` would silently truncate mismatched lists —
    dropped costs, then dropped or double-executed work downstream.
    """

    def test_not_json(self):
        with pytest.raises(ValueError, match="not JSON"):
            ShardPlan.from_json("{nope")

    def test_not_an_object(self):
        with pytest.raises(ValueError, match="must be an object"):
            ShardPlan.from_json("[1, 2]")

    def test_missing_costs(self):
        import json
        with pytest.raises(ValueError, match="must be an object"):
            ShardPlan.from_json(json.dumps({"shards": [[1]]}))

    def test_non_parallel_lists(self):
        import json
        with pytest.raises(ValueError, match="parallel"):
            ShardPlan.from_json(json.dumps(
                {"shards": [[1], [2]], "costs": [[1]]}))

    def test_member_cost_count_mismatch(self):
        """The zip-truncation regression: one shard, two members, one
        cost used to decode 'successfully' minus a member."""
        import json
        with pytest.raises(ValueError, match="counts must match"):
            ShardPlan.from_json(json.dumps(
                {"shards": [[1, 2]], "costs": [[3]]}))

    def test_non_integer_member(self):
        import json
        with pytest.raises(ValueError, match="not an integer"):
            ShardPlan.from_json(json.dumps(
                {"shards": [["leaf-1"]], "costs": [[3]]}))

    def test_bool_member_rejected(self):
        """JSON ``true`` is a Python bool — not a work-unit id, even
        though bool subclasses int."""
        import json
        with pytest.raises(ValueError, match="not an integer"):
            ShardPlan.from_json(json.dumps(
                {"shards": [[True]], "costs": [[3]]}))

    def test_float_member_rejected(self):
        import json
        with pytest.raises(ValueError, match="not an integer"):
            ShardPlan.from_json(json.dumps(
                {"shards": [[1.5]], "costs": [[3]]}))

    def test_out_of_range_member(self):
        import json
        with pytest.raises(ValueError, match="out of range"):
            ShardPlan.from_json(json.dumps(
                {"shards": [[-2]], "costs": [[3]]}))

    def test_negative_cost_rejected(self):
        import json
        with pytest.raises(ValueError, match="non-negative integer"):
            ShardPlan.from_json(json.dumps(
                {"shards": [[1]], "costs": [[-1]]}))

    def test_non_integer_cost_rejected(self):
        import json
        with pytest.raises(ValueError, match="non-negative integer"):
            ShardPlan.from_json(json.dumps(
                {"shards": [[1]], "costs": [["3"]]}))

    def test_duplicate_member_across_shards(self):
        import json
        with pytest.raises(ValueError, match="double-execute"):
            ShardPlan.from_json(json.dumps(
                {"shards": [[1], [1]], "costs": [[2], [2]]}))

    def test_pooled_group_roundtrips(self):
        plan = ShardPlan.balance([(POOLED_GROUP, 4), (1, 2), (2, 1)], 2)
        assert ShardPlan.from_json(plan.to_json()) == plan


class TestReplan:
    """The dead-host primitive: orphaned keys re-balance over survivors."""

    def test_rebalances_subset_with_original_costs(self):
        plan = ShardPlan.balance([(1, 5), (2, 4), (3, 3), (4, 2)], 2)
        orphaned = plan.shards[0]
        survivors = plan.replan(orphaned, 2)
        assert sorted(key for shard in survivors.shards
                      for key in shard) == sorted(orphaned)
        for key in orphaned:
            assert survivors.cost_of(key) == plan.cost_of(key)

    def test_single_survivor_gets_everything(self):
        plan = ShardPlan.balance([(i, i + 1) for i in range(6)], 3)
        merged = plan.replan(range(6), 1)
        assert merged.n_shards == 1
        assert sorted(merged.shards[0]) == list(range(6))

    def test_unknown_keys_rejected(self):
        plan = ShardPlan.balance([(1, 1)], 1)
        with pytest.raises(ValueError, match="not part of this plan"):
            plan.replan([1, 99], 1)


class TestPlanInferenceGroups:
    def test_executor_delegates_to_shared_planner(self):
        from repro.core.sharding import plan_inference_groups

        model = make_model({1: [("w0 w1", 5, 1)], 2: [("w2", 4, 1)]},
                           build_pooled=True)
        requests = [(0, "w0", 1), (1, "w0", 99), (2, "w2", 2)]
        assert (plan_inference_groups(model, requests, 2)
                == ProcessShardExecutor(2).plan_inference(model, requests))


class TestWorkerFailureSurfacing:
    """ISSUE 7 satellite: a failing shard surfaces the worker's original
    traceback instead of an opaque ``BrokenProcessPool``, and half-
    written artifacts do not outlive the failure."""

    def _failing_curated(self):
        leaves = {}
        for leaf_id in (1, 2, 3):
            leaf = CuratedLeaf(leaf_id=leaf_id)
            leaf.add(f"phrase {leaf_id}", 3, 1)
            leaves[leaf_id] = leaf
        return CuratedKeyphrases(leaves=leaves, effective_threshold=1,
                                 config=CurationConfig(min_search_count=1))

    def test_shard_worker_error_survives_pickling(self):
        import pickle

        from repro.core.sharding import ShardWorkerError

        exc = pickle.loads(pickle.dumps(ShardWorkerError("tb-text")))
        assert exc.worker_traceback == "tb-text"

    def test_construction_failure_carries_worker_traceback(self):
        from repro.core.sharding import ShardExecutionError

        with pytest.raises(ShardExecutionError,
                           match="boom-tokenizer") as excinfo:
            ProcessShardExecutor(2).run_construction(
                self._failing_curated(), RaisingTokenizer())
        assert "ValueError" in excinfo.value.worker_traceback
        assert "original worker traceback" in str(excinfo.value)

    def test_construction_failure_cleans_temp_dirs(self, monkeypatch):
        import tempfile
        from pathlib import Path

        from repro.core.sharding import ShardExecutionError

        created = []
        real_mkdtemp = tempfile.mkdtemp

        def recording_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(tempfile, "mkdtemp", recording_mkdtemp)
        with pytest.raises(ShardExecutionError):
            ProcessShardExecutor(2).run_construction(
                self._failing_curated(), RaisingTokenizer())
        staged = [path for path in created if "graphex-shard-" in path]
        assert staged, "the executor never staged a bundle dir"
        assert all(not Path(path).exists() for path in staged)

    def test_inference_shard_wraps_worker_failures(self, monkeypatch):
        from repro.core import sharding
        from repro.core.sharding import ShardWorkerError

        monkeypatch.setattr(sharding, "_INFERENCE_RUNNER", None)
        with pytest.raises(ShardWorkerError) as excinfo:
            sharding._run_inference_shard([(0, "title", 1)])
        assert "AttributeError" in excinfo.value.worker_traceback

    def test_unwrap_names_shard_and_keys(self):
        from concurrent.futures import Future

        from repro.core.sharding import (ShardExecutionError,
                                         ShardWorkerError,
                                         _unwrap_shard_future)

        future = Future()
        future.set_exception(ShardWorkerError("Traceback: boom"))
        with pytest.raises(ShardExecutionError,
                           match=r"keys \[1, 2\]") as excinfo:
            _unwrap_shard_future(future, "inference", 0, (1, 2))
        assert excinfo.value.worker_traceback == "Traceback: boom"

    def test_unwrap_broken_pool_stays_legible(self):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        from repro.core.sharding import (ShardExecutionError,
                                         _unwrap_shard_future)

        future = Future()
        future.set_exception(BrokenProcessPool("pool is dead"))
        with pytest.raises(ShardExecutionError,
                           match="no worker traceback"):
            _unwrap_shard_future(future, "construction", 1, (3,))
