"""Tests for the Enumeration + Ranking steps (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alignment import jac, lta, wmr
from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.inference import (
    enumerate_candidates,
    prune_by_count_groups,
    recommend_from_graph,
)
from repro.core.model import GraphExModel, build_leaf_graph
from repro.core.tokenize import DEFAULT_TOKENIZER


def make_graph(keyphrases):
    """Build a LeafGraph from (text, search, recall) triples."""
    leaf = CuratedLeaf(leaf_id=1)
    for text, search, recall in keyphrases:
        leaf.add(text, search, recall)
    return build_leaf_graph(leaf, DEFAULT_TOKENIZER)


class TestEnumeration:
    def test_counts_are_set_intersections(self):
        graph = make_graph([("a b c", 1, 1), ("a d", 1, 1), ("e f", 1, 1)])
        labels, counts, n = enumerate_candidates(graph, ["a", "b", "x"])
        by_text = {graph.label_texts[l]: c for l, c in zip(labels, counts)}
        assert by_text == {"a b c": 2, "a d": 1}
        assert n == 3

    def test_duplicate_title_tokens_counted_once(self):
        graph = make_graph([("a b", 1, 1)])
        _labels, counts, n = enumerate_candidates(graph, ["a", "a", "b"])
        assert list(counts) == [2]
        assert n == 2

    def test_unknown_tokens_ignored(self):
        graph = make_graph([("a b", 1, 1)])
        labels, _counts, _n = enumerate_candidates(graph, ["z", "q"])
        assert len(labels) == 0

    def test_empty_title(self):
        graph = make_graph([("a b", 1, 1)])
        labels, counts, n = enumerate_candidates(graph, [])
        assert len(labels) == 0 and len(counts) == 0 and n == 0

    def test_count_never_exceeds_label_length(self):
        graph = make_graph([("a b", 1, 1), ("a b c d", 1, 1)])
        labels, counts, _ = enumerate_candidates(
            graph, ["a", "b", "c", "d", "e"])
        for label, count in zip(labels, counts):
            assert count <= graph.label_lengths[label]


class TestGroupPruning:
    def test_no_pruning_when_under_k(self):
        labels = np.array([0, 1, 2])
        counts = np.array([3, 2, 1])
        kept_labels, kept_counts = prune_by_count_groups(labels, counts, 5)
        assert list(kept_labels) == [0, 1, 2]

    def test_cutoff_at_kth_largest(self):
        labels = np.arange(6)
        counts = np.array([5, 4, 3, 2, 2, 1])
        kept_labels, _ = prune_by_count_groups(labels, counts, 3)
        assert list(kept_labels) == [0, 1, 2]

    def test_threshold_group_kept_whole(self):
        """All keyphrases in the threshold group are included even if the
        group size exceeds the requested count (Section III-F)."""
        labels = np.arange(7)
        counts = np.array([5, 2, 2, 2, 2, 2, 1])
        kept_labels, _ = prune_by_count_groups(labels, counts, 3)
        # Cutoff value is 2; the whole count-2 group survives.
        assert list(kept_labels) == [0, 1, 2, 3, 4, 5]

    def test_k_zero_keeps_nothing(self):
        """Pinned contract: asking for zero predictions prunes everything
        (it used to return *all* candidates, inverting the request)."""
        labels = np.arange(3)
        counts = np.array([1, 1, 1])
        kept, kept_counts = prune_by_count_groups(labels, counts, 0)
        assert len(kept) == 0 and len(kept_counts) == 0

    def test_negative_k_keeps_nothing(self):
        labels = np.arange(3)
        counts = np.array([3, 2, 1])
        kept, _ = prune_by_count_groups(labels, counts, -2)
        assert len(kept) == 0

    def test_k_zero_recommendation_is_empty(self):
        graph = make_graph([("a b", 5, 1), ("a c", 4, 2)])
        assert recommend_from_graph(graph, ["a", "b"], k=0) == []

    def test_overshoot_when_cutoff_spans_kth_position(self):
        """Cutoff ties straddling position k keep the whole group."""
        labels = np.arange(5)
        counts = np.array([3, 2, 2, 2, 1])
        kept, _ = prune_by_count_groups(labels, counts, 2)
        # The k-th largest is 2; every count-2 label survives.
        assert list(kept) == [0, 1, 2, 3]

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=40),
           st.integers(1, 20))
    def test_survivors_at_least_min_k(self, count_list, k):
        labels = np.arange(len(count_list))
        counts = np.array(count_list)
        kept, _ = prune_by_count_groups(labels, counts, k)
        assert len(kept) >= min(k, len(count_list))

    @given(st.lists(st.integers(1, 6), min_size=2, max_size=40),
           st.integers(1, 20))
    def test_kept_counts_dominate_dropped(self, count_list, k):
        labels = np.arange(len(count_list))
        counts = np.array(count_list)
        kept, kept_counts = prune_by_count_groups(labels, counts, k)
        dropped = set(labels.tolist()) - set(kept.tolist())
        if dropped and len(kept_counts):
            max_dropped = max(counts[list(dropped)])
            assert kept_counts.min() > max_dropped


class TestRanking:
    def test_primary_key_is_alignment(self):
        graph = make_graph([("a b", 10, 1), ("a", 99999, 1)])
        recs = recommend_from_graph(graph, ["a", "b"], k=5)
        # "a b": LTA 2.0 beats "a": LTA 1.0 despite the huge search count.
        assert recs[0].text == "a b"

    def test_tie_broken_by_search_count_desc(self):
        graph = make_graph([("a b", 10, 5), ("a c", 20, 5)])
        recs = recommend_from_graph(graph, ["a"], k=5)
        assert [r.text for r in recs] == ["a c", "a b"]

    def test_tie_broken_by_recall_count_asc(self):
        graph = make_graph([("a b", 10, 9), ("a c", 10, 2)])
        recs = recommend_from_graph(graph, ["a"], k=5)
        assert [r.text for r in recs] == ["a c", "a b"]

    def test_final_tie_broken_by_label_id(self):
        graph = make_graph([("a b", 10, 5), ("a c", 10, 5)])
        recs = recommend_from_graph(graph, ["a"], k=5)
        assert [r.text for r in recs] == ["a b", "a c"]

    def test_hard_limit_truncates(self):
        graph = make_graph([(f"a k{i}", 10, 1) for i in range(20)])
        recs = recommend_from_graph(graph, ["a"], k=50, hard_limit=7)
        assert len(recs) == 7

    def test_alternative_alignments_change_order(self):
        # Paper IV-F1: 10-token title; "a b c" fully matched (c=3) vs
        # "a b c d z" whose last token is risky (c=4): LTA 3/1 > 4/2
        # prefers the complete keyphrase, JAC prefers the longer one.
        labels = [("a b c", 10, 1), ("a b c d z", 10, 1)]
        graph = make_graph(labels)
        title = list("abcdefghij")
        lta_recs = recommend_from_graph(graph, title, k=5, alignment_fn=lta)
        jac_recs = recommend_from_graph(graph, title, k=5, alignment_fn=jac)
        assert lta_recs[0].text == "a b c"
        assert jac_recs[0].text == "a b c d z"

    def test_wmr_ties_resolved_by_search(self):
        graph = make_graph([("a b", 5, 1), ("c d", 50, 1)])
        recs = recommend_from_graph(
            graph, ["a", "b", "c", "d"], k=5, alignment_fn=wmr)
        assert recs[0].text == "c d"

    def test_recommendation_fields(self):
        graph = make_graph([("a b", 7, 3)])
        rec = recommend_from_graph(graph, ["a"], k=5)[0]
        assert rec.text == "a b"
        assert rec.search_count == 7
        assert rec.recall_count == 3
        assert rec.common == 1
        assert rec.score == pytest.approx(0.5)

    def test_empty_when_nothing_matches(self):
        graph = make_graph([("a b", 1, 1)])
        assert recommend_from_graph(graph, ["z"], k=5) == []

    @given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6,
                    unique=True))
    def test_scores_non_increasing(self, title):
        graph = make_graph([
            ("a b", 5, 2), ("b c d", 9, 4), ("a", 3, 1),
            ("c d e f", 2, 2), ("e f", 4, 9), ("a c e", 6, 6),
        ])
        recs = recommend_from_graph(graph, list(title), k=10)
        scores = [r.score for r in recs]
        assert scores == sorted(scores, reverse=True)

    @given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6,
                    unique=True), st.integers(1, 5))
    def test_deterministic(self, title, k):
        graph = make_graph([
            ("a b", 5, 2), ("b c d", 9, 4), ("a", 3, 1), ("e f", 4, 9),
        ])
        first = recommend_from_graph(graph, list(title), k=k)
        second = recommend_from_graph(graph, list(title), k=k)
        assert [r.text for r in first] == [r.text for r in second]


class TestModelRecommend:
    def _model(self):
        leaf_a = CuratedLeaf(leaf_id=1)
        leaf_a.add("alpha beta", 10, 1)
        leaf_b = CuratedLeaf(leaf_id=2)
        leaf_b.add("gamma delta", 10, 1)
        curated = CuratedKeyphrases(
            leaves={1: leaf_a, 2: leaf_b},
            effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        return GraphExModel.construct(curated, build_pooled=True)

    def test_leaf_isolation(self):
        model = self._model()
        recs = model.recommend("alpha beta gamma delta", leaf_id=1, k=5)
        assert [r.text for r in recs] == ["alpha beta"]

    def test_unknown_leaf_falls_back_to_pooled(self):
        model = self._model()
        recs = model.recommend("gamma delta", leaf_id=999, k=5)
        assert [r.text for r in recs] == ["gamma delta"]

    def test_unknown_leaf_without_pooled_is_empty(self):
        leaf = CuratedLeaf(leaf_id=1)
        leaf.add("a b", 1, 1)
        curated = CuratedKeyphrases(
            leaves={1: leaf}, effective_threshold=1,
            config=CurationConfig(min_search_count=1))
        model = GraphExModel.construct(curated)
        assert model.recommend("a b", leaf_id=999, k=5) == []

    def test_use_pooled_flag(self):
        model = self._model()
        recs = model.recommend("alpha beta gamma delta", leaf_id=1, k=5,
                               use_pooled=True)
        assert {r.text for r in recs} == {"alpha beta", "gamma delta"}

    def test_tokenizer_applied_to_title(self):
        model = self._model()
        recs = model.recommend("ALPHA! beta?", leaf_id=1, k=5)
        assert recs and recs[0].text == "alpha beta"

    def test_properties(self):
        model = self._model()
        assert model.n_leaves == 2
        assert model.n_keyphrases == 2
        assert model.leaf_ids == [1, 2]
        assert model.alignment_name == "lta"
        assert model.memory_bytes() > 0
