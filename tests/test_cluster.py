"""Tests for the fault-tolerant multi-machine shard runner (ISSUE 7).

Covers the layers bottom-up: the shared retry policy, the wire protocol
codecs (bit-exact float round-trips), the fault-injecting transport,
the coordinator's happy paths (inference + construction element-wise
identical to the single-process fast paths), the robustness edge cases
(mid-plan joins, duplicate names, late-result fencing, graceful drain),
a hypothesis property that *any* drawn kill/drop/delay schedule still
yields identical results with every orphaned shard re-executed exactly
once, and the refresh-orchestrator integration (retried steps, remote
artifact deploys).
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (ClusterCoordinator, ClusterError,
                           ClusterExecutionError, ClusterWorker, Fault,
                           FaultSchedule, FaultyTransport, FrameError,
                           RetriesExhausted, RetryPolicy,
                           TransportClosed, WorkerKilled, decode_frame,
                           encode_frame)
from repro.cluster.protocol import (pack_recommendations, pack_requests,
                                    pack_token_state, pack_tokenizer,
                                    unpack_recommendations,
                                    unpack_requests, unpack_token_state,
                                    unpack_tokenizer)
from repro.core.curation import (CuratedKeyphrases, CuratedLeaf,
                                 CurationConfig)
from repro.core.fast_construct import fast_construct_leaf_graphs
from repro.core.fast_inference import LeafBatchRunner
from repro.core.inference import Recommendation
from repro.core.model import GraphExModel
from repro.core.serialization import save_model
from repro.core.tokenize import DEFAULT_TOKENIZER, SpaceTokenizer


# ---------------------------------------------------------------------------
# World fixtures


def build_curated(n_leaves: int = 5, phrases: int = 6) -> CuratedKeyphrases:
    leaves = {}
    for leaf_id in range(1, n_leaves + 1):
        leaf = CuratedLeaf(leaf_id=leaf_id)
        for j in range(phrases):
            leaf.add(f"phrase {leaf_id} word{j} extra", 5 + j,
                     3 + (j % 4))
        leaves[leaf_id] = leaf
    return CuratedKeyphrases(leaves=leaves, effective_threshold=1,
                             config=CurationConfig(min_search_count=1))


@pytest.fixture(scope="module")
def curated():
    return build_curated()


@pytest.fixture(scope="module")
def model(curated):
    return GraphExModel.construct(curated)


@pytest.fixture(scope="module")
def artifact(model, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cluster-model") / "model"
    save_model(model, directory, format_version=3)
    return directory


@pytest.fixture(scope="module")
def requests(model):
    out = []
    for i in range(30):
        leaf_id = 1 + (i % model.n_leaves)
        out.append((i, f"word{i % 6} phrase {leaf_id} extra", leaf_id))
    return out


@pytest.fixture(scope="module")
def expected(model, requests):
    return LeafBatchRunner(model, k=5).run(requests)


def fast_retry(**overrides) -> RetryPolicy:
    defaults = dict(max_attempts=5, base_delay=0.01, max_delay=0.05,
                    jitter=0.0, seed=0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


async def spawn_worker(coordinator, **kwargs) -> tuple:
    worker = ClusterWorker(coordinator.host, coordinator.port, **kwargs)
    task = asyncio.ensure_future(worker.run())
    return worker, task


async def teardown(coordinator, tasks) -> None:
    await coordinator.stop()
    for task in tasks:
        task.cancel()
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)


# ---------------------------------------------------------------------------
# Retry policy


class TestRetryPolicy:
    def test_seeded_delays_are_reproducible(self):
        a = list(RetryPolicy(seed=13).delays())
        b = list(RetryPolicy(seed=13).delays())
        assert a == b and len(a) == 3

    def test_delays_respect_cap_and_jitter_band(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.1,
                             max_delay=0.5, multiplier=2.0, jitter=0.4,
                             seed=7)
        for attempt in range(7):
            capped = min(0.5, 0.1 * 2.0 ** attempt)
            delay = policy.delay_for(attempt)
            assert capped * 0.6 <= delay <= capped

    def test_zero_jitter_is_deterministic_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0,
                             max_delay=6.0, multiplier=2.0, jitter=0.0)
        assert list(policy.delays()) == [1.0, 2.0, 4.0, 6.0]

    def test_call_retries_then_succeeds(self):
        attempts, slept, noted = [], [], []
        policy = fast_retry(max_attempts=4)

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        result = policy.call(flaky, sleep=slept.append,
                             on_retry=lambda a, e, d: noted.append(a))
        assert result == "done"
        assert len(attempts) == 3
        assert len(slept) == 2 == len(noted)

    def test_call_exhausts_with_cause_and_attempts(self):
        policy = fast_retry(max_attempts=3)

        def doomed():
            raise OSError("always")

        with pytest.raises(RetriesExhausted) as excinfo:
            policy.call(doomed, sleep=lambda _d: None)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_non_matching_exception_propagates_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            fast_retry().call(wrong_kind, retry_on=(OSError,),
                              sleep=lambda _d: None)
        assert len(calls) == 1

    def test_call_async_retries(self):
        attempts = []

        async def flaky():
            attempts.append(1)
            if len(attempts) < 2:
                raise OSError("transient")
            return 42

        assert asyncio.run(fast_retry().call_async(flaky)) == 42
        assert len(attempts) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)


# ---------------------------------------------------------------------------
# Protocol


class TestProtocol:
    def test_frame_roundtrip(self):
        message = {"type": "x", "nested": {"a": [1, 2.5, "s", None]}}
        assert decode_frame(encode_frame(message)[4:]) == message

    def test_non_object_payload_rejected(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_frame(b"[1, 2]")
        with pytest.raises(FrameError, match="undecodable"):
            decode_frame(b"{nope")

    def test_recommendations_roundtrip_bit_exact(self):
        scores = [0.1, 1 / 3, 5e-324, 1.7976931348623157e308,
                  2.220446049250313e-16]
        recs = [Recommendation(f"text {i}", score, i, i + 1, i % 3)
                for i, score in enumerate(scores)]
        back = unpack_recommendations(
            json.loads(json.dumps(pack_recommendations(recs))))
        assert back == recs  # float equality == bit identity here

    def test_requests_roundtrip(self):
        reqs = [(1, "a title", 7), (2, "", -3)]
        assert unpack_requests(
            json.loads(json.dumps(pack_requests(reqs)))) == reqs

    def test_tokenizer_roundtrip_preserves_semantics(self):
        tokenizer = SpaceTokenizer(stem=True,
                                   drop_stopwords=("for", "with"))
        back = unpack_tokenizer(
            json.loads(json.dumps(pack_tokenizer(tokenizer))))
        for text in ("Wireless Headphones for gaming", "cables with!"):
            assert back(text) == tokenizer(text)

    def test_custom_tokenizer_not_wire_representable(self):
        with pytest.raises(ValueError, match="SpaceTokenizer"):
            pack_tokenizer(lambda text: text.split())

    def test_token_state_roundtrip(self):
        state = (["tok0", "tok1"], {"a b": (0, 1), "": ()}, None)
        back = unpack_token_state(
            json.loads(json.dumps(pack_token_state(state))))
        assert back == state

    def test_oversized_frame_rejected(self):
        import repro.cluster.protocol as protocol
        big = {"data": "x" * (protocol.MAX_FRAME_BYTES + 1)}
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(big)


# ---------------------------------------------------------------------------
# Fault-injecting transport


class StubTransport:
    """List-backed stand-in for a Transport (unit-tests the injector)."""

    def __init__(self, incoming=()):
        self.incoming = deque(incoming)
        self.sent = []
        self.closed = False

    async def send(self, message):
        if self.closed:
            raise TransportClosed("closed")
        self.sent.append(message)

    async def recv(self):
        if not self.incoming:
            raise TransportClosed("drained")
        return self.incoming.popleft()

    def close(self):
        self.closed = True

    async def wait_closed(self):
        pass


class TestFaultyTransport:
    def test_drop_skips_the_indexed_frame(self):
        inner = StubTransport()
        faulty = FaultyTransport(inner, FaultSchedule(
            send={1: Fault("drop")}))

        async def drive():
            for i in range(3):
                await faulty.send({"n": i})

        asyncio.run(drive())
        assert [m["n"] for m in inner.sent] == [0, 2]

    def test_sever_closes_and_raises(self):
        inner = StubTransport()
        faulty = FaultyTransport(inner, FaultSchedule(
            send={0: Fault("sever")}))
        with pytest.raises(TransportClosed, match="injected"):
            asyncio.run(faulty.send({"n": 0}))
        assert inner.closed

    def test_recv_drop_delivers_the_next_frame(self):
        inner = StubTransport([{"n": 0}, {"n": 1}])
        faulty = FaultyTransport(inner, FaultSchedule(
            recv={0: Fault("drop")}))
        assert asyncio.run(faulty.recv()) == {"n": 1}

    def test_match_predicate_counts_only_matching_frames(self):
        inner = StubTransport()
        faulty = FaultyTransport(inner, FaultSchedule(
            send={0: Fault("drop")},
            match=lambda m: m.get("type") == "shard_result"))

        async def drive():
            await faulty.send({"type": "heartbeat"})
            await faulty.send({"type": "shard_result", "n": 1})
            await faulty.send({"type": "shard_result", "n": 2})

        asyncio.run(drive())
        assert [m for m in inner.sent
                if m.get("type") == "shard_result"] == [
                    {"type": "shard_result", "n": 2}]

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="fault action"):
            Fault("explode")


# ---------------------------------------------------------------------------
# Coordinator happy paths


class TestClusterInference:
    def test_two_workers_identical_and_exactly_once(self, artifact,
                                                    requests, expected):
        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, t1 = await spawn_worker(coord, name="a")
                _w, t2 = await spawn_worker(coord, name="b")
                await coord.wait_for_workers(2, timeout=10.0)
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                await teardown(coord, [t1, t2])
                return got, coord.last_report

        got, report = asyncio.run(drive())
        assert got == expected
        assert all(count == 1 for count in report.merge_counts.values())
        assert sorted(report.workers_used) == ["a", "b"]
        assert report.n_replans == report.n_retries == 0

    def test_in_memory_model_is_persisted_to_spool(self, model,
                                                   requests, expected):
        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, task = await spawn_worker(coord, name="solo")
                await coord.wait_for_workers(1, timeout=10.0)
                got = await coord.run_inference(model, requests, k=5)
                await teardown(coord, [task])
                return got

        assert asyncio.run(drive()) == expected

    def test_stream_distribution_identical(self, artifact, requests,
                                           expected):
        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, task = await spawn_worker(coord, name="streamed")
                await coord.wait_for_workers(1, timeout=10.0)
                got = await coord.run_inference(
                    str(artifact), requests, k=5, distribute="stream")
                await teardown(coord, [task])
                return got

        assert asyncio.run(drive()) == expected

    def test_empty_fleet_degrades_to_local(self, artifact, requests,
                                           expected):
        async def drive():
            async with ClusterCoordinator() as coord:
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                return got, coord.last_report

        got, report = asyncio.run(drive())
        assert got == expected
        assert report.n_local_units == report.n_units_planned > 0

    def test_local_fallback_disabled_fails_loudly(self, artifact,
                                                  requests):
        async def drive():
            async with ClusterCoordinator(local_fallback=False) as coord:
                await coord.run_inference(str(artifact), requests, k=5)

        with pytest.raises(ClusterError, match="fallback"):
            asyncio.run(drive())

    def test_worker_exception_surfaces_original_traceback(
            self, artifact, requests, monkeypatch):
        """A shard that raises on its host fails the job with the
        worker's own traceback, not a bare connection error."""

        def exploding_compute(self, message):
            raise RuntimeError("boom-on-worker")

        monkeypatch.setattr(ClusterWorker, "_run_inference_shard",
                            exploding_compute)

        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, task = await spawn_worker(coord, name="broken")
                await coord.wait_for_workers(1, timeout=10.0)
                try:
                    await coord.run_inference(str(artifact), requests,
                                              k=5)
                finally:
                    await teardown(coord, [task])

        with pytest.raises(ClusterExecutionError,
                           match="original worker traceback") as excinfo:
            asyncio.run(drive())
        assert "boom-on-worker" in excinfo.value.worker_traceback
        assert "RuntimeError" in excinfo.value.worker_traceback

    def test_run_construction_identical_to_fast_path(self, curated):
        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, t1 = await spawn_worker(coord, name="c1")
                _w, t2 = await spawn_worker(coord, name="c2")
                await coord.wait_for_workers(2, timeout=10.0)
                graphs, cache = await coord.run_construction(
                    curated, DEFAULT_TOKENIZER)
                await teardown(coord, [t1, t2])
                return graphs, cache, coord.last_report

        graphs, cache, report = asyncio.run(drive())
        ref_graphs, ref_cache = fast_construct_leaf_graphs(
            curated, DEFAULT_TOKENIZER)
        assert list(graphs) == list(ref_graphs)
        for leaf_id, reference in ref_graphs.items():
            built = graphs[leaf_id]
            assert list(built.label_texts) == list(reference.label_texts)
            assert np.array_equal(built.graph.indptr,
                                  reference.graph.indptr)
            assert np.array_equal(built.graph.indices,
                                  reference.graph.indices)
            assert np.array_equal(built.label_lengths,
                                  reference.label_lengths)
            assert np.array_equal(built.search_counts,
                                  reference.search_counts)
            assert np.array_equal(built.recall_counts,
                                  reference.recall_counts)
            assert list(built.word_vocab) == list(reference.word_vocab)
        # The merged pool knows every token the reference pool knows.
        assert len(cache) == len(ref_cache)
        assert all(count == 1 for count in report.merge_counts.values())

    def test_custom_tokenizer_construction_runs_locally(self, curated):
        """A non-wire-representable tokenizer cannot promise identical
        remote semantics — the job silently takes the local path."""
        tokenizer = lambda text: text.split()  # noqa: E731

        async def drive():
            async with ClusterCoordinator() as coord:
                _w, task = await spawn_worker(coord, name="idle")
                await coord.wait_for_workers(1, timeout=10.0)
                graphs, cache = await coord.run_construction(curated,
                                                             tokenizer)
                await teardown(coord, [task])
                return graphs

        graphs = asyncio.run(drive())
        ref_graphs, _ = fast_construct_leaf_graphs(curated, tokenizer)
        assert list(graphs) == list(ref_graphs)

    def test_deploy_artifact_acknowledged_by_fleet(self, artifact):
        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, t1 = await spawn_worker(coord, name="d1")
                _w, t2 = await spawn_worker(coord, name="d2")
                await coord.wait_for_workers(2, timeout=10.0)
                count = await coord.deploy_artifact(artifact,
                                                    generation=3)
                await teardown(coord, [t1, t2])
                return count

        assert asyncio.run(drive()) == 2


# ---------------------------------------------------------------------------
# Robustness edge cases (the satellite-4 quartet)


class TestCoordinatorEdgeCases:
    def test_worker_joining_mid_plan_is_used(self, artifact, requests,
                                             expected):
        """A worker that registers only after the job has started picks
        up the shard orphaned by a crashed host, while the sole
        survivor is still busy.  Local fallback is off, so completion
        proves the late joiner really ran it."""

        def slow_results(transport):
            return FaultyTransport(transport, FaultSchedule(
                send={0: Fault("delay", delay=0.6)},
                match=lambda m: m.get("type") == "shard_result"))

        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0,
                                          retry=fast_retry(),
                                          local_fallback=False) as coord:
                _w, t1 = await spawn_worker(
                    coord, name="slow", transport_wrapper=slow_results)
                await coord.wait_for_workers(1, timeout=10.0)
                _w, t2 = await spawn_worker(coord, name="doomed",
                                            die_after_assignments=0)
                await coord.wait_for_workers(2, timeout=10.0)
                job = asyncio.ensure_future(coord.run_inference(
                    str(artifact), requests, k=5))
                await asyncio.sleep(0.15)
                assert not job.done()
                _w, t3 = await spawn_worker(coord, name="late-joiner")
                got = await job
                report = coord.last_report
                await teardown(coord, [t1, t2, t3])
                return got, report

        got, report = asyncio.run(drive())
        assert got == expected
        assert "late-joiner" in report.workers_used
        assert report.n_replans >= 1
        assert report.n_local_units == 0
        assert all(count == 1 for count in report.merge_counts.values())

    def test_duplicate_registration_rejected(self):
        async def drive():
            async with ClusterCoordinator() as coord:
                first, task = await spawn_worker(coord, name="dup")
                await coord.wait_for_workers(1, timeout=10.0)
                second = ClusterWorker(coord.host, coord.port,
                                       name="dup")
                with pytest.raises(ConnectionError,
                                   match="already registered"):
                    await second.run()
                # The live holder kept the name and the connection.
                assert coord.worker_names() == ["dup"]
                await teardown(coord, [task])

        asyncio.run(drive())

    def test_late_result_after_reassignment_not_double_merged(
            self, artifact, requests, expected):
        """A worker whose results arrive after the deadline: the unit
        is fenced, retried elsewhere, and when the late result finally
        lands it is discarded — never merged a second time."""

        def slow_results(transport):
            return FaultyTransport(transport, FaultSchedule(
                send={0: Fault("delay", delay=1.2),
                      1: Fault("delay", delay=1.2)},
                match=lambda m: m.get("type") == "shard_result"))

        async def drive():
            async with ClusterCoordinator(
                    rpc_timeout=0.4,
                    retry=fast_retry()) as coord:
                _w, t1 = await spawn_worker(
                    coord, name="slow", transport_wrapper=slow_results)
                await coord.wait_for_workers(1, timeout=10.0)
                _w, t2 = await spawn_worker(coord, name="prompt")
                await coord.wait_for_workers(2, timeout=10.0)
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                # Give the delayed frames time to land while the
                # connection is still up, then stop.
                await asyncio.sleep(1.5)
                report = coord.last_report
                await teardown(coord, [t1, t2])
                return got, report

        got, report = asyncio.run(drive())
        assert got == expected
        assert report.n_retries >= 1
        # The exactly-once invariant is the point: despite the retries
        # and the eventually-arriving duplicates, nothing double-merged.
        assert all(count == 1 for count in report.merge_counts.values())

    def test_late_result_fencing_rule_is_deterministic(self):
        """Unit-level pin of the discard rule: a frame for a stale (or
        unknown) assignment increments the late counter and never
        resolves a future."""
        from repro.cluster.coordinator import (ClusterRunReport,
                                               _Assignment, _Unit)

        async def drive():
            coord = ClusterCoordinator()
            await coord.start()
            try:
                report = ClusterRunReport(kind="inference",
                                          n_units_planned=1,
                                          n_workers_at_start=1)
                coord._active_report = report
                entry = _Assignment(
                    unit=_Unit((1,)),
                    future=asyncio.get_event_loop().create_future(),
                    stale=True)
                coord._assignments[7] = entry
                worker = type("W", (), {"last_seen": 0.0})()
                coord._route_frame(worker, {"type": "shard_result",
                                            "assignment": 7})
                coord._route_frame(worker, {"type": "shard_result",
                                            "assignment": 999})
                assert report.n_late_discarded == 2
                assert not entry.future.done()
            finally:
                coord._active_report = None
                await coord.stop()

        asyncio.run(drive())

    def test_dead_worker_orphans_are_replanned(self, artifact, requests,
                                               expected):
        async def drive():
            async with ClusterCoordinator(
                    rpc_timeout=20.0, retry=fast_retry()) as coord:
                _w, t1 = await spawn_worker(coord, name="doomed",
                                            die_after_assignments=0)
                await coord.wait_for_workers(1, timeout=10.0)
                _w, t2 = await spawn_worker(coord, name="survivor")
                await coord.wait_for_workers(2, timeout=10.0)
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                report = coord.last_report
                await teardown(coord, [t1, t2])
                return got, report

        got, report = asyncio.run(drive())
        assert got == expected
        assert report.n_replans >= 1
        assert report.orphaned_keys
        orphans = {key for group in report.orphaned_keys
                   for key in group}
        assert all(report.merge_counts[key] == 1 for key in orphans)

    def test_graceful_stop_drains_in_flight_job(self, artifact,
                                                requests, expected):
        """stop(drain=True) lets the running job finish and merge; new
        jobs are rejected from that moment."""

        def slow_delivery(transport):
            return FaultyTransport(transport, FaultSchedule(
                recv={0: Fault("delay", delay=0.3)},
                match=lambda m: m.get("type") == "run_shard"))

        async def drive():
            coord = ClusterCoordinator(rpc_timeout=20.0)
            await coord.start()
            _w, task = await spawn_worker(
                coord, name="draining", transport_wrapper=slow_delivery)
            await coord.wait_for_workers(1, timeout=10.0)
            job = asyncio.ensure_future(coord.run_inference(
                str(artifact), requests, k=5))
            await asyncio.sleep(0.05)
            await coord.stop(drain=True)
            got = await job
            with pytest.raises(ClusterError, match="stopping"):
                await coord.run_inference(str(artifact), requests, k=5)
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            return got

        assert asyncio.run(drive()) == expected


# ---------------------------------------------------------------------------
# The fault-injection property


def worker_fault_spec():
    """One worker's failure mode for the property below."""
    return st.one_of(
        st.none(),
        st.tuples(st.just("kill"), st.integers(0, 1)),
        st.tuples(st.just("sever"), st.integers(0, 2)),
        st.tuples(st.just("drop"), st.integers(0, 2)),
        st.tuples(st.just("delay"), st.integers(0, 2)),
    )


class TestFaultInjectionProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=st.lists(worker_fault_spec(), min_size=2, max_size=3))
    def test_any_fault_schedule_yields_identical_results(
            self, specs, artifact, requests, expected):
        """The headline property: for ANY drawn schedule of worker
        kills, severed connections, dropped results, and delayed
        results, the cluster's merged output is element-wise identical
        to the single-process fast path, and every orphaned shard is
        re-executed and merged exactly once."""

        def make_worker_kwargs(spec):
            if spec is None:
                return {}
            action, index = spec
            if action == "kill":
                return {"die_after_assignments": index}
            fault = (Fault(action) if action != "delay"
                     else Fault("delay", delay=1.0))
            schedule = FaultSchedule(
                send={index: fault},
                match=lambda m: m.get("type") == "shard_result")
            return {"transport_wrapper":
                    lambda t, s=schedule: FaultyTransport(t, s)}

        async def drive():
            async with ClusterCoordinator(
                    rpc_timeout=0.4, retry=fast_retry(),
                    heartbeat_timeout=5.0) as coord:
                tasks = []
                for index, spec in enumerate(specs):
                    _w, task = await spawn_worker(
                        coord, name=f"w{index}",
                        heartbeat_interval=0.1,
                        **make_worker_kwargs(spec))
                    tasks.append(task)
                await coord.wait_for_workers(len(specs), timeout=10.0)
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                report = coord.last_report
                await teardown(coord, tasks)
                return got, report

        got, report = asyncio.run(drive())
        assert got == expected
        assert all(count == 1 for count in report.merge_counts.values())
        orphans = {key for group in report.orphaned_keys
                   for key in group}
        assert all(report.merge_counts[key] == 1 for key in orphans)


# ---------------------------------------------------------------------------
# Worker internals


class TestWorkerKillSwitch:
    def test_kill_switch_raises_worker_killed(self, artifact, requests):
        async def drive():
            async with ClusterCoordinator(
                    rpc_timeout=20.0, retry=fast_retry()) as coord:
                worker, task = await spawn_worker(
                    coord, name="condemned", die_after_assignments=0)
                await coord.wait_for_workers(1, timeout=10.0)
                _w2, t2 = await spawn_worker(coord, name="backup")
                await coord.wait_for_workers(2, timeout=10.0)
                await coord.run_inference(str(artifact), requests, k=5)
                with pytest.raises(WorkerKilled):
                    await task
                assert worker.n_completed == 0
                await teardown(coord, [t2])

        asyncio.run(drive())


# ---------------------------------------------------------------------------
# Fleet metrics (observability plane)


class TestFleetMetrics:
    """Worker registries ride heartbeats AND shard_result frames; the
    coordinator keeps the *latest* snapshot per worker and merges once
    — so fleet counters are exactly-once and equal the single-process
    totals, however the units were scheduled."""

    def test_two_worker_fleet_snapshot_is_valid_and_exact(
            self, artifact, requests, expected):
        from repro.obs import validate_snapshot

        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, t1 = await spawn_worker(coord, name="a")
                _w, t2 = await spawn_worker(coord, name="b")
                await coord.wait_for_workers(2, timeout=10.0)
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                fleet = coord.fleet_snapshot()
                await teardown(coord, [t1, t2])
                return got, coord.last_report, fleet

        got, report, fleet = asyncio.run(drive())
        assert got == expected
        assert report.n_retries == 0
        for snapshot in (report.fleet_metrics, fleet):
            validate_snapshot(snapshot)
            counters = snapshot["counters"]
            # Exactly-once merge: every request merged once, whichever
            # worker ran it, and the workers' own execution counters
            # agree (no retries, so executed == merged).
            assert counters["cluster.requests.merged"] == len(requests)
            assert counters["worker.requests"] == len(requests)
        assert "cluster.requests.merged" in report.as_dict()[
            "fleet_metrics"]["counters"]

    def test_fleet_counters_equal_single_process_run(
            self, artifact, requests, expected):
        async def fleet_run():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, t1 = await spawn_worker(coord, name="a")
                _w, t2 = await spawn_worker(coord, name="b")
                await coord.wait_for_workers(2, timeout=10.0)
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                await teardown(coord, [t1, t2])
                return got, coord.last_report

        async def local_run():
            async with ClusterCoordinator() as coord:
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                return got, coord.last_report

        fleet_got, fleet_report = asyncio.run(fleet_run())
        local_got, local_report = asyncio.run(local_run())
        assert fleet_got == local_got == expected
        fleet_merged = fleet_report.fleet_metrics["counters"][
            "cluster.requests.merged"]
        local_merged = local_report.fleet_metrics["counters"][
            "cluster.requests.merged"]
        assert fleet_merged == local_merged == len(requests)

    def test_construction_fleet_counters(self, curated):
        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, t1 = await spawn_worker(coord, name="a")
                await coord.wait_for_workers(1, timeout=10.0)
                graphs, _cache = await coord.run_construction(
                    curated, DEFAULT_TOKENIZER)
                await teardown(coord, [t1])
                return graphs, coord.last_report

        graphs, report = asyncio.run(drive())
        n_leaves = sum(1 for leaf in curated.leaves.values()
                       if len(leaf) > 0)
        assert len(graphs) == n_leaves
        counters = report.fleet_metrics["counters"]
        assert counters["cluster.leaves.merged"] == n_leaves

    def test_malformed_worker_snapshot_is_rejected_not_merged(
            self, artifact, requests, expected):
        from repro.serving.kvstore import KeyValueStore  # noqa: F401

        async def drive():
            async with ClusterCoordinator(rpc_timeout=20.0) as coord:
                _w, t1 = await spawn_worker(coord, name="a")
                await coord.wait_for_workers(1, timeout=10.0)
                # Inject a poisoned heartbeat-shaped frame by hand.
                worker = next(iter(coord._workers.values()))
                coord._stash_worker_metrics(
                    worker, {"metrics": {"schema_version": 999}})
                got = await coord.run_inference(str(artifact), requests,
                                                k=5)
                fleet = coord.fleet_snapshot()
                await teardown(coord, [t1])
                return got, fleet, coord

        got, fleet, coord = asyncio.run(drive())
        assert got == expected
        # The bad snapshot was counted and dropped; the fleet view
        # still validates and still reflects the worker's good
        # (shard_result-borne) snapshots.
        from repro.obs import validate_snapshot
        validate_snapshot(fleet)
        assert fleet["counters"][
            "coordinator.metrics.rejected_snapshots"] == 1
        assert fleet["counters"]["cluster.requests.merged"] \
            == len(requests)
