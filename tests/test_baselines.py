"""Tests for the five production baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ExactIndex,
    FastTextLike,
    Graphite,
    NavigableGraphIndex,
    RulesEngine,
    SLEmb,
    SLQuery,
    TitleEmbedder,
    TrainingData,
    jaccard,
)
from repro.search import SearchLog
from repro.search.logs import ClickEvent


def small_training_data() -> TrainingData:
    items = [
        (1, "audeze maxwell gaming headphones", 100),
        (2, "audeze maxwell wireless headphones black", 100),
        (3, "klaro studio headphones white", 100),
        (4, "nimbus gaming laptop 16gb ram", 101),
        (5, "cold item with no clicks at all", 100),
    ]
    click_pairs = {
        1: {"audeze maxwell": 5, "gaming headphones": 3},
        2: {"audeze maxwell": 4, "wireless headphones": 2},
        3: {"studio headphones": 6, "klaro headphones": 1},
        4: {"gaming laptop": 8},
    }
    query_leaf = {q: 100 for qs in click_pairs.values() for q in qs}
    query_leaf["gaming laptop"] = 101
    return TrainingData(items=items, click_pairs=click_pairs,
                        query_leaf=query_leaf)


def log_from_pairs(pairs, day=170):
    log = SearchLog(day_start=1, day_end=180)
    for item_id, queries in pairs.items():
        for query, clicks in queries.items():
            for _ in range(clicks):
                log.clicks.append(ClickEvent(
                    day=day, query_text=query, leaf_id=100,
                    item_id=item_id, position=0))
    return log


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 0.0


class TestRulesEngine:
    def test_returns_clicked_queries_most_clicked_first(self):
        data = small_training_data()
        re_model = RulesEngine(log_from_pairs(data.click_pairs))
        preds = re_model.recommend(1, "ignored", 100)
        assert [p.text for p in preds] == ["audeze maxwell",
                                           "gaming headphones"]

    def test_cold_item_gets_nothing(self):
        data = small_training_data()
        re_model = RulesEngine(log_from_pairs(data.click_pairs))
        assert re_model.recommend(5, "cold item", 100) == []

    def test_lookback_window_excludes_old_clicks(self):
        data = small_training_data()
        old_log = log_from_pairs(data.click_pairs, day=20)
        re_model = RulesEngine(old_log, lookback_days=30)
        assert re_model.recommend(1, "x", 100) == []
        assert re_model.n_items_covered == 0

    def test_min_activity_filters(self):
        data = small_training_data()
        re_model = RulesEngine(log_from_pairs(data.click_pairs),
                               min_activity=2)
        preds = re_model.recommend(3, "x", 100)
        assert [p.text for p in preds] == ["studio headphones"]

    def test_coverage(self):
        data = small_training_data()
        re_model = RulesEngine(log_from_pairs(data.click_pairs))
        assert re_model.coverage([1, 2, 5]) == pytest.approx(2 / 3)
        assert re_model.coverage([]) == 0.0

    def test_ground_truth_accessor(self):
        data = small_training_data()
        re_model = RulesEngine(log_from_pairs(data.click_pairs))
        assert re_model.ground_truth(1) == {"audeze maxwell": 5,
                                            "gaming headphones": 3}
        assert re_model.ground_truth(999) == {}

    def test_k_limits_output(self):
        data = small_training_data()
        re_model = RulesEngine(log_from_pairs(data.click_pairs))
        assert len(re_model.recommend(1, "x", 100, k=1)) == 1


class TestSLQuery:
    def test_propagates_neighbor_queries(self):
        model = SLQuery(small_training_data(), jaccard_threshold=0.0)
        preds = model.recommend(
            1, "audeze maxwell gaming headphones", 100)
        texts = [p.text for p in preds]
        # Item 2 shares "audeze maxwell" with item 1, so item 2's other
        # query is propagated.
        assert "wireless headphones" in texts

    def test_own_queries_lead(self):
        model = SLQuery(small_training_data(), jaccard_threshold=0.0)
        preds = model.recommend(1, "audeze maxwell gaming headphones", 100)
        assert preds[0].text == "audeze maxwell"

    def test_cold_item_uncovered(self):
        model = SLQuery(small_training_data())
        assert model.recommend(5, "cold item", 100) == []
        assert model.coverage([1, 5]) == 0.5

    def test_jaccard_threshold_truncates(self):
        strict = SLQuery(small_training_data(), jaccard_threshold=0.99)
        preds = strict.recommend(
            1, "audeze maxwell gaming headphones", 100)
        # Only the item's own queries remain under an impossible threshold.
        assert {p.text for p in preds} \
            == {"audeze maxwell", "gaming headphones"}

    def test_k_respected(self):
        model = SLQuery(small_training_data(), jaccard_threshold=0.0)
        assert len(model.recommend(
            1, "audeze maxwell gaming headphones", 100, k=1)) == 1


class TestTitleEmbedder:
    CORPUS = [
        "audeze maxwell gaming headphones",
        "audeze maxwell wireless headphones",
        "klaro studio headphones white",
        "nimbus gaming laptop ram",
        "voltedge gaming laptop ssd",
        "inkvale laser printer duplex",
    ]

    def test_rows_are_normalized(self):
        emb = TitleEmbedder(dim=4, min_df=1).fit(self.CORPUS)
        vectors = emb.transform(self.CORPUS)
        norms = np.linalg.norm(vectors, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-6)

    def test_similar_titles_are_closer(self):
        emb = TitleEmbedder(dim=4, min_df=1).fit(self.CORPUS)
        v = emb.transform(["audeze maxwell gaming headphones",
                           "audeze maxwell wireless headphones",
                           "inkvale laser printer duplex"])
        sim_near = float(v[0] @ v[1])
        sim_far = float(v[0] @ v[2])
        assert sim_near > sim_far

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TitleEmbedder().transform(["x"])

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            TitleEmbedder().fit([])

    def test_dim_clipped_to_rank(self):
        emb = TitleEmbedder(dim=100, min_df=1).fit(self.CORPUS)
        assert emb.dim < 100

    def test_unknown_tokens_give_zero_vector(self):
        emb = TitleEmbedder(dim=4, min_df=1).fit(self.CORPUS)
        v = emb.transform(["completely unseen vocabulary"])
        assert np.linalg.norm(v) == pytest.approx(0.0)

    def test_fit_transform_equivalent(self):
        a = TitleEmbedder(dim=4, min_df=1).fit_transform(self.CORPUS)
        emb = TitleEmbedder(dim=4, min_df=1).fit(self.CORPUS)
        b = emb.transform(self.CORPUS)
        np.testing.assert_allclose(np.abs(a), np.abs(b), atol=1e-8)


class TestANN:
    def _vectors(self, n=100, dim=8, seed=0):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=(n, dim))
        return v / np.linalg.norm(v, axis=1, keepdims=True)

    def test_exact_top1_is_self(self):
        vectors = self._vectors()
        index = ExactIndex(vectors)
        top = index.query(vectors[17], k=1)
        assert top[0][0] == 17

    def test_exact_scores_sorted(self):
        vectors = self._vectors()
        index = ExactIndex(vectors)
        sims = [s for _i, s in index.query(vectors[3], k=10)]
        assert sims == sorted(sims, reverse=True)

    def test_exact_k_larger_than_data(self):
        vectors = self._vectors(n=5)
        assert len(ExactIndex(vectors).query(vectors[0], k=50)) == 5

    def test_exact_empty(self):
        index = ExactIndex(np.empty((0, 4)))
        assert index.query(np.zeros(4), k=3) == []

    def test_exact_rejects_1d(self):
        with pytest.raises(ValueError):
            ExactIndex(np.zeros(4))

    def test_approximate_recall_vs_exact(self):
        vectors = self._vectors(n=300)
        exact = ExactIndex(vectors)
        approx = NavigableGraphIndex(vectors, graph_degree=16,
                                     beam_width=32)
        hits = 0
        for probe in range(0, 50):
            true_top = {i for i, _s in exact.query(vectors[probe], k=10)}
            got = {i for i, _s in approx.query(vectors[probe], k=10)}
            hits += len(true_top & got)
        assert hits / (50 * 10) > 0.6

    def test_approximate_empty(self):
        index = NavigableGraphIndex(np.empty((0, 4)))
        assert index.query(np.zeros(4), k=3) == []

    def test_approximate_singleton(self):
        vectors = self._vectors(n=1)
        index = NavigableGraphIndex(vectors)
        assert index.query(vectors[0], k=5)[0][0] == 0


class TestSLEmb:
    def test_covers_cold_items(self):
        model = SLEmb(small_training_data(), approximate=False,
                      jaccard_threshold=0.0)
        preds = model.recommend(
            5, "audeze maxwell gaming headphones black", 100)
        assert preds  # cold item still served via similar listings

    def test_neighbor_queries_propagate(self):
        model = SLEmb(small_training_data(), approximate=False,
                      jaccard_threshold=0.0)
        preds = model.recommend(
            99, "audeze maxwell gaming headphones", 100)
        assert "audeze maxwell" in {p.text for p in preds}

    def test_empty_training_data(self):
        data = TrainingData(items=[], click_pairs={}, query_leaf={})
        model = SLEmb(data)
        assert model.recommend(1, "anything", 100) == []

    def test_jaccard_truncation(self):
        relaxed = SLEmb(small_training_data(), approximate=False,
                        jaccard_threshold=0.0)
        strict = SLEmb(small_training_data(), approximate=False,
                       jaccard_threshold=0.9)
        title = "audeze maxwell gaming headphones"
        assert len(strict.recommend(9, title, 100)) \
            <= len(relaxed.recommend(9, title, 100))


class TestFastTextLike:
    def test_label_space_is_click_vocabulary(self):
        model = FastTextLike(small_training_data(), epochs=2)
        assert model.n_labels == 6

    def test_predictions_are_in_label_space(self):
        data = small_training_data()
        model = FastTextLike(data, epochs=2)
        labels = {q for qs in data.click_pairs.values() for q in qs}
        preds = model.recommend(1, "audeze maxwell gaming headphones", 100)
        assert all(p.text in labels for p in preds)

    def test_k_respected(self):
        model = FastTextLike(small_training_data(), epochs=2)
        assert len(model.recommend(1, "audeze headphones", 100, k=2)) == 2

    def test_empty_training(self):
        data = TrainingData(items=[], click_pairs={}, query_leaf={})
        model = FastTextLike(data, epochs=1)
        assert model.recommend(1, "whatever", 100) == []

    def test_deterministic_given_seed(self):
        a = FastTextLike(small_training_data(), epochs=2, seed=5)
        b = FastTextLike(small_training_data(), epochs=2, seed=5)
        pa = a.recommend(1, "audeze maxwell headphones", 100)
        pb = b.recommend(1, "audeze maxwell headphones", 100)
        assert [p.text for p in pa] == [p.text for p in pb]

    def test_memory_bytes_positive(self):
        model = FastTextLike(small_training_data(), epochs=1)
        assert model.memory_bytes() > 0

    def test_learns_topical_signal(self):
        """After training, a headphones title should rank a headphones
        label above the laptop label."""
        model = FastTextLike(small_training_data(), epochs=30, seed=2)
        preds = model.recommend(
            1, "audeze maxwell gaming headphones", 100, k=6)
        ranks = {p.text: i for i, p in enumerate(preds)}
        assert ranks["audeze maxwell"] < ranks["gaming laptop"]


class TestGraphite:
    def test_labels_come_from_matched_items(self):
        model = Graphite(small_training_data(), min_wmr=0.0)
        preds = model.recommend(
            99, "audeze maxwell gaming headphones", 100)
        texts = {p.text for p in preds}
        assert "audeze maxwell" in texts
        # The shared token "gaming" routes through the laptop item too —
        # exactly the cross-product leakage tagging models inherit from
        # click data (it ranks low via WMR, but it is reachable).
        assert "gaming laptop" in texts

    def test_wmr_ranking(self):
        model = Graphite(small_training_data(), min_wmr=0.0)
        preds = model.recommend(
            99, "audeze maxwell gaming headphones", 100)
        scores = [p.score for p in preds]
        assert scores == sorted(scores, reverse=True)
        assert preds[0].score == pytest.approx(1.0)

    def test_min_wmr_filters(self):
        strict = Graphite(small_training_data(), min_wmr=1.0)
        preds = strict.recommend(99, "audeze maxwell", 100)
        assert all(p.score == pytest.approx(1.0) for p in preds)

    def test_budget_cap(self):
        model = Graphite(small_training_data(), min_wmr=0.0, budget=1)
        assert len(model.recommend(
            99, "audeze maxwell gaming headphones", 100, k=20)) <= 1

    def test_no_match_is_empty(self):
        model = Graphite(small_training_data())
        assert model.recommend(99, "zzz qqq", 100) == []

    def test_empty_training(self):
        data = TrainingData(items=[], click_pairs={}, query_leaf={})
        model = Graphite(data)
        assert model.recommend(1, "anything", 100) == []

    def test_memory_bytes_positive(self):
        model = Graphite(small_training_data())
        assert model.memory_bytes() > 0

    def test_only_clicked_items_indexed(self):
        """Item 5 has no clicks, so its tokens must not route labels."""
        model = Graphite(small_training_data(), min_wmr=0.0)
        preds = model.recommend(99, "cold clicks", 100)
        assert preds == []
