"""Equivalence suite: the vectorized engine vs the scalar reference.

The fast path (:mod:`repro.core.fast_inference`) is only trustworthy if
it is *element-wise identical* to :func:`recommend_from_graph` — same
texts, same IEEE-754 scores, same tie-break order — on any model and any
batch.  These tests pin that property with hypothesis-generated random
catalogs, titles, leaves and ``k`` across all three alignments, plus
directed regressions for the documented tie-break order and the edge
cases (empty vocabulary, unknown leaf, pooled fallback, duplicates).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import batch_recommend, differential_update
from repro.core.curation import CuratedKeyphrases, CuratedLeaf, CurationConfig
from repro.core.fast_inference import LeafBatchRunner, fast_batch_recommend
from repro.core.inference import recommend_from_graph
from repro.core.model import GraphExModel

ALIGNMENTS = ["lta", "wmr", "jac"]

#: Token universe: vocabulary words plus never-interned strangers.
TOKENS = [f"w{i}" for i in range(18)]
STRANGERS = ["zzz", "qqq", "unseen"]


def make_model(leaf_phrases, alignment="lta", build_pooled=False):
    """Construct a model from {leaf_id: [(text, search, recall), ...]}."""
    leaves = {}
    for leaf_id, phrases in leaf_phrases.items():
        leaf = CuratedLeaf(leaf_id=leaf_id)
        for text, search, recall in phrases:
            leaf.add(text, search, recall)
        leaves[leaf_id] = leaf
    curated = CuratedKeyphrases(
        leaves=leaves, effective_threshold=1,
        config=CurationConfig(min_search_count=1))
    return GraphExModel.construct(curated, alignment=alignment,
                                  build_pooled=build_pooled)


def reference_outputs(model, requests, k, hard_limit=None):
    """The scalar semantics reference, item by item."""
    out = {}
    for item_id, title, leaf_id in requests:
        graph = model.leaf_graph(leaf_id) or model.pooled_graph
        if graph is None:
            out[item_id] = []
            continue
        out[item_id] = recommend_from_graph(
            graph, model.tokenizer(title), k=k,
            alignment_fn=model.alignment_fn, hard_limit=hard_limit)
    return out


def assert_identical(fast, reference):
    """Element-wise identity: text, score, counts and order all equal."""
    assert fast.keys() == reference.keys()
    for item_id in reference:
        a, b = fast[item_id], reference[item_id]
        assert len(a) == len(b), f"item {item_id}: {a} != {b}"
        for got, want in zip(a, b):
            assert got == want, f"item {item_id}: {got} != {want}"


phrase = st.lists(st.sampled_from(TOKENS), min_size=1, max_size=4) \
    .map(" ".join)
phrases = st.lists(
    st.tuples(phrase, st.integers(1, 60), st.integers(1, 60)),
    min_size=0, max_size=16)
leaf_worlds = st.dictionaries(st.integers(1, 4), phrases,
                              min_size=1, max_size=4)
title = st.lists(st.sampled_from(TOKENS + STRANGERS),
                 min_size=0, max_size=9).map(" ".join)
requests_strategy = st.lists(
    st.tuples(st.integers(0, 30), title, st.integers(1, 6)),
    min_size=0, max_size=25)


class TestPropertyEquivalence:
    @given(world=leaf_worlds, reqs=requests_strategy,
           k=st.integers(0, 12), alignment=st.sampled_from(ALIGNMENTS),
           build_pooled=st.booleans(),
           hard_limit=st.one_of(st.none(), st.integers(1, 8)))
    @settings(max_examples=60, deadline=None)
    def test_fast_matches_reference(self, world, reqs, k, alignment,
                                    build_pooled, hard_limit):
        """Any random catalog/batch: identical ranked output.

        Leaf ids 5-6 in the requests never have a graph, so the pooled
        fallback (when built) and the unknown-leaf empty case are both
        exercised by the same sweep.
        """
        model = make_model(world, alignment=alignment,
                           build_pooled=build_pooled)
        fast = fast_batch_recommend(model, reqs, k=k,
                                    hard_limit=hard_limit)
        assert_identical(fast, reference_outputs(model, reqs, k,
                                                 hard_limit))

    @given(world=leaf_worlds, reqs=requests_strategy,
           k=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_engines_agree_through_batch_recommend(self, world, reqs, k):
        model = make_model(world, build_pooled=True)
        assert_identical(
            batch_recommend(model, reqs, k=k, engine="fast"),
            batch_recommend(model, reqs, k=k, engine="reference"))

    @given(world=leaf_worlds, reqs=requests_strategy)
    @settings(max_examples=15, deadline=None)
    def test_dense_and_sparse_enumeration_agree(self, world, reqs):
        """dense_limit=0 forces the np.unique fallback path."""
        model = make_model(world)
        dense = LeafBatchRunner(model, k=5).run(reqs)
        sparse = LeafBatchRunner(model, k=5, dense_limit=0).run(reqs)
        assert_identical(sparse, dense)

    @given(world=leaf_worlds, reqs=requests_strategy,
           workers=st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_leaf_group_sharding_agrees(self, world, reqs, workers):
        model = make_model(world, build_pooled=True)
        sharded = LeafBatchRunner(model, k=6, workers=workers).run(reqs)
        assert_identical(sharded, reference_outputs(model, reqs, 6))

    @given(world=leaf_worlds, reqs=requests_strategy,
           workers=st.integers(2, 3),
           hard_limit=st.one_of(st.none(), st.integers(1, 8)))
    @settings(max_examples=5, deadline=None)
    def test_process_sharding_agrees(self, world, reqs, workers,
                                     hard_limit):
        """Leaf-group shards in worker processes: element-wise identical
        to the scalar reference (few examples — each spawns a pool)."""
        model = make_model(world, build_pooled=True)
        sharded = batch_recommend(model, reqs, k=6, hard_limit=hard_limit,
                                  workers=workers, engine="fast",
                                  parallel="process")
        assert_identical(sharded,
                         reference_outputs(model, reqs, 6, hard_limit))


class TestEdgeCases:
    def test_empty_vocabulary_leaf(self):
        """Keyphrases that tokenize to nothing leave the vocab empty."""
        model = make_model({1: [("!!!", 5, 1), ("???", 4, 2)]})
        fast = fast_batch_recommend(model, [(1, "w0 w1", 1)], k=5)
        assert fast == {1: []}

    def test_unknown_leaf_without_pooled_is_empty(self):
        model = make_model({1: [("w0 w1", 5, 1)]})
        fast = fast_batch_recommend(model, [(7, "w0 w1", 999)], k=5)
        assert fast == {7: []}

    def test_unknown_leaf_falls_back_to_pooled(self):
        model = make_model({1: [("w0 w1", 5, 1)]}, build_pooled=True)
        fast = fast_batch_recommend(model, [(7, "w0 w1", 999)], k=5)
        assert [r.text for r in fast[7]] == ["w0 w1"]
        assert_identical(fast, reference_outputs(
            model, [(7, "w0 w1", 999)], 5))

    def test_empty_batch(self):
        model = make_model({1: [("w0", 1, 1)]})
        assert fast_batch_recommend(model, [], k=5) == {}

    def test_duplicate_item_ids_last_request_wins(self):
        """Parity with the scalar dict loop: later request overwrites."""
        model = make_model({1: [("w0", 9, 1)], 2: [("w1", 9, 1)]})
        reqs = [(5, "w0", 1), (5, "w1", 2)]
        fast = fast_batch_recommend(model, reqs, k=5)
        ref = batch_recommend(model, reqs, k=5, engine="reference")
        assert [r.text for r in fast[5]] == ["w1"]
        assert_identical(fast, ref)

    def test_k_zero_yields_no_predictions(self):
        model = make_model({1: [("w0 w1", 5, 1)]})
        fast = fast_batch_recommend(model, [(1, "w0 w1", 1)], k=0)
        assert fast == {1: []}

    def test_scalar_only_custom_alignment_rejected_by_fast_engine(self):
        """A custom alignment that can't broadcast over an array title_len
        worked on the scalar path; the fast engine must reject it up
        front instead of crashing (or silently mis-scoring) mid-batch."""
        scalar_only = lambda c, l, t: (np.asarray(c, dtype=np.float64)
                                       / np.asarray(l, dtype=np.float64)
                                       if t > 0 else np.zeros(len(c)))
        model = make_model({1: [("w0 w1", 5, 1)]})
        custom = GraphExModel(
            {1: model.leaf_graph(1)}, tokenizer=model.tokenizer,
            alignment=scalar_only)
        reqs = [(1, "w0", 1), (2, "w1", 1)]
        assert batch_recommend(custom, reqs, k=5, engine="reference")
        with pytest.raises(ValueError, match="not element-wise"):
            batch_recommend(custom, reqs, k=5, engine="fast")

    def test_vectorized_custom_alignment_accepted(self):
        vectorized = lambda c, l, t: (np.asarray(c, dtype=np.float64)
                                      / np.asarray(l, dtype=np.float64))
        model = make_model({1: [("w0 w1", 5, 1), ("w0", 3, 2)]})
        custom = GraphExModel(
            {1: model.leaf_graph(1)}, tokenizer=model.tokenizer,
            alignment=vectorized)
        reqs = [(1, "w0 w1", 1), (2, "w0", 1)]
        assert_identical(
            batch_recommend(custom, reqs, k=5, engine="fast"),
            batch_recommend(custom, reqs, k=5, engine="reference"))

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_negative_hard_limit_rejected(self, engine):
        """Both engines refuse a negative cap (Python slice semantics
        would otherwise silently diverge between them)."""
        model = make_model({1: [("w0 w1", 5, 1)]})
        with pytest.raises(ValueError, match="hard_limit"):
            batch_recommend(model, [(1, "w0", 1)], k=5, hard_limit=-1,
                            engine=engine)
        with pytest.raises(ValueError, match="hard_limit"):
            LeafBatchRunner(model, k=5, hard_limit=-1)

    def test_duplicate_item_ids_across_process_shards_last_wins(self):
        """The two requests for item 5 live in different leaf groups, so
        with two workers they land in different process shards; the
        scatter-by-request-index merge must still let the later request
        win, exactly like the scalar dict loop."""
        model = make_model({1: [("w0", 9, 1)], 2: [("w1", 9, 1)]})
        reqs = [(5, "w0", 1), (5, "w1", 2)]
        out = batch_recommend(model, reqs, k=5, workers=2,
                              parallel="process")
        assert [r.text for r in out[5]] == ["w1"]
        assert_identical(out,
                         batch_recommend(model, reqs, k=5,
                                         engine="reference"))

    def test_reference_engine_rejects_process_parallel(self):
        """The scalar path stays single-process as the semantics oracle."""
        model = make_model({1: [("w0 w1", 5, 1)]})
        with pytest.raises(ValueError, match="single-process"):
            batch_recommend(model, [(1, "w0", 1)], k=5,
                            engine="reference", parallel="process")

    def test_unknown_parallel_mode_rejected(self):
        model = make_model({1: [("w0 w1", 5, 1)]})
        with pytest.raises(ValueError, match="parallel mode"):
            batch_recommend(model, [(1, "w0", 1)], k=5, parallel="fiber")

    def test_run_indexed_keeps_duplicates(self):
        """run_indexed is positional: duplicates are not collapsed."""
        model = make_model({1: [("w0", 9, 1)], 2: [("w1", 9, 1)]})
        reqs = [(5, "w0", 1), (5, "w1", 2)]
        rows = LeafBatchRunner(model, k=5).run_indexed(reqs)
        assert [[r.text for r in row] for row in rows] == [["w0"], ["w1"]]

    def test_differential_update_routes_through_fast_engine(self):
        model = make_model({1: [("w0 w1", 5, 1), ("w2", 3, 1)]})
        previous = batch_recommend(model, [(1, "w2", 1)], k=5)
        merged = differential_update(
            model, previous, [(2, "w0 w1", 1)], deleted_item_ids=[1],
            engine="fast")
        assert 1 not in merged
        assert [r.text for r in merged[2]] == ["w0 w1"]

    def test_differential_update_changed_beats_deleted(self):
        """Pinned semantics: an item in both ``deleted_item_ids`` and
        ``changed`` is served with its fresh inference — deletions hit
        yesterday's table first, then the re-inferences merge on top
        (the revision is newer evidence the item exists, mirroring the
        NRT last-event-per-item-wins rule documented in the docstring).
        """
        model = make_model({1: [("w0 w1", 5, 1), ("w2", 3, 1)]})
        previous = batch_recommend(model, [(1, "w2", 1)], k=5)
        merged = differential_update(
            model, previous, changed=[(1, "w0 w1", 1)],
            deleted_item_ids=[1])
        assert [r.text for r in merged[1]] == ["w0 w1"]
        # A deletion without a competing revision still lands.
        gone = differential_update(model, merged, [],
                                   deleted_item_ids=[1])
        assert 1 not in gone


class TestTieBreakDeterminism:
    """Satellite regression: the documented score → search → recall →
    label-id order holds, for both engines, when upstream keys tie."""

    def _tied_model(self):
        # Title "w0" gives every label c=1 and |l|=2 → identical scores
        # under all alignments; search counts also tie.
        return make_model({1: [
            ("w0 w1", 10, 7),   # label 0: recall 7
            ("w0 w2", 10, 3),   # label 1: recall 3
            ("w0 w3", 10, 3),   # label 2: recall 3, same recall → id
        ]})

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_equal_score_equal_search_orders_by_recall_then_id(
            self, engine):
        model = self._tied_model()
        recs = batch_recommend(model, [(1, "w0", 1)], k=10,
                               engine=engine)[1]
        assert [r.text for r in recs] == ["w0 w2", "w0 w3", "w0 w1"]
        scores = {r.score for r in recs}
        searches = {r.search_count for r in recs}
        assert len(scores) == 1 and len(searches) == 1

    @pytest.mark.parametrize("alignment", ALIGNMENTS)
    def test_order_identical_across_engines_under_full_ties(
            self, alignment):
        model = make_model(
            {1: [(f"w0 w{i}", 5, 5) for i in range(1, 7)]},
            alignment=alignment)
        reqs = [(1, "w0", 1)]
        assert_identical(
            batch_recommend(model, reqs, k=10, engine="fast"),
            batch_recommend(model, reqs, k=10, engine="reference"))
        # All keys tie → pure label-id (insertion) order.
        recs = batch_recommend(model, reqs, k=10, engine="fast")[1]
        assert [r.text for r in recs] == [f"w0 w{i}" for i in range(1, 7)]
