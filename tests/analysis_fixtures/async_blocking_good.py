# Passing fixture for the async-no-blocking rule: the sanctioned
# spellings of the same work.
# lint-fixture-module: repro.serving.fixture_async_good
import asyncio
import shutil
import tempfile
import time


async def handler(store, fut):
    await asyncio.sleep(0.1)               # awaited: non-blocking
    loop = asyncio.get_event_loop()
    # Blocking work dispatched off-loop — function references as
    # arguments, never inline calls.
    payload = await loop.run_in_executor(None, _read_payload)
    spool = await loop.run_in_executor(None, tempfile.mkdtemp)
    await loop.run_in_executor(None, lambda: shutil.rmtree(spool))
    value = await fut                      # asyncio-native join
    return payload, value


def _read_payload():
    # Sync helper: blocking calls are fine here (it runs in the
    # executor), and the rule must not descend into it.
    time.sleep(0.0)
    with open("/tmp/payload") as fh:
        return fh.read()


async def outer():
    def teardown(path):
        shutil.rmtree(path)  # nested sync def: out of scope

    return teardown
