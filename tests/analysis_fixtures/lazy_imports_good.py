# Passing fixture for lazy-import-contract: an acyclic module-level
# graph whose declared lazy edge (fix.c -> fix.util) lives at function
# scope, with a TYPE_CHECKING import that must not count as an edge.
# lint-fixture-module: fix.util
VALUE = 1


def helper():
    return VALUE
# lint-fixture-module: fix.c
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .d import Thing


def use():
    from .util import helper
    return helper()
# lint-fixture-module: fix.d
from . import util


class Thing:
    value = util.VALUE
