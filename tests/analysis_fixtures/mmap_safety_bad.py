# Failing fixture for mmap-write-safety: serving code writing into
# the shared read-only model mapping.
# lint-fixture-module: repro.serving.fixture_mmap_bad


def patch_scores(model, idx, value):
    model.weights[idx] = value          # element store into the mmap


def rescale(graph, factor):
    graph.weights *= factor             # in-place augmented store


def unprotect(model):
    arr = model.pooled_graph.indptr
    arr.setflags(write=True)            # defeats the write protection
    return arr
