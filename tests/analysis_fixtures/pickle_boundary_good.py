# Passing fixture for no-pickle-boundary: JSON frames at the
# boundary, exactly like repro.cluster.protocol.
# lint-fixture-module: repro.cluster.fixture_pickle_good
import base64
import json


def encode_shard(payload):
    return json.dumps(payload).encode("utf-8")


def encode_chunk(chunk):
    return base64.b64encode(chunk).decode("ascii")
