# Failing fixture for monotonic-clock: wall-clock reads in timer
# arithmetic inside the cluster plane.
# lint-fixture-module: repro.cluster.fixture_clocks_bad
import time
from datetime import datetime


def deadline_expired(started_at, timeout):
    return time.time() - started_at > timeout


def heartbeat_stamp():
    return datetime.now()
# lint-fixture-module: repro.obs.fixture_clocks_bad
import time
from datetime import datetime


def span_duration(started_at):
    # An observability plane on the wall clock measures the very
    # anomalies it exists to detect.
    return time.time() - started_at


def snapshot_stamp():
    return datetime.now()
