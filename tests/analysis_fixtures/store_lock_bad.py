# Failing fixture for store-lock-discipline: multi-step store
# mutations with no transaction and no waiver.
# lint-fixture-module: repro.serving.fixture_store_bad


def swap_unlocked(store, version, items):
    # Two mutating calls, no transaction_lock: a concurrent refresh
    # can interleave between them and strand the staged version.
    store.create_version(version)
    store.promote(version)


def fill_unlocked(kv, version, items):
    for item_id, phrases in items:
        kv.put(version, item_id, phrases)
    kv.prune(version)
